//! Bank transfers: multi-word atomicity under real contention.
//!
//! A classic STM motivating scenario: concurrent transfers between accounts
//! must never create or destroy money, and an auditor taking atomic
//! snapshots must never observe a torn state. Each transfer is one static
//! transaction over `{from, to}`; the audit is an identity transaction over
//! all accounts.
//!
//! Run with: `cargo run --example bank_transfer`

use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;

const ACCOUNTS: usize = 8;
const INITIAL: u32 = 1_000;
const THREADS: usize = 4;
const TRANSFERS: usize = 5_000;

fn main() {
    // Register a guarded-transfer program alongside the builtins: move
    // `amount` from the first cell to the second, but only if funds suffice.
    let (ops, transfer) = StmOps::with_programs(
        0,
        ACCOUNTS,
        THREADS + 1, // one extra processor for the auditor
        ACCOUNTS,
        StmConfig::default(),
        |b| {
            b.register("bank.transfer", |params: &[Word], old: &[u32], new: &mut [u32]| {
                let amount = params[0] as u32;
                if old[0] >= amount {
                    new[0] = old[0] - amount;
                    new[1] = old[1] + amount;
                }
            })
        },
    );
    let machine = HostMachine::new(ops.stm().layout().words_needed(), THREADS + 1);

    {
        let mut port = machine.port(0);
        for a in 0..ACCOUNTS {
            ops.stm().init_cell(&mut port, a, INITIAL);
        }
    }

    let audits = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Transfer threads.
        for p in 0..THREADS {
            let ops = ops.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut x = p as u32 + 1;
                for i in 0..TRANSFERS {
                    // Cheap deterministic pseudo-randomness.
                    x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    let from = (x as usize >> 8) % ACCOUNTS;
                    let to = (from + 1 + (i % (ACCOUNTS - 1))) % ACCOUNTS;
                    let amount = (x % 50) as Word;
                    let cells = [from, to];
                    let _ = ops
                        .run(&mut port, &TxSpec::new(transfer, &[amount], &cells), &mut TxOptions::new())
                        .unwrap();
                }
            });
        }
        // Auditor thread: atomic snapshots of all accounts, concurrent with
        // the transfers. Every snapshot must sum to exactly the total.
        {
            let ops = ops.clone();
            let machine = machine.clone();
            let audits = &audits;
            s.spawn(move || {
                let mut port = machine.port(THREADS);
                let all: Vec<usize> = (0..ACCOUNTS).collect();
                for _ in 0..200 {
                    let snap = ops.snapshot(&mut port, &all);
                    let total: u64 = snap.iter().map(|&v| v as u64).sum();
                    assert_eq!(
                        total,
                        (ACCOUNTS as u64) * INITIAL as u64,
                        "torn audit: money created or destroyed"
                    );
                    audits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });

    let mut port = machine.port(0);
    let all: Vec<usize> = (0..ACCOUNTS).collect();
    let final_snap = ops.snapshot(&mut port, &all);
    let total: u64 = final_snap.iter().map(|&v| v as u64).sum();
    println!("final balances: {final_snap:?}");
    println!(
        "total = {total} (expected {}), audits passed: {}",
        ACCOUNTS as u64 * INITIAL as u64,
        audits.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(total, ACCOUNTS as u64 * INITIAL as u64);
    println!("bank_transfer OK");
}
