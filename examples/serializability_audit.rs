//! Audit a concurrent execution for serializability.
//!
//! Runs contended multi-cell transfers on the host machine while recording a
//! [`CommitRecord`](stm_core::history::CommitRecord) per committed
//! transaction, then feeds the whole history to the
//! [`HistoryChecker`](stm_core::history::HistoryChecker): per-cell value
//! chains must hold and the precedence graph must be acyclic — the paper's
//! atomicity claim, verified mechanically on a real execution.
//!
//! Run with: `cargo run --release --example serializability_audit`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use stm_core::history::{CommitRecord, HistoryChecker};
use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;

const THREADS: usize = 4;
const CELLS: usize = 6;
const OPS_PER_THREAD: usize = 2_000;

fn main() {
    let ops = StmOps::new(0, CELLS, THREADS, 4, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), THREADS);
    let records = Mutex::new(Vec::<CommitRecord>::new());
    let next_id = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for p in 0..THREADS {
            let ops = ops.clone();
            let machine = machine.clone();
            let records = &records;
            let next_id = &next_id;
            s.spawn(move || {
                let mut port = machine.port(p);
                let builtins = ops.builtins();
                let mut local = Vec::with_capacity(OPS_PER_THREAD);
                for i in 0..OPS_PER_THREAD {
                    let a = (p + i) % CELLS;
                    let b = (a + 1 + i % (CELLS - 1)) % CELLS;
                    if a == b {
                        continue;
                    }
                    let deltas = [1 + (i as u32 % 3), (p as u32) + 2];
                    let cells = [a, b];
                    let params = [deltas[0] as Word, deltas[1] as Word];
                    let out = ops
                        .stm()
                        .run(
                            &mut port,
                            &TxSpec::new(builtins.add, &params, &cells),
                            &mut TxOptions::new(),
                        )
                        .unwrap();
                    local.push(CommitRecord {
                        id: next_id.fetch_add(1, Ordering::SeqCst),
                        cells: cells.to_vec(),
                        old_values: out.old.clone(),
                        old_stamps: out.old_stamps.clone(),
                        new_values: out
                            .old
                            .iter()
                            .zip(&deltas)
                            .map(|(&o, &d)| o.wrapping_add(d))
                            .collect(),
                    });
                }
                records.lock().unwrap().extend(local);
            });
        }
    });

    let recs = records.into_inner().unwrap();
    let n = recs.len();
    let mut checker = HistoryChecker::new(vec![0; CELLS]);
    for r in recs {
        checker.add(r);
    }
    match checker.check() {
        Ok(order) => {
            println!("audited {n} committed transactions: serializable");
            println!(
                "witness serial order starts [{}...] and ends [...{}]",
                order.iter().take(5).map(|i| i.to_string()).collect::<Vec<_>>().join(", "),
                order.iter().rev().take(3).map(|i| i.to_string()).collect::<Vec<_>>().join(", "),
            );
            println!("serializability_audit OK");
        }
        Err(e) => panic!("execution NOT serializable: {e}"),
    }
}
