//! Architecture comparison: one workload, three simulated machines.
//!
//! Runs the resource-allocation workload (where STM shines) on the bus
//! machine, the plain mesh, and the coherently-caching mesh, printing the
//! STM-vs-MCS ratio on each — a miniature of the paper's two-machine
//! evaluation plus this reproduction's architecture ablation.
//!
//! Run with: `cargo run --release --example mesh_vs_bus`

use stm_bench::workloads::{run_point, ArchKind, Bench};
use stm_structures::Method;

fn main() {
    const PROCS: usize = 8;
    const OPS: u64 = 256;

    println!("resource benchmark, {PROCS} simulated processors, {OPS} ops");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "machine", "STM", "MCS-lock", "STM/MCS"
    );
    for arch in [ArchKind::Bus, ArchKind::Mesh, ArchKind::MeshCached] {
        let stm = run_point(Bench::Resource, arch, Method::Stm, PROCS, OPS, 99);
        let mcs = run_point(Bench::Resource, arch, Method::Mcs, PROCS, OPS, 99);
        println!(
            "{:>12} {:>12.1} {:>12.1} {:>12.2}",
            arch.label(),
            stm.throughput,
            mcs.throughput,
            stm.throughput / mcs.throughput
        );
    }
    println!("mesh_vs_bus OK");
}
