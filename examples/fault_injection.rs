//! Fault injection tour: crash a processor mid-protocol, watch the helpers
//! drain it, catch a sabotaged protocol, and shrink the counterexample.
//!
//! Three acts:
//!
//! 1. **Crash & help.** Processor 0 dies right after claiming both cells of
//!    a 2-cell transaction. The survivors discover the orphaned ownerships,
//!    complete the dead transaction exactly once, and keep going — the
//!    paper's non-blocking guarantee, observed on a live run.
//! 2. **Ablation.** The same crash with helping disabled wedges the system;
//!    the engine's watchdog reports a structured violation instead of
//!    panicking the host process.
//! 3. **Catch & shrink.** A deliberately broken protocol variant (release
//!    ownerships *before* installing updates) is hunted down by the fault
//!    fuzzer, shrunk to a minimal `(seed, FaultPlan)` reproducer, and the
//!    final cycles of the failing execution are dumped as a readable trace.
//!
//! Run with: `cargo run --release --example fault_injection`

use std::sync::Arc;

use stm_core::attribution::Attribution;
use stm_core::flight::{FlightBuffer, FlightRecorder};
use stm_core::step::StepKind;
use stm_core::stm::{Sabotage, StmConfig, TxOptions, TxSpec};
use stm_sim::engine::SimPort;
use stm_sim::perfetto::FlightDump;
use stm_sim::explore::{shrink, FaultFuzzer};
use stm_sim::trace::render_trace;
use stm_sim::{BusModel, FaultPlan, LivenessChecker, StmSim};

fn main() {
    crash_and_help();
    ablation_wedges();
    catch_and_shrink();
    println!("fault_injection OK");
}

/// Act 1: a crashed transaction is completed by the survivors.
fn crash_and_help() {
    println!("--- act 1: crash at Acquired{{1}}, helpers drain the victim ---");
    let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, Some(1));
    println!("plan: {plan}");
    // One flight ring per processor, shared with the workload closures so
    // the recordings survive the run (including the crashed victim's).
    let rings: Vec<Arc<FlightBuffer>> =
        (0..3).map(|_| Arc::new(FlightBuffer::new(4096))).collect();
    let sim = StmSim::new(3, 2, 2, StmConfig::default()).seed(1).jitter(2).trace(100_000).faults(plan);
    let report = sim.run(BusModel::for_procs(3), |p, ops| {
        let ring = Arc::clone(&rings[p]);
        move |mut port: SimPort| {
            let mut rec = FlightRecorder::from_parts(p, ring, None);
            if p == 0 {
                // One 2-cell transaction; the plan kills us mid-acquire.
                let spec = TxSpec::new(ops.builtins().add, &[100, 100], &[0, 1]);
                let _ = ops
                    .stm()
                    .run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec))
                    .unwrap();
                return;
            }
            for _ in 0..10 {
                let spec = TxSpec::new(ops.builtins().add, &[1, 1], &[0, 1]);
                let _ = ops
                    .stm()
                    .run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec))
                    .unwrap();
            }
        }
    });
    // Fold the rings into the post-mortem dump embedded in the trace.
    let mut flight = FlightDump::default();
    let mut attribution = Attribution::new();
    for ring in &rings {
        let read = ring.read_since(0);
        flight.events += read.events.len() as u64;
        flight.dropped += read.dropped;
        attribution.fold(&read.events);
    }
    flight.attribution = attribution;
    println!(
        "flight recorder:    {} events, {} aborts attributed",
        flight.events,
        flight.attribution.aborts()
    );
    let trace_path = std::path::Path::new("results/fault_injection_trace.json");
    match stm_sim::perfetto::write_chrome_trace_with(trace_path, &report, Some(&flight)) {
        Ok(()) => println!("perfetto trace:     {} (open at ui.perfetto.dev)", trace_path.display()),
        Err(e) => println!("perfetto trace:     export failed: {e}"),
    }
    println!("crashed processors: {:?}", report.crashed);
    println!("final cells:        {:?} (victim's +100 applied exactly once)", sim.all_cells(&report));
    println!("leaked ownerships:  {:?}", sim.leaked_ownerships(&report));
    println!("commits in trace:   {}", sim.commit_count(&report));
    match LivenessChecker::with_budget(60_000).check(&report) {
        None => println!("liveness:           OK (lock-freedom bound held)\n"),
        Some(v) => println!("liveness:           VIOLATION: {v}\n"),
    }
    assert_eq!(sim.all_cells(&report), vec![120, 120]);
}

/// Act 2: without helping, the same crash wedges the system — reported as a
/// structured violation, not a panic.
fn ablation_wedges() {
    println!("--- act 2: same crash, helping disabled (ablation) ---");
    let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, Some(1));
    let config = StmConfig { helping: false, ..Default::default() };
    let sim = StmSim::new(3, 2, 2, config).seed(1).jitter(2).max_cycles(150_000).trace(100_000).faults(plan);
    let report = sim.run(BusModel::for_procs(3), |p, ops| {
        move |mut port: SimPort| {
            if p == 0 {
                ops.fetch_add_many(&mut port, &[0, 1], &[100, 100]);
                return;
            }
            ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]); // can never commit
        }
    });
    match &report.violation {
        Some(v) => println!("watchdog verdict:   {v}"),
        None => println!("watchdog verdict:   (none?)"),
    }
    println!("leaked ownerships:  {:?} (the wedge, made visible)\n", sim.leaked_ownerships(&report));
    assert!(report.violation.is_some(), "the ablation must wedge");
}

/// Act 3: the harness catches a sabotaged protocol and shrinks the failure.
fn catch_and_shrink() {
    println!("--- act 3: sabotaged protocol (release before update) ---");
    let fails = |seed: u64, plan: &FaultPlan| -> bool {
        let config = StmConfig { sabotage: Sabotage::ReleaseBeforeUpdate, ..Default::default() };
        let sim = StmSim::new(3, 2, 2, config).seed(seed).jitter(3).trace(200_000).faults(plan.clone());
        let report = sim.run(BusModel::for_procs(3), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..15 {
                    ops.fetch_add(&mut port, 0, 1);
                }
            }
        });
        sim.cell_value(&report, 0) != sim.commit_count(&report) as u32
            || !sim.leaked_ownerships(&report).is_empty()
            || LivenessChecker::with_budget(80_000).check(&report).is_some()
    };

    // Hunt: a canonical stall plus fuzzed plans, across a few seeds.
    let mut fuzzer = FaultFuzzer::new(7, 3, 1);
    let mut candidates =
        vec![FaultPlan::new(), FaultPlan::new().stall_at_step(0, StepKind::UpdateWrite, Some(0), 5000)];
    for _ in 0..20 {
        candidates.push(fuzzer.next_plan());
    }
    let (seed, plan) = 'found: {
        for seed in 0..10u64 {
            for plan in &candidates {
                if fails(seed, plan) {
                    break 'found (seed, plan.clone());
                }
            }
        }
        panic!("sabotage evaded the harness");
    };
    println!("first failing:      seed {seed}, plan [{plan}]");

    let (min_seed, min_plan) = shrink(seed, &plan, fails);
    println!("shrunk reproducer:  seed {min_seed}, plan [{min_plan}]");

    // Replay the minimal reproducer and dump the end of its trace.
    let config = StmConfig { sabotage: Sabotage::ReleaseBeforeUpdate, ..Default::default() };
    let sim = StmSim::new(3, 2, 2, config).seed(min_seed).jitter(3).trace(200_000).faults(min_plan);
    let report = sim.run(BusModel::for_procs(3), |_p, ops| {
        move |mut port: SimPort| {
            for _ in 0..15 {
                ops.fetch_add(&mut port, 0, 1);
            }
        }
    });
    println!(
        "replay:             value {} vs {} commits — the lost update, pinned",
        sim.cell_value(&report, 0),
        sim.commit_count(&report)
    );
    println!("last cycles of the failing execution:");
    println!("{}", render_trace(&report.trace, 16, report.trace_dropped));
}
