//! Dining philosophers without deadlock, via multi-word transactions.
//!
//! Each fork is a one-unit resource; a philosopher picks up *both* forks
//! with a single atomic acquire (the resource-allocation primitive from the
//! paper's evaluation). Deadlock is impossible by construction — there is no
//! state in which a philosopher holds one fork and waits for the other —
//! and the STM's lock-freedom means even a preempted philosopher cannot
//! block the table.
//!
//! Run with: `cargo run --example dining_philosophers`

use stm_core::machine::host::HostMachine;
use stm_structures::resource::ResourcePool;
use stm_structures::Method;

const PHILOSOPHERS: usize = 5;
const MEALS: usize = 2_000;

fn main() {
    let forks = ResourcePool::new(Method::Stm, 0, PHILOSOPHERS, PHILOSOPHERS);
    let machine = HostMachine::new(
        ResourcePool::words_needed(Method::Stm, PHILOSOPHERS, PHILOSOPHERS),
        PHILOSOPHERS,
    );
    {
        let mut port = machine.port(0);
        forks.init_on(&mut port, 1); // one unit per fork
    }

    let meals_eaten = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..PHILOSOPHERS {
            let forks = forks.clone();
            let machine = machine.clone();
            let meals_eaten = &meals_eaten;
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut h = forks.handle(&port);
                let left = p;
                let right = (p + 1) % PHILOSOPHERS;
                let pair = [left.min(right), left.max(right)];
                for _ in 0..MEALS {
                    // Think (briefly), then grab both forks atomically.
                    while !h.try_acquire(&mut port, &pair) {
                        std::hint::spin_loop(); // neighbours are eating
                    }
                    // Eat: we exclusively hold both forks.
                    meals_eaten.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    h.release(&mut port, &pair);
                }
            });
        }
    });

    let eaten = meals_eaten.load(std::sync::atomic::Ordering::Relaxed);
    println!("{PHILOSOPHERS} philosophers ate {eaten} meals without deadlock");
    assert_eq!(eaten, PHILOSOPHERS * MEALS);

    let mut port = machine.port(0);
    let mut h = forks.handle(&port);
    assert_eq!(h.read_all(&mut port), vec![1; PHILOSOPHERS], "all forks back on the table");
    println!("dining_philosophers OK");
}
