//! Run the paper's counting benchmark on the simulated 16-processor bus
//! machine — a miniature of the evaluation pipeline.
//!
//! The host running this example has however many cores it has; the
//! *simulated* machine has 16, with a snoopy-cache bus cost model, exactly
//! like the paper used Proteus to evaluate 64-processor machines it did not
//! own. The run is fully deterministic: same seed, same numbers.
//!
//! Run with: `cargo run --release --example simulated_machine`

use stm_bench::workloads::{run_point, ArchKind, Bench};
use stm_structures::Method;

fn main() {
    const PROCS: usize = 16;
    const OPS: u64 = 512;

    println!("counting benchmark, simulated {PROCS}-processor bus machine, {OPS} increments");
    println!("{:>12} {:>12} {:>14}", "method", "cycles", "ops/Mcycle");
    for method in Method::PAPER {
        let point = run_point(Bench::Counting, ArchKind::Bus, method, PROCS, OPS, 42);
        println!("{:>12} {:>12} {:>14.1}", method.label(), point.cycles, point.throughput);
    }

    // Determinism: the same configuration reproduces cycle-exact results.
    let a = run_point(Bench::Counting, ArchKind::Bus, Method::Stm, PROCS, OPS, 42);
    let b = run_point(Bench::Counting, ArchKind::Bus, Method::Stm, PROCS, OPS, 42);
    assert_eq!(a.cycles, b.cycles, "simulation must be deterministic");
    println!("deterministic replay: {} cycles both times", a.cycles);

    // Proteus-style observability: trace a short run and find the hot spot.
    trace_demo();
    println!("simulated_machine OK");
}

fn trace_demo() {
    use stm_core::stm::StmConfig;
    use stm_sim::arch::BusModel;
    use stm_sim::harness::StmSim;
    use stm_sim::trace::TraceAnalysis;

    let mut sim = StmSim::new(4, 4, 2, StmConfig::default()).seed(1).jitter(2);
    sim.init_cell(0, 0);
    // Re-wire with tracing: the harness exposes seed/jitter; for a traced
    // run we drop to the engine via the same workload shape.
    let ops = sim.ops().clone();
    let layout = *ops.stm().layout();
    let report = stm_sim::engine::Simulation::new(
        stm_sim::engine::SimConfig {
            n_words: layout.words_needed(),
            seed: 1,
            jitter: 2,
            trace_limit: 100_000,
            ..Default::default()
        },
        BusModel::for_procs(4),
    )
    .run(4, |_p| {
        let ops = ops.clone();
        move |mut port: stm_sim::engine::SimPort| {
            for _ in 0..32 {
                ops.fetch_add(&mut port, 0, 1);
            }
        }
    });
    let analysis = TraceAnalysis::of(&report.trace, 4, 8);
    println!(
        "traced {} events; per-proc ops {:?}; hottest address {} (the contended cell's ownership/status words dominate)",
        analysis.events,
        analysis.ops_per_proc,
        analysis.hottest().unwrap()
    );
}
