//! Chaos tour: the hardened host runtime under random preemption.
//!
//! Four real threads run randomized multi-cell transactions through a
//! [`ChaosPort`] that injects yields, sleeps, and spins at every instrumented
//! protocol step point — the OS scheduler plus deliberate preemption at the
//! protocol's most interruption-sensitive instants. Meanwhile:
//!
//! * every worker drives the managed retry loop (`run` with an
//!   [`AdaptiveManager`]) and aggregates [`TxMetrics`];
//! * a watchdog thread scans commit progress every 50 ms and prints a
//!   structured report for any interval in which a thread stalled;
//! * every committed transaction's `(cells, old, stamps, new)` witness is
//!   collected and, at the end, the full history is checked for
//!   serializability by [`HistoryChecker`].
//!
//! The run *fails* (non-zero exit) if the committed-transaction count is
//! short, the counters are inexact, or the serializability audit finds a
//! violation. Set `CHAOS_TOUR_TOTAL` to change the transaction count
//! (default 10 000).
//!
//! ```sh
//! cargo run --release --example chaos_tour
//! CHAOS_TOUR_TOTAL=2000 cargo run --release --example chaos_tour
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use stm_core::contention::AdaptiveManager;
use stm_core::export::{snapshot_json, MetricsRegistry};
use stm_core::history::{CommitRecord, HistoryChecker};
use stm_core::machine::chaos::{ChaosConfig, ChaosPort, ChaosStats, Watchdog};
use stm_core::machine::host::HostMachine;
use stm_core::metrics::TxMetrics;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::{CellIdx, Word};

const PROCS: usize = 4;
const CELLS: usize = 16;
const MAX_LOCS: usize = 8;

/// Local splitmix64 for workload generation (the chaos port has its own).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() {
    let total: u64 = std::env::var("CHAOS_TOUR_TOTAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let per = total / PROCS as u64;
    let total = per * PROCS as u64;

    let ops = StmOps::new(0, CELLS, PROCS, MAX_LOCS, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), PROCS);
    // Always-on flight recorders: one ring per worker, folded into a blame
    // table after the tour for the post-mortem dump.
    let registry = MetricsRegistry::new(PROCS, 1 << 16);
    for n in 2..=4u32 {
        registry.register_op(n, &format!("add{n}"));
    }
    let mut dog = Watchdog::new(PROCS);
    let handles: Vec<_> = (0..PROCS).map(|p| dog.handle(p)).collect();
    let done = AtomicBool::new(false);

    let records: Mutex<Vec<CommitRecord>> = Mutex::new(Vec::with_capacity(total as usize));
    let metrics_all = Mutex::new(TxMetrics::new());
    let chaos_all = Mutex::new(ChaosStats::default());
    let stalled_intervals = Mutex::new(0u64);

    println!("chaos tour: {PROCS} threads x {per} transactions over {CELLS} cells");
    let started = Instant::now();

    std::thread::scope(|s| {
        // Watchdog monitor: scan every 50 ms until the workers are done.
        let monitor = s.spawn(|| {
            let mut stalls = 0u64;
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(50));
                let report = dog.scan();
                if report.any_stalled() && !done.load(Ordering::Acquire) {
                    stalls += 1;
                    println!("watchdog: stalled interval #{stalls}\n{report}");
                }
            }
            *stalled_intervals.lock().unwrap() = stalls;
            dog.scan()
        });

        let workers: Vec<_> = (0..PROCS)
            .map(|p| {
                let ops = ops.clone();
                let machine = machine.clone();
                let handle = handles[p].clone();
                let records = &records;
                let metrics_all = &metrics_all;
                let chaos_all = &chaos_all;
                let registry = registry.clone();
                s.spawn(move || {
                    let cfg = ChaosConfig::default().with_seed(0xC4A0_5EED ^ p as u64);
                    let mut port = ChaosPort::new(machine.port(p), cfg);
                    let mut cm = AdaptiveManager::new(p);
                    let mut metrics = TxMetrics::new();
                    let mut rec = registry.recorder(p);
                    let mut mine = Vec::with_capacity(per as usize);
                    let mut rng = 0xFEED ^ (p as u64) << 32;

                    for i in 0..per {
                        // 2..=4 distinct cells, delta 1..=7 each.
                        rng = splitmix64(rng);
                        let n = 2 + (rng % 3) as usize;
                        let mut cells: Vec<CellIdx> = Vec::with_capacity(n);
                        while cells.len() < n {
                            rng = splitmix64(rng);
                            let c = (rng % CELLS as u64) as CellIdx;
                            if !cells.contains(&c) {
                                cells.push(c);
                            }
                        }
                        let deltas: Vec<u32> = (0..n)
                            .map(|_| {
                                rng = splitmix64(rng);
                                1 + (rng % 7) as u32
                            })
                            .collect();
                        let params: Vec<Word> = deltas.iter().map(|&d| d as Word).collect();
                        let spec = TxSpec::new(ops.builtins().add, &params, &cells);
                        rec.set_op(n as u32);
                        let mut tee = (&mut metrics, &mut rec);
                        let out = ops
                            .stm()
                            .run(
                                &mut port,
                                &spec,
                                &mut TxOptions::new().observer(&mut tee).manager(&mut cm),
                            )
                            .expect("unlimited budget cannot exhaust");
                        handle.commit();
                        let new_values: Vec<u32> = out
                            .old
                            .iter()
                            .zip(&deltas)
                            .map(|(&o, &d)| o.wrapping_add(d))
                            .collect();
                        mine.push(CommitRecord {
                            id: p * per as usize + i as usize,
                            cells,
                            old_values: out.old,
                            old_stamps: out.old_stamps,
                            new_values,
                        });
                    }
                    records.lock().unwrap().extend(mine);
                    metrics_all.lock().unwrap().merge(&metrics);
                    chaos_all.lock().unwrap().merge(&port.stats());
                })
            })
            .collect();

        for w in workers {
            w.join().expect("worker panicked");
        }
        done.store(true, Ordering::Release);
        // The final scan runs after the workers finished, so its deltas are
        // zero by construction — report totals only.
        let final_report = monitor.join().expect("monitor panicked");
        for p in &final_report.procs {
            println!("p{}: {} commits", p.proc, p.commits);
        }
    });

    let elapsed = started.elapsed();
    let metrics = metrics_all.into_inner().unwrap();
    let chaos = chaos_all.into_inner().unwrap();
    let stalls = stalled_intervals.into_inner().unwrap();

    println!(
        "chaos injected: {} steps, {} yields, {} sleeps, {} spins",
        chaos.steps, chaos.yields, chaos.sleeps, chaos.spins
    );
    println!("stalled watchdog intervals: {stalls}");
    println!("--- merged metrics ---\n{}", metrics.summary());

    // Post-mortem: fold every flight ring into a snapshot, print the blame
    // table, and dump the machine-readable form next to the bench results.
    let snap = registry.snapshot();
    println!(
        "--- flight recorder: {} events folded, {} dropped ---",
        snap.totals.events, snap.totals.dropped
    );
    if !snap.attribution.is_empty() {
        print!("{}", snap.attribution.summary(8));
    }
    let dump = std::path::Path::new("results/chaos_tour_flight.json");
    if let Some(parent) = dump.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(dump, snapshot_json(&snap)) {
        Ok(()) => println!("flight snapshot written to {}", dump.display()),
        Err(e) => println!("flight snapshot not written ({e})"),
    }

    // Exactness: the sum of all cells must equal the sum of all deltas.
    let records = records.into_inner().unwrap();
    assert_eq!(records.len() as u64, total, "every transaction committed");
    assert_eq!(metrics.commits(), total, "metrics agree");
    assert!(metrics.helping_is_non_redundant(), "one-level helping bound");
    // Quiescent, so per-cell reads are an exact snapshot (a transactional
    // snapshot would need CELLS ≤ max_locs).
    let mut port = machine.port(0);
    let installed: u64 =
        (0..CELLS).map(|c| ops.stm().read_cell(&mut port, c) as u64).sum();
    let intended: u64 = records
        .iter()
        .map(|r| {
            r.new_values
                .iter()
                .zip(&r.old_values)
                .map(|(&n, &o)| (n - o) as u64)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(installed, intended, "every delta landed exactly once");

    // Serializability audit over the full history.
    let mut checker = HistoryChecker::new(vec![0; CELLS]);
    for r in records {
        checker.add(r);
    }
    let order = checker.check().expect("serializability audit");
    println!(
        "serializability audit passed: {} commits form a serial order ({:.2?} wall)",
        order.len(),
        elapsed
    );
}
