//! KV service: a million-key transactional key-value store over the
//! growable sharded cell arena.
//!
//! The service is an [`StmHashMap`](stm_structures::hashmap::StmHashMap)
//! whose 3-cell entries are allocated and freed from a
//! [`CellArena`](stm_core::arena::CellArena) while transactions run:
//! segment-append growth keeps every cell address stable, per-shard free
//! lists recycle spans, and the frozen-bucket validation scheme makes
//! stale traversals into recycled spans provably fail. Traffic is Zipfian
//! get/put/delete with compiled-plan hot ops (value updates commit on a
//! cached 2-cell plan).
//!
//! ```text
//! cargo run --release --example kv_service -- [OPTIONS]
//!
//! OPTIONS
//!   --keys N        key-space size (default 600000 — ≥1M live cells)
//!   --buckets N     hash buckets, power of two (default 262144)
//!   --threads N     worker threads for single runs and soaks (default 4)
//!   --ops N         operations per run/rung (default 400000)
//!   --skew S        Zipf exponent (default 0.99; 0 = uniform)
//!   --read-pct P    percent of ops that are gets (default 95)
//!   --seed S        RNG seed (default 31415)
//!   --ladder        run the full threads × skew × read-ratio ladder
//!   --soak N        churn N total ops in chunks, printing live-cell
//!                   progress (the nightly CI soak runs 10M)
//!   --flight PATH   write a metrics sidecar JSON (arena alloc/free flight
//!                   events folded into per-proc counters) after the run
//!   --update-bench  run the ladder and splice the rows into
//!                   results/BENCH_stm.json (other sections untouched)
//! ```

use std::path::PathBuf;

use stm_bench::kv::{
    build_world, kv_ladder, run_kv_point, KvConfig, KvPoint, KvWorld, KV_BUCKETS, KV_KEYS,
    KV_OPS, KV_SEED,
};
use stm_bench::report::splice_kv_section;
use stm_bench::table::{render_columns, thousands};
use stm_core::export::{snapshot_json, MetricsRegistry};
use stm_core::DEFAULT_FLIGHT_CAPACITY;

struct Args {
    keys: u32,
    buckets: usize,
    threads: usize,
    ops: u64,
    skew: f64,
    read_pct: u32,
    seed: u64,
    ladder: bool,
    soak: Option<u64>,
    flight: Option<PathBuf>,
    update_bench: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        keys: KV_KEYS,
        buckets: KV_BUCKETS,
        threads: 4,
        ops: KV_OPS,
        skew: 0.99,
        read_pct: 95,
        seed: KV_SEED,
        ladder: false,
        soak: None,
        flight: None,
        update_bench: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--keys" => a.keys = val("--keys").parse().expect("--keys N"),
            "--buckets" => a.buckets = val("--buckets").parse().expect("--buckets N"),
            "--threads" => a.threads = val("--threads").parse().expect("--threads N"),
            "--ops" => a.ops = val("--ops").parse().expect("--ops N"),
            "--skew" => a.skew = val("--skew").parse().expect("--skew S"),
            "--read-pct" => a.read_pct = val("--read-pct").parse().expect("--read-pct P"),
            "--seed" => a.seed = val("--seed").parse().expect("--seed S"),
            "--ladder" => a.ladder = true,
            "--soak" => a.soak = Some(val("--soak").parse().expect("--soak N")),
            "--flight" => a.flight = Some(PathBuf::from(val("--flight"))),
            "--update-bench" => a.update_bench = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: kv_service [--keys N] [--buckets N] [--threads N] [--ops N] \
                     [--skew S] [--read-pct P] [--seed S] [--ladder] [--soak N] \
                     [--flight PATH] [--update-bench]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let a = parse_args();
    println!(
        "kv service: {} keys, {} buckets, seed {}",
        thousands(u64::from(a.keys)),
        thousands(a.buckets as u64),
        a.seed
    );
    let n_procs = if a.ladder || a.update_bench { 4 } else { a.threads.max(1) };
    let t0 = std::time::Instant::now();
    let world = build_world(a.keys, a.buckets, n_procs);
    println!(
        "world built in {:.2}s: {} live cells in {} segments ({} capacity)",
        t0.elapsed().as_secs_f64(),
        thousands(world.map().arena().live_cells() as u64),
        world.map().arena().segments_live(),
        thousands(world.map().arena().capacity_cells() as u64),
    );

    // The sidecar registry folds the arena's alloc/free flight events into
    // per-proc counters; attached after the prefill so it narrates churn.
    let registry = MetricsRegistry::new(n_procs, DEFAULT_FLIGHT_CAPACITY);
    if a.flight.is_some() {
        world.map().arena().attach_recorder(registry.recorder(0));
    }

    let points = if let Some(total) = a.soak {
        run_soak(&world, &a, total)
    } else if a.ladder || a.update_bench {
        let ladder = kv_ladder(a.keys, a.buckets, a.ops);
        ladder.iter().map(|cfg| run_kv_point(&world, cfg)).collect()
    } else {
        vec![run_kv_point(
            &world,
            &KvConfig {
                keys: a.keys,
                n_buckets: a.buckets,
                threads: a.threads.max(1),
                total_ops: a.ops,
                skew: a.skew,
                read_pct: a.read_pct,
                seed: a.seed,
            },
        )]
    };
    print_points(&points);

    // Quiesced integrity: exact accounting is the whole point of the arena.
    let scanned = {
        let mut port = world.machine().port(0);
        world.map().check_quiesced(&mut port, true)
    };
    println!(
        "quiesced scan: {} entries, arena accounting exact ({} live cells, high water {})",
        thousands(scanned),
        thousands(world.map().arena().live_cells() as u64),
        thousands(world.map().arena().stats().high_water_cells as u64),
    );

    if let Some(path) = &a.flight {
        let snap = registry.snapshot();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create flight sidecar dir");
        }
        std::fs::write(path, snapshot_json(&snap)).expect("write flight sidecar");
        println!("wrote flight sidecar {}", path.display());
    }

    if a.update_bench {
        let path = PathBuf::from("results/BENCH_stm.json");
        splice_kv_section(&path, &points).expect("splice kv section into BENCH_stm.json");
        println!("spliced {} kv rows into {}", points.len(), path.display());
    }
    println!("kv_service OK");
}

/// Churn `total` operations in chunks, printing live-cell progress per
/// chunk (each chunk re-seeds its streams so the soak keeps exploring).
fn run_soak(world: &KvWorld, a: &Args, total: u64) -> Vec<KvPoint> {
    let chunk = (total / 20).clamp(10_000, 1_000_000);
    let mut points = Vec::new();
    let mut done = 0u64;
    println!(
        "soak: {} ops in {} chunks of {} ({} threads, skew {}, {}% reads)",
        thousands(total),
        total.div_ceil(chunk),
        thousands(chunk),
        a.threads,
        a.skew,
        a.read_pct
    );
    while done < total {
        let cfg = KvConfig {
            keys: a.keys,
            n_buckets: a.buckets,
            threads: a.threads.max(1),
            total_ops: chunk.min(total - done),
            skew: a.skew,
            read_pct: a.read_pct,
            seed: a.seed.wrapping_add(done),
        };
        let p = run_kv_point(world, &cfg);
        done += p.total_ops;
        println!(
            "  {:>13} ops done: {:>10} entries, {:>10} live cells, {:>12.0} ops/s",
            thousands(done),
            thousands(p.entries),
            thousands(p.live_cells),
            p.ops_per_sec
        );
        points.push(p);
    }
    points
}

fn print_points(points: &[KvPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label(),
                format!("{:.0}", p.ops_per_sec),
                thousands(p.gets),
                format!("{:.3}", if p.gets == 0 { 0.0 } else { p.hits as f64 / p.gets as f64 }),
                thousands(p.puts),
                thousands(p.deletes),
                thousands(p.entries),
                thousands(p.live_cells),
                thousands(p.high_water_cells),
                p.segments_live.to_string(),
            ]
        })
        .collect();
    println!();
    print!(
        "{}",
        render_columns(
            "KV service ladder (wall-clock)",
            &[
                "config", "ops/sec", "gets", "hit-rate", "puts", "deletes", "entries",
                "live-cells", "high-water", "segments"
            ],
            &rows
        )
    );
    println!();
}
