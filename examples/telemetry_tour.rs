//! Telemetry tour: the observer hooks, the metrics they feed, and the
//! Perfetto trace they export.
//!
//! Three acts:
//!
//! 1. **Zero-cost hooks.** The observer is monomorphized into the protocol:
//!    with [`NoopObserver`] every callback is an empty inlined function. A
//!    [`CountingPort`] proves the shared-memory footprint of a transaction
//!    is bit-for-bit identical with and without the instrumentation, and a
//!    [`RecordingObserver`] shows the lifecycle event stream the hooks emit.
//! 2. **Contention metrics.** A deliberately contended simulated run feeds
//!    [`TxMetrics`] on every processor: attempts-to-commit and cycles
//!    histograms, the hot-cell heatmap, and the paper's one-level
//!    non-redundant-helping bound checked from live counts.
//! 3. **Perfetto export.** The same run's engine trace is exported as
//!    Chrome-trace-event JSON — openable at `ui.perfetto.dev` — and round-
//!    tripped through the JSON parser to prove the file is well-formed.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use std::sync::{Arc, Mutex};

use stm_core::machine::counting::CountingPort;
use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::{NoopObserver, RecordingObserver, TxMetrics};
use stm_sim::engine::SimPort;
use stm_sim::perfetto;
use stm_sim::{BusModel, StmSim};

fn main() {
    zero_cost_hooks();
    let report = contention_metrics();
    perfetto_export(&report);
    println!("telemetry_tour OK");
}

/// Act 1: instrumentation costs nothing when unused, and the hooks narrate
/// the protocol when used.
fn zero_cost_hooks() {
    println!("--- act 1: observer hooks are free until you use them ---");
    let ops = StmOps::new(0, 8, 1, 4, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
    let mut port = CountingPort::new(machine.port(0));
    let spec = |params: &'static [u64]| TxSpec::new(ops.builtins().add, params, &[1, 4]);

    // Footprint of a plain (default-options) transaction...
    let _ = ops.stm().run(&mut port, &spec(&[1, 1]), &mut TxOptions::new());
    port.reset();
    let _ = ops.stm().run(&mut port, &spec(&[1, 1]), &mut TxOptions::new());
    let plain = port.counts();

    // ...equals the footprint with the no-op observer threaded through.
    port.reset();
    let _ = ops.stm().run(&mut port, &spec(&[1, 1]), &mut TxOptions::new().observer(NoopObserver));
    let observed = port.counts();
    println!("plain footprint:    {plain:?}");
    println!("noop-observed:      {observed:?}");
    assert_eq!(plain, observed, "NoopObserver must be free");

    // A RecordingObserver sees the full lifecycle of the same transaction.
    let mut rec = RecordingObserver::default();
    let _ = ops.stm().run(&mut port, &spec(&[2, 2]), &mut TxOptions::new().observer(&mut rec));
    println!("lifecycle events:");
    for e in rec.events() {
        println!("  {e:?}");
    }
    println!();
}

/// Act 2: a contended simulated run, measured per processor.
fn contention_metrics() -> stm_sim::SimReport {
    println!("--- act 2: contention metrics on a 6-processor bus machine ---");
    const PROCS: usize = 6;
    const TXS: usize = 20;
    let sim = StmSim::new(PROCS, 4, 2, StmConfig::default()).seed(42).jitter(3).trace(200_000);
    let collected: Arc<Mutex<Vec<TxMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let report = sim.run(BusModel::for_procs(PROCS), |p, ops| {
        let collected = Arc::clone(&collected);
        move |mut port: SimPort| {
            let mut metrics = TxMetrics::default();
            for i in 0..TXS {
                // Everyone hammers cell 0; cell 1..3 spread the rest.
                let cells = [0, 1 + (p + i) % 3];
                let spec = TxSpec::new(ops.builtins().add, &[1, 1], &cells);
                let _ = ops
                    .stm()
                    .run(&mut port, &spec, &mut TxOptions::new().observer(&mut metrics));
            }
            collected.lock().unwrap().push(metrics);
        }
    });

    let mut total = TxMetrics::default();
    for m in collected.lock().unwrap().iter() {
        total.merge(m);
    }
    println!("commits={} conflicts={} helps={}", total.commits(), total.conflicts(), total.helps());
    println!("attempts/commit:    {}", total.attempts_to_commit);
    println!("cycles/attempt:     {}", total.cycles_per_attempt);
    println!("help cycles:        {}", total.help_cycles);
    println!("hot cells:          {:?}", total.hot_cells(3));
    println!("{}", total.summary());
    assert_eq!(total.commits(), (PROCS * TXS) as u64, "every transaction commits eventually");
    assert!(total.helping_is_non_redundant(), "one-level helping bound must hold");
    let hot = total.hot_cells(1);
    assert_eq!(hot.first().map(|&(c, _)| c), Some(0), "cell 0 is the scripted hot spot");
    println!();
    report
}

/// Act 3: export the engine trace for the Perfetto UI and round-trip it.
fn perfetto_export(report: &stm_sim::SimReport) {
    println!("--- act 3: Chrome-trace (Perfetto) export ---");
    let path = std::path::Path::new("results/telemetry_tour_trace.json");
    perfetto::write_chrome_trace(path, report).expect("write trace");
    let json = std::fs::read_to_string(path).expect("read back");
    let v: serde_json::Value = serde_json::from_str(&json).expect("exported trace must parse");
    let n_events = v["traceEvents"].as_array().expect("traceEvents").len();
    println!("wrote {} ({} events, {} bytes)", path.display(), n_events, json.len());
    println!("open it at ui.perfetto.dev: one track per processor, spans per attempt");
    assert_eq!(v["otherData"]["commits"].as_u64(), Some(report.stats.commits()));
    assert!(n_events > 0);
    println!();
}
