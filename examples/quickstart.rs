//! Quickstart: the Shavit–Touitou STM on the host machine.
//!
//! Shows the three things a new user needs: setting up an STM instance,
//! running derived operations (fetch-and-add, multi-word CAS, atomic
//! snapshots), and sharing the instance across real threads.
//!
//! Run with: `cargo run --example quickstart`

use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::StmConfig;

fn main() {
    // An STM with 16 transactional cells, shared by 4 processors, allowing
    // transactions over up to 8 cells at once.
    const PROCS: usize = 4;
    let ops = StmOps::new(0, 16, PROCS, 8, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), PROCS);

    // Single-threaded warm-up: every derived operation is one atomic
    // multi-word transaction under the hood.
    {
        let mut port = machine.port(0);
        let old = ops.fetch_add(&mut port, 0, 5);
        println!("fetch_add(cell 0, +5) returned old value {old}");

        ops.mwcas(&mut port, &[(1, 0, 100), (2, 0, 200)])
            .expect("both cells hold their expected values");
        println!("mwcas installed cells 1,2 = {:?}", ops.snapshot(&mut port, &[1, 2]));

        match ops.mwcas(&mut port, &[(1, 0, 1), (2, 200, 2)]) {
            Ok(()) => unreachable!("cell 1 no longer holds 0"),
            Err(witnessed) => println!("mwcas failed, witnessed snapshot {witnessed:?}"),
        }
    }

    // Concurrent use: each thread drives its own port; the shared counter in
    // cell 0 is lock-free — no thread can block another.
    std::thread::scope(|s| {
        for p in 0..PROCS {
            let ops = ops.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                for _ in 0..10_000 {
                    // fetch_add on a hot cell: conflicts are resolved by the
                    // paper's helping mechanism rather than by blocking.
                    ops.fetch_add(&mut port, 0, 1);
                }
            });
        }
    });

    let mut port = machine.port(0);
    let final_value = ops.snapshot(&mut port, &[0])[0];
    println!("4 threads x 10000 increments (+5 initial) = {final_value}");
    assert_eq!(final_value, 4 * 10_000 + 5);
    println!("quickstart OK");
}
