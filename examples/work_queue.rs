//! Work queue: producers and consumers over the STM FIFO queue.
//!
//! Uses the doubly-linked queue from the paper's evaluation (enqueue at the
//! tail, dequeue at the head) — each operation is a static transaction over
//! `{head, tail, one slot}`, so producers and consumers of a non-empty,
//! non-full queue do not conflict with each other.
//!
//! Run with: `cargo run --example work_queue`

use stm_core::machine::host::HostMachine;
use stm_structures::queue::FifoQueue;
use stm_structures::Method;

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const ITEMS_PER_PRODUCER: u32 = 20_000;
const CAPACITY: usize = 64;

fn main() {
    let procs = PRODUCERS + CONSUMERS;
    let queue = FifoQueue::new(Method::Stm, 0, procs, CAPACITY);
    let machine =
        HostMachine::new(FifoQueue::words_needed(Method::Stm, procs, CAPACITY), procs);
    {
        let mut port = machine.port(0);
        queue.init_on(&mut port);
    }

    let consumed_sum = std::sync::atomic::AtomicU64::new(0);
    let consumed_count = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let queue = queue.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut h = queue.handle(&port);
                for i in 0..ITEMS_PER_PRODUCER {
                    let item = p as u32 * ITEMS_PER_PRODUCER + i;
                    while !h.enqueue(&mut port, item) {
                        std::hint::spin_loop(); // queue full; consumers will drain
                    }
                }
            });
        }
        for c in 0..CONSUMERS {
            let queue = queue.clone();
            let machine = machine.clone();
            let consumed_sum = &consumed_sum;
            let consumed_count = &consumed_count;
            s.spawn(move || {
                let mut port = machine.port(PRODUCERS + c);
                let mut h = queue.handle(&port);
                let quota = (PRODUCERS as u64 * ITEMS_PER_PRODUCER as u64) / CONSUMERS as u64;
                let mut got = 0;
                while got < quota {
                    if let Some(v) = h.dequeue(&mut port) {
                        consumed_sum.fetch_add(v as u64, std::sync::atomic::Ordering::Relaxed);
                        got += 1;
                    }
                }
                consumed_count.fetch_add(got, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });

    let total_items = PRODUCERS as u64 * ITEMS_PER_PRODUCER as u64;
    let expected_sum: u64 = (0..total_items as u32).map(|v| v as u64).sum();
    let got_sum = consumed_sum.load(std::sync::atomic::Ordering::Relaxed);
    let got_count = consumed_count.load(std::sync::atomic::Ordering::Relaxed);
    println!("consumed {got_count} items, checksum {got_sum}");
    assert_eq!(got_count, total_items, "every produced item must be consumed exactly once");
    assert_eq!(got_sum, expected_sum, "no item lost, duplicated, or corrupted");

    let mut port = machine.port(0);
    let mut h = queue.handle(&port);
    assert_eq!(h.len(&mut port), 0, "queue must end empty");
    println!("work_queue OK");
}
