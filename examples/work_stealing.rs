//! Work stealing over the paper's doubly-linked deque.
//!
//! The classic use of a two-ended queue: each worker owns a deque, pushing
//! and popping work at the *back*, while idle workers steal from the *front*
//! of a victim's deque. Every operation is an atomic multi-word transaction,
//! so owner and thief can hit the same deque concurrently without locks —
//! and a preempted thief can never wedge the owner (lock-freedom).
//!
//! Run with: `cargo run --release --example work_stealing`

use std::sync::atomic::{AtomicU64, Ordering};

use stm_core::machine::host::HostMachine;
use stm_structures::deque::{Deque, End};
use stm_structures::Method;

const WORKERS: usize = 4;
const TASKS_PER_WORKER: u32 = 5_000;
const CAPACITY: usize = 64;

fn main() {
    // One deque per worker, all in one machine address space.
    let stride = Deque::words_needed(Method::Stm, WORKERS, CAPACITY);
    let deques: Vec<Deque> =
        (0..WORKERS).map(|w| Deque::new(Method::Stm, w * stride, WORKERS, CAPACITY)).collect();
    let machine = HostMachine::new(stride * WORKERS, WORKERS);
    {
        let mut port = machine.port(0);
        for d in &deques {
            d.init_on(&mut port);
        }
    }

    let done = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let total: u64 = WORKERS as u64 * TASKS_PER_WORKER as u64;

    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let deques = deques.clone();
            let machine = machine.clone();
            let done = &done;
            let stolen = &stolen;
            s.spawn(move || {
                let mut port = machine.port(w);
                let mut handles: Vec<_> = deques.iter().map(|d| d.handle(&port)).collect();
                let mut produced = 0u32;
                loop {
                    // Produce our own tasks while any remain.
                    if produced < TASKS_PER_WORKER
                        && handles[w].push(&mut port, End::Back, produced) {
                            produced += 1;
                        }
                    // Prefer our own work (LIFO from the back)...
                    if handles[w].pop(&mut port, End::Back).is_some() {
                        done.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // ...otherwise steal FIFO from a victim's front.
                    let victim = (w + 1 + (produced as usize % (WORKERS - 1))) % WORKERS;
                    if handles[victim].pop(&mut port, End::Front).is_some() {
                        done.fetch_add(1, Ordering::Relaxed);
                        stolen.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if done.load(Ordering::Relaxed) >= total && produced == TASKS_PER_WORKER {
                        break;
                    }
                    std::hint::spin_loop();
                }
            });
        }
    });

    let executed = done.load(Ordering::Relaxed);
    println!(
        "{WORKERS} workers executed {executed} tasks ({} stolen)",
        stolen.load(Ordering::Relaxed)
    );
    assert_eq!(executed, total, "every task executed exactly once");
    println!("work_stealing OK");
}
