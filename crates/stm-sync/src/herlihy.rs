//! Herlihy's non-blocking small-object translation method — the paper's
//! non-blocking baseline.
//!
//! Herlihy's methodology (1990/1993) makes any sequential object lock-free:
//! the shared state is a pointer to the current version buffer; an update
//! copies the whole buffer, applies the sequential operation to the copy,
//! and swings the pointer with a single CAS; on failure it retries with
//! exponential back-off. The paper's evaluation shows exactly where this
//! collapses — whole-object copying plus contended CAS retries — and STM's
//! advantage over it.
//!
//! Buffer recycling follows Herlihy's scheme: each processor owns a spare
//! buffer; a successful swing donates the old current buffer to the winner as
//! its new spare. ABA on the pointer is prevented by a version tag packed
//! into the pointer word.

use stm_core::machine::MemPort;
use stm_core::stm::BackoffPolicy;
use stm_core::word::{Addr, Word};

/// A shared object managed by Herlihy's non-blocking translation.
///
/// Occupies `1 + (n_procs + 1) * size` shared words: the version-tagged
/// current-buffer pointer, then `n_procs + 1` buffers of `size` words.
#[derive(Debug, Clone, Copy)]
pub struct HerlihyObject {
    base: Addr,
    size: usize,
    n_procs: usize,
    backoff: BackoffPolicy,
}

/// A processor's handle: tracks which spare buffer it currently owns.
#[derive(Debug)]
pub struct HerlihyHandle {
    obj: HerlihyObject,
    spare: usize,
}

impl HerlihyObject {
    /// An object of `size` words at `base`, for `n_procs` processors, with
    /// the default exponential back-off (base 8, cap 8192 — back-off is
    /// essential to this method; the paper's version used it too).
    pub fn new(base: Addr, size: usize, n_procs: usize) -> Self {
        Self::with_backoff(base, size, n_procs, BackoffPolicy::Exponential { base: 8, max: 8192 })
    }

    /// Same with a custom back-off policy (the A2 ablation).
    pub fn with_backoff(base: Addr, size: usize, n_procs: usize, backoff: BackoffPolicy) -> Self {
        assert!(size > 0, "object must have at least one word");
        HerlihyObject { base, size, n_procs, backoff }
    }

    /// Shared words needed for an object of `size` words and `n_procs`
    /// processors.
    pub const fn words_needed(size: usize, n_procs: usize) -> usize {
        1 + (n_procs + 1) * size
    }

    /// Object size in words.
    pub fn size(&self) -> usize {
        self.size
    }

    fn ptr_addr(&self) -> Addr {
        self.base
    }

    fn buffer(&self, buf: usize, word: usize) -> Addr {
        debug_assert!(buf <= self.n_procs);
        debug_assert!(word < self.size);
        self.base + 1 + buf * self.size + word
    }

    /// Install the initial object contents (single-owner setup, before any
    /// concurrent activity). Buffer 0 becomes current; each processor `p`
    /// owns spare buffer `p + 1`.
    pub fn install_initial<P: MemPort>(&self, port: &mut P, contents: &[Word]) {
        assert_eq!(contents.len(), self.size, "contents must match object size");
        for (i, &w) in contents.iter().enumerate() {
            port.write(self.buffer(0, i), w);
        }
        port.write(self.ptr_addr(), pack_ptr(1, 0));
    }

    /// Create processor-local handle (one per port).
    pub fn handle<P: MemPort>(&self, port: &P) -> HerlihyHandle {
        HerlihyHandle { obj: *self, spare: port.proc_id() + 1 }
    }

    /// The `(address, word)` pairs that [`HerlihyObject::install_initial`]
    /// would write — for pre-loading a simulated machine's memory.
    pub fn initial_words(&self, contents: &[Word]) -> Vec<(Addr, Word)> {
        assert_eq!(contents.len(), self.size, "contents must match object size");
        let mut out: Vec<(Addr, Word)> =
            contents.iter().enumerate().map(|(i, &w)| (self.buffer(0, i), w)).collect();
        out.push((self.ptr_addr(), pack_ptr(1, 0)));
        out
    }
}

fn pack_ptr(version: u64, buf: usize) -> Word {
    (version << 16) | buf as Word
}

fn unpack_ptr(w: Word) -> (u64, usize) {
    (w >> 16, (w & 0xFFFF) as usize)
}

impl HerlihyHandle {
    /// The object this handle operates on.
    pub fn object(&self) -> &HerlihyObject {
        &self.obj
    }

    /// Atomically apply the sequential operation `op` to the object,
    /// returning `op`'s result. Lock-free: retries with back-off until the
    /// pointer swing succeeds.
    ///
    /// `op` receives the object's words and mutates them in place; it may be
    /// executed several times (on retries) and must therefore be pure
    /// relative to its inputs.
    pub fn update<P: MemPort, R>(&mut self, port: &mut P, mut op: impl FnMut(&mut [Word]) -> R) -> R {
        let mut attempt = 0u64;
        let mut scratch = vec![0; self.obj.size];
        let mut before = vec![0; self.obj.size];
        loop {
            let cur_word = port.read(self.obj.ptr_addr());
            let (version, cur_buf) = unpack_ptr(cur_word);
            // Copy the whole object (this is the method's inherent cost).
            for (i, s) in scratch.iter_mut().enumerate() {
                *s = port.read(self.obj.buffer(cur_buf, i));
            }
            // Validate the copy wasn't torn by a concurrent recycle.
            if port.read(self.obj.ptr_addr()) != cur_word {
                attempt += 1;
                self.backoff(port, attempt);
                continue;
            }
            before.copy_from_slice(&scratch);
            let result = op(&mut scratch);
            if scratch == before {
                // Read-only operation: the validated copy is a consistent
                // snapshot, so the operation linearizes at the validation
                // read — no pointer swing needed (Herlihy's read-only
                // optimization; also prevents pure polls from endlessly
                // invalidating concurrent updaters).
                return result;
            }
            for (i, &s) in scratch.iter().enumerate() {
                port.write(self.obj.buffer(self.spare, i), s);
            }
            let new_word = pack_ptr(version.wrapping_add(1), self.spare);
            if port.compare_exchange(self.obj.ptr_addr(), cur_word, new_word).is_ok() {
                // The displaced buffer becomes our new spare.
                self.spare = cur_buf;
                return result;
            }
            attempt += 1;
            self.backoff(port, attempt);
        }
    }

    /// A consistent snapshot of the object (copy + pointer validation loop).
    pub fn read<P: MemPort>(&self, port: &mut P) -> Vec<Word> {
        let mut out = vec![0; self.obj.size];
        loop {
            let cur_word = port.read(self.obj.ptr_addr());
            let (_, cur_buf) = unpack_ptr(cur_word);
            for (i, o) in out.iter_mut().enumerate() {
                *o = port.read(self.obj.buffer(cur_buf, i));
            }
            if port.read(self.obj.ptr_addr()) == cur_word {
                return out;
            }
        }
    }

    fn backoff<P: MemPort>(&self, port: &mut P, attempt: u64) {
        let wait = self.obj.backoff.wait_cycles(port.proc_id(), attempt);
        if wait > 0 {
            port.delay(wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    #[test]
    fn ptr_packing_roundtrip() {
        for (v, b) in [(0u64, 0usize), (1, 3), (1 << 40, 65535)] {
            let w = pack_ptr(v, b);
            let (v2, b2) = unpack_ptr(w);
            assert_eq!(b, b2);
            assert_eq!(v & ((1 << 48) - 1), v2);
        }
    }

    #[test]
    fn install_then_read() {
        let obj = HerlihyObject::new(0, 3, 1);
        let m = HostMachine::new(HerlihyObject::words_needed(3, 1), 1);
        let mut port = m.port(0);
        obj.install_initial(&mut port, &[7, 8, 9]);
        let h = obj.handle(&port);
        assert_eq!(h.read(&mut port), vec![7, 8, 9]);
    }

    #[test]
    fn update_applies_and_returns() {
        let obj = HerlihyObject::new(0, 2, 1);
        let m = HostMachine::new(HerlihyObject::words_needed(2, 1), 1);
        let mut port = m.port(0);
        obj.install_initial(&mut port, &[10, 20]);
        let mut h = obj.handle(&port);
        let old = h.update(&mut port, |obj| {
            let old = obj[0];
            obj[0] += 1;
            obj[1] += 2;
            old
        });
        assert_eq!(old, 10);
        assert_eq!(h.read(&mut port), vec![11, 22]);
    }

    #[test]
    fn spare_buffer_rotates() {
        let obj = HerlihyObject::new(0, 1, 2);
        let m = HostMachine::new(HerlihyObject::words_needed(1, 2), 2);
        let mut port = m.port(0);
        obj.install_initial(&mut port, &[0]);
        let mut h = obj.handle(&port);
        for i in 1..=10 {
            h.update(&mut port, |o| o[0] = i);
            assert_eq!(h.read(&mut port), vec![i]);
        }
    }

    #[test]
    fn concurrent_counter_on_host() {
        const PROCS: usize = 4;
        const PER: u64 = 1000;
        let obj = HerlihyObject::new(0, 2, PROCS);
        let m = HostMachine::new(HerlihyObject::words_needed(2, PROCS), PROCS);
        {
            let mut port = m.port(0);
            obj.install_initial(&mut port, &[0, 0]);
        }
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    let mut h = obj.handle(&port);
                    for _ in 0..PER {
                        h.update(&mut port, |o| {
                            // Two-word object advancing in lockstep: a torn
                            // or lost update would break the invariant.
                            assert_eq!(o[0], o[1]);
                            o[0] += 1;
                            o[1] += 1;
                        });
                    }
                });
            }
        });
        let mut port = m.port(0);
        let h = obj.handle(&port);
        assert_eq!(h.read(&mut port), vec![PROCS as u64 * PER, PROCS as u64 * PER]);
    }
}
