//! MCS queue lock (Mellor-Crummey & Scott) — the paper's scalable blocking
//! baseline.
//!
//! Each processor spins on its **own** queue node (purely local spinning on a
//! cache-coherent machine), and the lock hands off FIFO, which is why queue
//! locks stay flat as processors are added while test-and-set locks collapse.
//!
//! The atomic fetch-and-store on the tail is emulated with a CAS loop (the
//! machine abstraction provides CAS only, like the paper's target machines).

use stm_core::machine::MemPort;
use stm_core::word::{Addr, Word};

const NIL: Word = 0;

/// An MCS queue lock: one tail word plus a 2-word queue node per processor.
#[derive(Debug, Clone, Copy)]
pub struct McsLock {
    base: Addr,
    n_procs: usize,
}

impl McsLock {
    /// A lock whose tail word and queue nodes live at
    /// `base .. base + words_needed(n_procs)`.
    pub fn new(base: Addr, n_procs: usize) -> Self {
        McsLock { base, n_procs }
    }

    /// Shared words needed for `n_procs` processors.
    pub const fn words_needed(n_procs: usize) -> usize {
        1 + 2 * n_procs
    }

    fn tail(&self) -> Addr {
        self.base
    }

    fn next(&self, proc: usize) -> Addr {
        debug_assert!(proc < self.n_procs);
        self.base + 1 + 2 * proc
    }

    fn locked(&self, proc: usize) -> Addr {
        debug_assert!(proc < self.n_procs);
        self.base + 2 + 2 * proc
    }

    /// Atomic fetch-and-store on the tail, emulated with CAS.
    fn swap_tail<P: MemPort>(&self, port: &mut P, new: Word) -> Word {
        loop {
            let cur = port.read(self.tail());
            if port.compare_exchange(self.tail(), cur, new).is_ok() {
                return cur;
            }
        }
    }

    /// Acquire the lock.
    pub fn lock<P: MemPort>(&self, port: &mut P) {
        let me = port.proc_id();
        let my_id = me as Word + 1;
        port.write(self.next(me), NIL);
        port.write(self.locked(me), 1);
        let prev = self.swap_tail(port, my_id);
        if prev != NIL {
            let prev_proc = (prev - 1) as usize;
            port.write(self.next(prev_proc), my_id);
            // Spin on our own node only (local on a coherent machine), with
            // a small growing poll interval.
            let mut poll = 1;
            while port.read(self.locked(me)) != 0 {
                port.delay(poll);
                poll = (poll * 2).min(16);
            }
        }
    }

    /// Release the lock.
    pub fn unlock<P: MemPort>(&self, port: &mut P) {
        let me = port.proc_id();
        let my_id = me as Word + 1;
        if port.read(self.next(me)) == NIL {
            // No known successor: try to swing the tail back to empty.
            if port.compare_exchange(self.tail(), my_id, NIL).is_ok() {
                return;
            }
            // A successor is linking itself; wait for the link.
            while port.read(self.next(me)) == NIL {
                port.delay(1);
            }
        }
        let next_proc = (port.read(self.next(me)) - 1) as usize;
        port.write(self.locked(next_proc), 0);
    }

    /// Run `f` inside the lock.
    pub fn with<P: MemPort, R>(&self, port: &mut P, f: impl FnOnce(&mut P) -> R) -> R {
        self.lock(port);
        let r = f(port);
        self.unlock(port);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    #[test]
    fn lock_unlock_single_thread() {
        let m = HostMachine::new(McsLock::words_needed(1) + 1, 1);
        let lock = McsLock::new(0, 1);
        let data = McsLock::words_needed(1);
        let mut port = m.port(0);
        lock.lock(&mut port);
        port.write(data, 5);
        lock.unlock(&mut port);
        // Reacquire immediately (tail handoff path).
        lock.lock(&mut port);
        assert_eq!(port.read(data), 5);
        lock.unlock(&mut port);
    }

    #[test]
    fn critical_section_is_mutually_exclusive_on_host() {
        const PROCS: usize = 4;
        const PER: u64 = 2000;
        let data = McsLock::words_needed(PROCS);
        let m = HostMachine::new(data + 1, PROCS);
        let lock = McsLock::new(0, PROCS);
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        lock.with(&mut port, |port| {
                            let v = port.read(data);
                            port.write(data, v + 1);
                        });
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(port.read(data), PROCS as u64 * PER);
    }
}
