//! Test-and-test-and-set spin lock with exponential back-off — the paper's
//! first blocking baseline.
//!
//! The "test-and-test" structure spins on a plain read (a cache hit on the
//! simulated bus machine) and only attempts the CAS when the lock looks
//! free; failed acquisition backs off exponentially, the configuration the
//! paper describes for its lock baselines.

use stm_core::machine::MemPort;
use stm_core::stm::BackoffPolicy;
use stm_core::word::Addr;

/// A test-and-test-and-set lock occupying one shared word.
///
/// The word holds `0` when free and `owner+1` when held (the owner tag is
/// for debugging/validation only — any non-zero value means held).
#[derive(Debug, Clone, Copy)]
pub struct TtasLock {
    addr: Addr,
    backoff: BackoffPolicy,
}

impl TtasLock {
    /// A lock at shared word `addr` with the default back-off (base 4,
    /// cap 4096 cycles).
    pub fn new(addr: Addr) -> Self {
        TtasLock { addr, backoff: BackoffPolicy::Exponential { base: 4, max: 4096 } }
    }

    /// A lock with a custom back-off policy.
    pub fn with_backoff(addr: Addr, backoff: BackoffPolicy) -> Self {
        TtasLock { addr, backoff }
    }

    /// Words of shared memory a lock occupies.
    pub const fn words_needed() -> usize {
        1
    }

    /// Acquire the lock (spins until acquired).
    pub fn lock<P: MemPort>(&self, port: &mut P) {
        let me = port.proc_id() as u64 + 1;
        let mut attempt = 0u64;
        loop {
            // Test: spin on reads (cache-local on a snoopy machine), with a
            // geometrically growing poll interval capped low so handoff
            // latency stays small.
            let mut poll = 1;
            while port.read(self.addr) != 0 {
                port.delay(poll);
                poll = (poll * 2).min(16);
            }
            // Test-and-set.
            if port.compare_exchange(self.addr, 0, me).is_ok() {
                return;
            }
            attempt += 1;
            let wait = self.backoff.wait_cycles(port.proc_id(), attempt);
            if wait > 0 {
                port.delay(wait);
            }
        }
    }

    /// Release the lock.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the caller does not hold the lock.
    pub fn unlock<P: MemPort>(&self, port: &mut P) {
        debug_assert_eq!(port.read(self.addr), port.proc_id() as u64 + 1, "unlock by non-owner");
        port.write(self.addr, 0);
    }

    /// Run `f` inside the lock (a convenience critical section).
    pub fn with<P: MemPort, R>(&self, port: &mut P, f: impl FnOnce(&mut P) -> R) -> R {
        self.lock(port);
        let r = f(port);
        self.unlock(port);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    #[test]
    fn lock_unlock_single_thread() {
        let m = HostMachine::new(2, 1);
        let mut port = m.port(0);
        let lock = TtasLock::new(0);
        lock.lock(&mut port);
        assert_ne!(port.read(0), 0);
        lock.unlock(&mut port);
        assert_eq!(port.read(0), 0);
    }

    #[test]
    fn critical_section_is_mutually_exclusive_on_host() {
        const PROCS: usize = 4;
        const PER: u64 = 2000;
        let m = HostMachine::new(2, PROCS);
        let lock = TtasLock::new(0);
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        lock.with(&mut port, |port| {
                            // Non-atomic read-modify-write: only safe under mutex.
                            let v = port.read(1);
                            port.write(1, v + 1);
                        });
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(port.read(1), PROCS as u64 * PER);
    }

    #[test]
    fn with_returns_closure_value() {
        let m = HostMachine::new(1, 1);
        let mut port = m.port(0);
        let lock = TtasLock::new(0);
        let v = lock.with(&mut port, |_| 42);
        assert_eq!(v, 42);
    }
}
