//! Anderson's array queue lock — the other classic scalable lock of the
//! era (Anderson 1990), included alongside MCS for the lock-baseline
//! ablation.
//!
//! Waiters claim consecutive slots of a flag array with fetch-and-increment
//! (emulated with CAS) and spin each on their own slot; release sets the
//! next slot. Like MCS this gives FIFO handoff and local spinning, but with
//! statically allocated per-lock space proportional to the processor count.

use stm_core::machine::MemPort;
use stm_core::word::{Addr, Word};

/// An Anderson array lock: a ticket word plus one flag slot per processor.
#[derive(Debug, Clone, Copy)]
pub struct AndersonLock {
    base: Addr,
    n_slots: usize,
}

impl AndersonLock {
    /// A lock at `base` sized for `n_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is 0.
    pub fn new(base: Addr, n_procs: usize) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        AndersonLock { base, n_slots: n_procs }
    }

    /// Shared words needed for `n_procs` processors.
    pub const fn words_needed(n_procs: usize) -> usize {
        1 + n_procs
    }

    fn ticket(&self) -> Addr {
        self.base
    }

    fn slot(&self, i: usize) -> Addr {
        self.base + 1 + (i % self.n_slots)
    }

    /// The lock's memory must be initialized so slot 0 is "go": call once
    /// before use (or pre-load via [`AndersonLock::init_words`]).
    pub fn init_on<P: MemPort>(&self, port: &mut P) {
        for (addr, w) in self.init_words() {
            port.write(addr, w);
        }
    }

    /// `(address, word)` pairs for pre-loading a simulated machine.
    pub fn init_words(&self) -> Vec<(Addr, Word)> {
        let mut out = vec![(self.ticket(), 0), (self.slot(0), 1)];
        for i in 1..self.n_slots {
            out.push((self.slot(i), 0));
        }
        out
    }

    fn take_ticket<P: MemPort>(&self, port: &mut P) -> u64 {
        loop {
            let t = port.read(self.ticket());
            if port.compare_exchange(self.ticket(), t, t.wrapping_add(1)).is_ok() {
                return t;
            }
        }
    }

    /// Acquire; returns the ticket to pass to [`AndersonLock::unlock`].
    pub fn lock<P: MemPort>(&self, port: &mut P) -> u64 {
        let t = self.take_ticket(port);
        let mut poll = 1;
        while port.read(self.slot(t as usize)) == 0 {
            port.delay(poll);
            poll = (poll * 2).min(16);
        }
        // Reset our slot for the next lap around the array.
        port.write(self.slot(t as usize), 0);
        t
    }

    /// Release a lock acquired with ticket `t`.
    pub fn unlock<P: MemPort>(&self, port: &mut P, t: u64) {
        port.write(self.slot(t as usize + 1), 1);
    }

    /// Run `f` inside the lock.
    pub fn with<P: MemPort, R>(&self, port: &mut P, f: impl FnOnce(&mut P) -> R) -> R {
        let t = self.lock(port);
        let r = f(port);
        self.unlock(port, t);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    #[test]
    fn lock_unlock_single_thread() {
        let m = HostMachine::new(AndersonLock::words_needed(1) + 1, 1);
        let lock = AndersonLock::new(0, 1);
        let mut port = m.port(0);
        lock.init_on(&mut port);
        for _ in 0..5 {
            let t = lock.lock(&mut port);
            lock.unlock(&mut port, t);
        }
    }

    #[test]
    fn fifo_mutual_exclusion_on_host() {
        const PROCS: usize = 4;
        const PER: u64 = 1500;
        let data = AndersonLock::words_needed(PROCS);
        let m = HostMachine::new(data + 1, PROCS);
        let lock = AndersonLock::new(0, PROCS);
        {
            let mut port = m.port(0);
            lock.init_on(&mut port);
        }
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        lock.with(&mut port, |port| {
                            let v = port.read(data);
                            port.write(data, v + 1);
                        });
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(port.read(data), PROCS as u64 * PER);
    }

    #[test]
    fn works_on_the_simulator() {
        use stm_sim::arch::BusModel;
        use stm_sim::engine::{SimConfig, SimPort, Simulation};
        const PROCS: usize = 5;
        let lock = AndersonLock::new(0, PROCS);
        let data = AndersonLock::words_needed(PROCS);
        let report = Simulation::new(
            SimConfig {
                n_words: data + 1,
                seed: 11,
                jitter: 3,
                max_cycles: 1 << 33,
                init: lock.init_words(),
                ..Default::default()
            },
            BusModel::for_procs(PROCS),
        )
        .run(PROCS, |_| {
            move |mut port: SimPort| {
                for _ in 0..40 {
                    lock.with(&mut port, |port| {
                        let v = port.read(data);
                        port.write(data, v + 1);
                    });
                }
            }
        });
        assert_eq!(report.memory[data], (PROCS * 40) as u64);
    }
}
