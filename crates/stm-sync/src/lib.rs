//! # stm-sync — the synchronization baselines of the Shavit–Touitou evaluation
//!
//! The paper compares its STM against the contemporary alternatives on every
//! benchmark; this crate implements those baselines from scratch, generic
//! over the same [`MemPort`](stm_core::machine::MemPort) machine abstraction
//! so they run both on the host and on the simulated bus/mesh machines:
//!
//! * [`TtasLock`] — test-and-test-and-set spin lock with exponential
//!   back-off (blocking).
//! * [`McsLock`] — MCS queue lock: local spinning, FIFO handoff (blocking,
//!   scalable).
//! * [`AndersonLock`] — Anderson's array queue lock (the era's other
//!   scalable lock, for the lock ablation).
//! * [`HerlihyObject`] — Herlihy's non-blocking small-object translation:
//!   whole-object copy + pointer CAS + back-off (the non-blocking method STM
//!   is measured against).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anderson;
pub mod herlihy;
pub mod mcs;
pub mod ttas;

pub use anderson::AndersonLock;
pub use herlihy::{HerlihyHandle, HerlihyObject};
pub use mcs::McsLock;
pub use ttas::TtasLock;

#[cfg(test)]
mod sim_tests {
    use super::*;
    use stm_core::machine::MemPort;
    use stm_sim::arch::{BusModel, MeshModel};
    use stm_sim::engine::{SimConfig, SimPort, Simulation};

    /// All three baselines run a shared counter on the simulated bus machine
    /// and must produce exact counts under every seed tested.
    #[test]
    fn ttas_counter_on_simulated_bus() {
        for seed in 0..4 {
            let lock = TtasLock::new(0);
            let report = Simulation::new(
                SimConfig { n_words: 2, seed, jitter: 3, ..Default::default() },
                BusModel::for_procs(4),
            )
            .run(4, |_p| {
                move |mut port: SimPort| {
                    for _ in 0..50 {
                        lock.with(&mut port, |port| {
                            let v = port.read(1);
                            port.write(1, v + 1);
                        });
                    }
                }
            });
            assert_eq!(report.memory[1], 200, "seed {seed}");
            assert_eq!(report.memory[0], 0, "lock must end free");
        }
    }

    #[test]
    fn mcs_counter_on_simulated_bus() {
        const PROCS: usize = 6;
        for seed in 0..4 {
            let lock = McsLock::new(0, PROCS);
            let data = McsLock::words_needed(PROCS);
            let report = Simulation::new(
                SimConfig { n_words: data + 1, seed, jitter: 3, ..Default::default() },
                BusModel::for_procs(PROCS),
            )
            .run(PROCS, |_p| {
                move |mut port: SimPort| {
                    for _ in 0..30 {
                        lock.with(&mut port, |port| {
                            let v = port.read(data);
                            port.write(data, v + 1);
                        });
                    }
                }
            });
            assert_eq!(report.memory[data], (PROCS * 30) as u64, "seed {seed}");
            assert_eq!(report.memory[0], 0, "queue must end empty");
        }
    }

    #[test]
    fn herlihy_counter_on_simulated_mesh() {
        const PROCS: usize = 4;
        for seed in 0..4 {
            let obj = HerlihyObject::new(0, 2, PROCS);
            let report = Simulation::new(
                SimConfig {
                    n_words: HerlihyObject::words_needed(2, PROCS),
                    seed,
                    jitter: 3,
                    init: vec![(0, 1 << 16)], // version 1, buffer 0 current
                    ..Default::default()
                },
                MeshModel::for_procs(PROCS),
            )
            .run(PROCS, |_p| {
                move |mut port: SimPort| {
                    let mut h = obj.handle(&port);
                    for _ in 0..30 {
                        h.update(&mut port, |o| {
                            assert_eq!(o[0], o[1], "torn object state observed");
                            o[0] += 1;
                            o[1] += 1;
                        });
                    }
                }
            });
            // Decode the final object straight out of the memory image.
            let cur = (report.memory[0] & 0xFFFF) as usize;
            let val = report.memory[1 + cur * 2];
            assert_eq!(val, (PROCS * 30) as u64, "seed {seed}");
        }
    }

    /// Herlihy's method is non-blocking: a crashed processor mid-update
    /// cannot stop the others (it never holds a lock).
    #[test]
    fn herlihy_survives_a_crashed_processor() {
        const PROCS: usize = 3;
        let obj = HerlihyObject::new(0, 1, PROCS);
        let report = Simulation::new(
            SimConfig {
                n_words: HerlihyObject::words_needed(1, PROCS),
                seed: 9,
                jitter: 2,
                init: vec![(0, 1 << 16)],
                ..Default::default()
            },
            BusModel::for_procs(PROCS),
        )
        .run(PROCS, |p| {
            move |mut port: SimPort| {
                let mut h = obj.handle(&port);
                if p == 0 {
                    h.update(&mut port, |o| o[0] += 1);
                    return; // crash after one op
                }
                for _ in 0..50 {
                    h.update(&mut port, |o| o[0] += 1);
                }
            }
        });
        let cur = (report.memory[0] & 0xFFFF) as usize;
        assert_eq!(report.memory[1 + cur], 101);
    }
}
