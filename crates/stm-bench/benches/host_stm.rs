//! Host-machine micro-benchmarks of the STM primitives (native atomics,
//! real threads) — latency of the core operations a downstream user pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::StmConfig;

fn bench_fetch_add(c: &mut Criterion) {
    let ops = StmOps::new(0, 64, 2, 16, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);
    let mut port = machine.port(0);
    c.bench_function("host/fetch_add/uncontended", |b| {
        b.iter(|| ops.fetch_add(&mut port, 0, 1))
    });
}

fn bench_mwcas_width(c: &mut Criterion) {
    let ops = StmOps::new(0, 64, 2, 16, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);
    let mut port = machine.port(0);
    let mut group = c.benchmark_group("host/mwcas_width");
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cells: Vec<usize> = (0..k).collect();
            // Start from the cells' current values (the machine is shared
            // across widths, so earlier widths already advanced them).
            let mut expected = ops.snapshot(&mut port, &cells);
            b.iter(|| {
                let entries: Vec<(usize, u32, u32)> =
                    cells.iter().map(|&c| (c, expected[c], expected[c] + 1)).collect();
                ops.mwcas(&mut port, &entries).expect("single-threaded mwcas succeeds");
                for v in &mut expected {
                    *v += 1;
                }
            });
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let ops = StmOps::new(0, 64, 2, 16, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);
    let mut port = machine.port(0);
    let cells: Vec<usize> = (0..8).collect();
    c.bench_function("host/snapshot/8cells", |b| b.iter(|| ops.snapshot(&mut port, &cells)));
}

fn bench_contended_counter(c: &mut Criterion) {
    // Two real threads hammering one cell: measures end-to-end contended
    // commit cost including helping.
    let ops = StmOps::new(0, 4, 2, 4, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);
    c.bench_function("host/fetch_add/contended_2threads", |b| {
        b.iter_custom(|iters| {
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for p in 0..2 {
                    let ops = ops.clone();
                    let machine = machine.clone();
                    s.spawn(move || {
                        let mut port = machine.port(p);
                        for _ in 0..iters {
                            ops.fetch_add(&mut port, 0, 1);
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fetch_add, bench_mwcas_width, bench_snapshot, bench_contended_counter
);
criterion_main!(benches);
