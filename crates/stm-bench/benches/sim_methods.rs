//! Criterion wrapper around small simulator runs: wall-clock cost of
//! simulating each method on the counting benchmark (also a regression guard
//! for simulator performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stm_bench::workloads::{run_point, ArchKind, Bench};
use stm_structures::Method;

fn bench_sim_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/counting_bus_p4");
    for method in Method::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(method.label()), &method, |b, &m| {
            b.iter(|| run_point(Bench::Counting, ArchKind::Bus, m, 4, 128, 7))
        });
    }
    group.finish();
}

fn bench_sim_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/queue_mesh_p4");
    for method in [Method::Stm, Method::Mcs] {
        group.bench_with_input(BenchmarkId::from_parameter(method.label()), &method, |b, &m| {
            b.iter(|| run_point(Bench::Queue, ArchKind::Mesh, m, 4, 128, 7))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim_counting, bench_sim_queue
);
criterion_main!(benches);
