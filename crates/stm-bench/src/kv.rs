//! The million-key KV service workload over the growable sharded arena.
//!
//! This is the proof workload for the [`CellArena`] heap refactor: an
//! [`StmHashMap`] serving Zipfian get/put/delete traffic over a **live
//! population in the millions of cells**, with entry spans allocated and
//! freed while transactions run. One world (arena + map + host machine) is
//! built once and reused across every rung of the throughput ladder
//! ([`kv_ladder`]): threads × key-skew × read-ratio.
//!
//! All measurements here are wall-clock on the real host machine, so the
//! throughput numbers themselves are informational (like the other `host`
//! rows of `BENCH_stm.json`). What the CI gate (`bench_gate`) pins instead
//! are the workload's *functional* invariants, which are exact on any
//! machine: the live-cell floor (the million-key claim), arena accounting
//! (`live == 2·buckets + 3·len`), a duplicate-free full scan matching the
//! length counter, and the read-heavy rung outpacing the write-heavy rung
//! at equal thread count and skew.
//!
//! Randomness is deterministic: a [`SplitMix64`] stream per thread, seeded
//! from the row's recorded `seed`, drives both the [`Zipf`] key sampler and
//! the operation mix, so a baseline row names its workload exactly.
//!
//! [`CellArena`]: stm_core::arena::CellArena

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stm_core::arena::CellArena;
use stm_core::layout::StmLayout;
use stm_core::machine::host::HostMachine;
use stm_core::stm::StmConfig;
use stm_structures::hashmap::{StmHashMap, BUCKET_SPAN, ENTRY_SPAN};

/// Cells per arena segment in the KV world (see [`build_world`]).
pub const KV_SEG_CELLS: usize = 4096;

/// Arena shards in the KV world.
pub const KV_SHARDS: usize = 16;

/// Seed recorded in ladder rows (per-thread streams derive from it).
pub const KV_SEED: u64 = 31415;

/// Default keys for the full ladder: 600k keys ⇒ 2.3M live cells prefilled
/// (3 cells per entry plus 2 per bucket), comfortably over the million-cell
/// flagship floor even at uniform-churn steady state (~1.42M).
pub const KV_KEYS: u32 = 600_000;

/// Default bucket count for the full ladder (2^18).
pub const KV_BUCKETS: usize = 1 << 18;

/// Default operations per ladder rung.
pub const KV_OPS: u64 = 400_000;

/// One rung of the KV throughput ladder.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Key-space size (keys `0..keys` are prefilled).
    pub keys: u32,
    /// Hash-map buckets (power of two).
    pub n_buckets: usize,
    /// Real threads driving traffic.
    pub threads: usize,
    /// Total operations across all threads.
    pub total_ops: u64,
    /// Zipf exponent for key choice (`0.0` = uniform).
    pub skew: f64,
    /// Percentage of operations that are gets (the rest split evenly
    /// between puts and deletes).
    pub read_pct: u32,
    /// Base RNG seed (thread `t` uses an independent stream derived from
    /// it).
    pub seed: u64,
}

impl KvConfig {
    /// Row label, e.g. `t4-z0.99-r95`.
    pub fn label(&self) -> String {
        format!("t{}-z{:.2}-r{}", self.threads, self.skew, self.read_pct)
    }
}

/// The ladder: threads {1, 4} × skew {0.0, 0.99} × read_pct {50, 95},
/// every rung over the same `keys`/`n_buckets` world and `total_ops`.
pub fn kv_ladder(keys: u32, n_buckets: usize, total_ops: u64) -> Vec<KvConfig> {
    let mut out = Vec::new();
    for threads in [1usize, 4] {
        for skew in [0.0f64, 0.99] {
            for read_pct in [50u32, 95] {
                out.push(KvConfig {
                    keys,
                    n_buckets,
                    threads,
                    total_ops,
                    skew,
                    read_pct,
                    seed: KV_SEED,
                });
            }
        }
    }
    out
}

/// One measured ladder rung (the `kv` section of `BENCH_stm.json`).
#[derive(Debug, Clone)]
pub struct KvPoint {
    /// Key-space size.
    pub keys: u32,
    /// Hash-map buckets.
    pub n_buckets: usize,
    /// Threads.
    pub threads: usize,
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Zipf exponent.
    pub skew: f64,
    /// Read percentage.
    pub read_pct: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Wall-clock nanoseconds.
    pub nanos: u64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Get operations (and how many hit).
    pub gets: u64,
    /// Gets that found the key.
    pub hits: u64,
    /// Put operations.
    pub puts: u64,
    /// Delete operations.
    pub deletes: u64,
    /// Map entries after the rung.
    pub entries: u64,
    /// Arena live cells after the rung (the million-cell witness).
    pub live_cells: u64,
    /// Arena live-cell high-water mark.
    pub high_water_cells: u64,
    /// Arena segments grown into.
    pub segments_live: u64,
}

impl KvPoint {
    /// Row label (same shape as [`KvConfig::label`]).
    pub fn label(&self) -> String {
        format!("t{}-z{:.2}-r{}", self.threads, self.skew, self.read_pct)
    }
}

/// SplitMix64: a tiny, seedable, statistically solid PRNG (one stream per
/// thread; no shared state).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipfian key sampler over ranks `0..n` via the harmonic CDF and binary
/// search; exponent `0.0` short-circuits to uniform (no table).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u32,
    cdf: Option<Vec<f64>>,
}

impl Zipf {
    /// Build a sampler for `n` keys with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(s >= 0.0, "negative Zipf exponent");
        if s == 0.0 {
            return Zipf { n, cdf: None };
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / f64::from(i + 1).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { n, cdf: Some(cdf) }
    }

    /// Map a uniform `u ∈ [0, 1)` to a key rank (rank 0 is the hottest).
    #[inline]
    pub fn sample(&self, u: f64) -> u32 {
        match &self.cdf {
            None => ((u * f64::from(self.n)) as u32).min(self.n - 1),
            Some(cdf) => (cdf.partition_point(|&c| c < u) as u32).min(self.n - 1),
        }
    }
}

/// The shared world every ladder rung runs over: the arena-backed map, the
/// host machine whose ports the threads use, and the prefilled key space.
#[derive(Debug, Clone)]
pub struct KvWorld {
    map: StmHashMap,
    machine: HostMachine,
    keys: u32,
    n_procs: usize,
}

/// The value key `k` is prefilled with (checked by the gate's scan).
pub fn initial_value(k: u32) -> u32 {
    k.wrapping_mul(0x85EB_CA6B) & 0x7FFF_FFFF
}

/// Build the KV world: a sharded arena layout sized for `keys` entries plus
/// churn slack, the hash map over it, and a parallel prefill of every key
/// through `n_procs` ports. Addresses never move afterwards — growth only
/// appends segments.
pub fn build_world(keys: u32, n_buckets: usize, n_procs: usize) -> KvWorld {
    let needed = BUCKET_SPAN * n_buckets + ENTRY_SPAN * keys as usize;
    // A quarter slack for churn overshoot plus one segment per shard so
    // every shard can grow at least once.
    let slack = needed / 4 + KV_SEG_CELLS * KV_SHARDS;
    let max_segments = (needed + slack).div_ceil(KV_SEG_CELLS).next_multiple_of(KV_SHARDS);
    let layout = StmLayout::arena(0, n_procs, 8, 0, KV_SHARDS, KV_SEG_CELLS, max_segments);
    let arena = Arc::new(CellArena::new(layout));
    let machine = HostMachine::new(layout.end(), n_procs);
    let map = {
        let mut port = machine.port(0);
        StmHashMap::new(layout, arena, n_buckets, StmConfig::default(), &mut port)
    };
    std::thread::scope(|s| {
        for p in 0..n_procs {
            let map = map.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut k = p as u32;
                while k < keys {
                    map.insert(&mut port, k, initial_value(k));
                    k += n_procs as u32;
                }
            });
        }
    });
    assert_eq!(map.len(), u64::from(keys), "prefill must cover the key space");
    KvWorld { map, machine, keys, n_procs }
}

impl KvWorld {
    /// The map (for scans and invariant checks).
    pub fn map(&self) -> &StmHashMap {
        &self.map
    }

    /// The host machine backing the map's cells.
    pub fn machine(&self) -> &HostMachine {
        &self.machine
    }

    /// Key-space size the world was built for.
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Ports available (= maximum rung thread count).
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }
}

/// Run one ladder rung over a prebuilt world.
///
/// Each thread draws keys from its own [`SplitMix64`] stream through the
/// shared [`Zipf`] table and rolls the op mix: `read_pct`% gets, the rest
/// split evenly between puts (insert-or-update) and deletes. The world is
/// *not* reset between rungs — the ladder measures a live service, and the
/// population stays in steady state because puts and deletes balance.
///
/// # Panics
///
/// Panics if the rung asks for more threads than the world has ports, or a
/// different key-space size than the world was built for.
pub fn run_kv_point(world: &KvWorld, cfg: &KvConfig) -> KvPoint {
    assert!(cfg.threads <= world.n_procs, "rung needs more ports than the world has");
    assert_eq!(cfg.keys, world.keys, "rung and world disagree on key space");
    let zipf = Arc::new(Zipf::new(cfg.keys, cfg.skew));
    let per_thread = (cfg.total_ops / cfg.threads as u64).max(1);
    let actual_total = per_thread * cfg.threads as u64;
    let (gets, hits) = (AtomicU64::new(0), AtomicU64::new(0));
    let (puts, deletes) = (AtomicU64::new(0), AtomicU64::new(0));
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let map = world.map.clone();
            let machine = world.machine.clone();
            let zipf = Arc::clone(&zipf);
            let (gets, hits, puts, deletes) = (&gets, &hits, &puts, &deletes);
            s.spawn(move || {
                let mut port = machine.port(t);
                let mut rng =
                    SplitMix64(cfg.seed ^ (t as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                let (mut g, mut h, mut p, mut d) = (0u64, 0u64, 0u64, 0u64);
                for _ in 0..per_thread {
                    let key = zipf.sample(rng.next_f64());
                    let roll = rng.next_u64();
                    if ((roll % 100) as u32) < cfg.read_pct {
                        g += 1;
                        if map.get(&mut port, key).is_some() {
                            h += 1;
                        }
                    } else if roll & (1 << 32) == 0 {
                        p += 1;
                        map.insert(&mut port, key, (roll >> 33) as u32 & 0x7FFF_FFFF);
                    } else {
                        d += 1;
                        map.remove(&mut port, key);
                    }
                }
                gets.fetch_add(g, Ordering::Relaxed);
                hits.fetch_add(h, Ordering::Relaxed);
                puts.fetch_add(p, Ordering::Relaxed);
                deletes.fetch_add(d, Ordering::Relaxed);
            });
        }
    });
    let nanos = start.elapsed().as_nanos() as u64;
    let stats = world.map.arena().stats();
    KvPoint {
        keys: cfg.keys,
        n_buckets: cfg.n_buckets,
        threads: cfg.threads,
        total_ops: actual_total,
        skew: cfg.skew,
        read_pct: cfg.read_pct,
        seed: cfg.seed,
        nanos,
        ops_per_sec: if nanos == 0 { 0.0 } else { actual_total as f64 * 1e9 / nanos as f64 },
        gets: gets.into_inner(),
        hits: hits.into_inner(),
        puts: puts.into_inner(),
        deletes: deletes.into_inner(),
        entries: world.map.len(),
        live_cells: world.map.arena().live_cells() as u64,
        high_water_cells: stats.high_water_cells as u64,
        segments_live: stats.segments_live as u64,
    }
}

/// Run the whole ladder over one world (built here at `keys`/`n_buckets`
/// with ports for the widest rung).
pub fn run_kv_ladder(keys: u32, n_buckets: usize, total_ops: u64) -> Vec<KvPoint> {
    let ladder = kv_ladder(keys, n_buckets, total_ops);
    let n_procs = ladder.iter().map(|c| c.threads).max().unwrap_or(1);
    let world = build_world(keys, n_buckets, n_procs);
    ladder.iter().map(|cfg| run_kv_point(&world, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SplitMix64(7);
        let mut head = 0usize;
        for _ in 0..4000 {
            let k = z.sample(rng.next_f64());
            assert!(k < 1000);
            if k < 10 {
                head += 1;
            }
        }
        // Under s=0.99 the top 1% of ranks draws far more than 1% of mass.
        assert!(head > 800, "head draws: {head}");
        let u = Zipf::new(1000, 0.0);
        let k = u.sample(0.9995);
        assert!(k < 1000);
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let mut a = SplitMix64(1);
        let mut b = SplitMix64(1);
        let mut c = SplitMix64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        let mut f = SplitMix64(3);
        for _ in 0..100 {
            let v = f.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ladder_has_eight_rungs_over_the_grid() {
        let l = kv_ladder(100, 16, 50);
        assert_eq!(l.len(), 8);
        assert!(l.iter().any(|c| c.threads == 4 && c.skew > 0.5 && c.read_pct == 95));
        assert_eq!(l[0].label(), "t1-z0.00-r50");
    }

    #[test]
    fn tiny_world_runs_a_rung_and_keeps_invariants() {
        let world = build_world(500, 64, 2);
        assert_eq!(world.map().len(), 500);
        let cfg = KvConfig {
            keys: 500,
            n_buckets: 64,
            threads: 2,
            total_ops: 2000,
            skew: 0.99,
            read_pct: 50,
            seed: KV_SEED,
        };
        let p = run_kv_point(&world, &cfg);
        assert_eq!(p.total_ops, 2000);
        assert_eq!(p.gets + p.puts + p.deletes, 2000);
        assert!(p.gets > 0 && p.puts > 0 && p.deletes > 0);
        let mut port = world.machine().port(0);
        let count = world.map().check_quiesced(&mut port, true);
        assert_eq!(count, p.entries);
        assert_eq!(
            p.live_cells,
            (BUCKET_SPAN * 64) as u64 + (ENTRY_SPAN as u64) * p.entries
        );
    }
}
