//! Durable-commit latency ladder: what write-ahead journaling costs.
//!
//! Every operation is a committing `add` transaction over one shared cell —
//! the same contended write path as the kernel ladder — with the durability
//! backend as the independent variable:
//!
//! * on the **simulated** machines ([`run_durable_point`]), `nojournal`
//!   (the compiled-out [`stm_core::durable::NoJournal`] default) against a
//!   [`stm_core::durable::MemJournal`] ladder of flush costs
//!   ([`DURABLE_FLUSH_COSTS`] virtual cycles per fsync) — deterministic,
//!   showing how commit throughput degrades as stable storage gets slower;
//! * on the **host** machine ([`run_durable_host_point`]), `nojournal`
//!   against an fsync'd [`stm_core::durable::FileJournal`] — wall-clock,
//!   informational only (fsync latency does not reproduce across machines).
//!
//! Every simulated point re-verifies the durability contract before it is
//! emitted: the heap recovered from the journal must equal the live final
//! heap bit-for-bit — a benchmark that measures a broken journal must never
//! produce a data point.

use std::sync::{Arc, Mutex};

use stm_core::durable::{recover, DurableMem, FileJournal, read_journal};
use stm_core::machine::host::HostMachine;
use stm_core::metrics::TxMetrics;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::{cell_value, pack_cell, Word};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

use crate::workloads::{ArchKind, DynModel};

/// Simulated fsync costs (virtual cycles) for the journal ladder. Zero
/// isolates the journaling overhead itself (encoding + step points); the
/// larger costs model progressively slower stable storage.
pub const DURABLE_FLUSH_COSTS: [u64; 3] = [0, 300, 3000];

/// Processor counts for the simulated ladder, matching the write-path
/// ladder's pinning: 1 isolates uncontended commit cost, 4 adds conflicts,
/// helping, and duplicate journaling by helpers.
pub const DURABLE_PROCS: [usize; 2] = [1, 4];

/// Label for one rung of the simulated ladder: `None` is the compiled-out
/// no-journal baseline, `Some(c)` a memory journal with flush cost `c`.
pub fn durable_config(flush_cost: Option<u64>) -> String {
    match flush_cost {
        None => "nojournal".to_owned(),
        Some(c) => format!("flush{c}"),
    }
}

/// One measured durable-commit configuration (simulated machine).
#[derive(Debug, Clone)]
pub struct DurablePoint {
    /// Ladder rung label (see [`durable_config`]).
    pub config: String,
    /// Machine.
    pub arch: ArchKind,
    /// Simulated processors.
    pub procs: usize,
    /// Committed transactions across all processors.
    pub total_ops: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Committed transactions per million simulated cycles.
    pub throughput: f64,
    /// Journal flushes observed (helpers journaling a rival's commit
    /// included); zero on the no-journal baseline.
    pub flushes: u64,
}

/// Run one durable-commit configuration on the simulated machine.
///
/// Every processor commits `total_ops / procs` `add(+1)` transactions on one
/// shared cell. With a journal, every commit appends and flushes a redo
/// record before installing.
///
/// # Panics
///
/// Panics if updates are lost, the run leaks an ownership, or (with a
/// journal) replaying the durable byte stream over the base image fails to
/// reproduce the live final heap exactly.
pub fn run_durable_point(
    arch: ArchKind,
    flush_cost: Option<u64>,
    procs: usize,
    total_ops: u64,
    seed: u64,
) -> DurablePoint {
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let sim = StmSim::new(procs, 2, 2, StmConfig::default()).seed(seed).jitter(2);
    let storage = DurableMem::new();
    let metrics = Arc::new(Mutex::new(TxMetrics::default()));
    let report = sim.run(DynModel(arch.model(procs)), |_p, ops| {
        let mut jrn = flush_cost.map(|c| storage.handle().flush_cost(c));
        let metrics = Arc::clone(&metrics);
        move |mut port: SimPort| {
            let spec_add = ops.builtins().add;
            let mut local = TxMetrics::default();
            for _ in 0..per_proc {
                let spec = TxSpec::new(spec_add, &[1 as Word], &[0]);
                let r = match jrn.as_mut() {
                    Some(jrn) => ops.run(
                        &mut port,
                        &spec,
                        &mut TxOptions::new().observer(&mut local).journal(&mut *jrn),
                    ),
                    None => ops.run(
                        &mut port,
                        &spec,
                        &mut TxOptions::new().observer(&mut local),
                    ),
                };
                let _ = r.expect("unlimited budget cannot be exhausted");
            }
            metrics.lock().expect("metrics poisoned").merge(&local);
        }
    });
    // Correctness gates: conservation, quiescence, recovery equivalence.
    assert_eq!(sim.cell_value(&report, 0) as u64, actual_total, "lost updates ({arch})");
    assert!(sim.leaked_ownerships(&report).is_empty(), "run must end protocol-quiescent");
    if flush_cost.is_some() {
        let layout = sim.ops().stm().layout();
        let mut recovered: Vec<Word> = vec![pack_cell(0, 0); layout.n_cells()];
        recover(&mut recovered, &storage.bytes());
        let live: Vec<Word> =
            (0..layout.n_cells()).map(|i| report.memory[layout.cell(i)]).collect();
        assert_eq!(recovered, live, "journal replay must reproduce the live heap");
    }
    let flushes = metrics.lock().expect("metrics poisoned").journal_flushes();
    let cycles = report.cycles;
    DurablePoint {
        config: durable_config(flush_cost),
        arch,
        procs,
        total_ops: actual_total,
        seed,
        cycles,
        throughput: if cycles == 0 {
            0.0
        } else {
            actual_total as f64 * 1_000_000.0 / cycles as f64
        },
        flushes,
    }
}

/// One wall-clock durable-commit measurement on the real host machine
/// (informational; never CI-gated — fsync latency is hardware-dependent).
#[derive(Debug, Clone)]
pub struct DurableHostPoint {
    /// `"nojournal"` or `"fsync"`.
    pub config: &'static str,
    /// Real threads.
    pub procs: usize,
    /// Committed transactions across all threads.
    pub total_ops: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub nanos: u64,
    /// Transactions per second.
    pub ops_per_sec: f64,
}

/// Run one durable-commit configuration on the real host machine: every
/// thread commits `add(+1)` transactions on one shared cell, either without
/// a journal or through a shared fsync'd [`FileJournal`].
///
/// # Panics
///
/// Panics on a lost update, on journal I/O errors, or if replaying the
/// journal file over the base image fails to reproduce the final counter.
pub fn run_durable_host_point(journaled: bool, procs: usize, total_ops: u64) -> DurableHostPoint {
    let ops = StmOps::new(0, 2, procs, 2, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let path = std::env::temp_dir()
        .join(format!("stm-bench-durable-{}-{procs}.journal", std::process::id()));
    let base = if journaled {
        Some(FileJournal::create(&path).expect("create journal file"))
    } else {
        None
    };
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..procs {
            let ops = ops.clone();
            let machine = machine.clone();
            let mut jrn = base.as_ref().map(|b| b.handle());
            s.spawn(move || {
                let mut port = machine.port(p);
                let spec_add = ops.builtins().add;
                for _ in 0..per_proc {
                    let spec = TxSpec::new(spec_add, &[1 as Word], &[0]);
                    let r = match jrn.as_mut() {
                        Some(jrn) => {
                            ops.run(&mut port, &spec, &mut TxOptions::new().journal(&mut *jrn))
                        }
                        None => ops.run(&mut port, &spec, &mut TxOptions::new()),
                    };
                    let _ = r.expect("unlimited budget cannot be exhausted");
                }
            });
        }
    });
    let nanos = start.elapsed().as_nanos() as u64;
    let mut port = machine.port(0);
    let finals = ops.snapshot(&mut port, &[0, 1]);
    assert_eq!(finals[0] as u64, actual_total, "lost updates on the host");
    if journaled {
        let bytes = read_journal(&path).expect("read journal back");
        std::fs::remove_file(&path).ok();
        let mut recovered: Vec<Word> = vec![pack_cell(0, 0); 2];
        recover(&mut recovered, &bytes);
        assert_eq!(
            cell_value(recovered[0]) as u64,
            actual_total,
            "journal replay must reproduce the final counter"
        );
    }
    DurableHostPoint {
        config: if journaled { "fsync" } else { "nojournal" },
        procs,
        total_ops: actual_total,
        nanos,
        ops_per_sec: if nanos == 0 {
            0.0
        } else {
            actual_total as f64 * 1e9 / nanos as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_ladder_is_deterministic_and_monotone_in_flush_cost() {
        let a = run_durable_point(ArchKind::Bus, Some(300), 2, 64, 5);
        let b = run_durable_point(ArchKind::Bus, Some(300), 2, 64, 5);
        assert_eq!(a.cycles, b.cycles, "simulated runs must be reproducible");
        assert!(a.flushes >= a.total_ops, "every commit flushes at least once");

        let free = run_durable_point(ArchKind::Bus, None, 2, 64, 5);
        let cheap = run_durable_point(ArchKind::Bus, Some(0), 2, 64, 5);
        let slow = run_durable_point(ArchKind::Bus, Some(3000), 2, 64, 5);
        assert_eq!(free.flushes, 0);
        assert!(
            free.cycles <= cheap.cycles && cheap.cycles < slow.cycles,
            "journaling must cost cycles, and slower storage more: {} / {} / {}",
            free.cycles,
            cheap.cycles,
            slow.cycles
        );
    }

    #[test]
    fn host_ladder_runs_and_verifies_replay() {
        for journaled in [false, true] {
            let p = run_durable_host_point(journaled, 2, 400);
            assert_eq!(p.total_ops, 400);
            assert!(p.ops_per_sec > 0.0, "{}", p.config);
        }
    }
}
