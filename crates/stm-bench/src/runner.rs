//! Parameter sweeps over processor counts and methods, plus the summary
//! (peak/crossover) analysis of experiment T1.

use stm_structures::Method;

use crate::workloads::{run_point, ArchKind, Bench, DataPoint};

/// The processor counts the paper's figures sweep (up to 64).
pub const PAPER_PROCS: [usize; 8] = [1, 2, 4, 8, 16, 32, 48, 64];

/// A smaller sweep for quick runs and tests.
pub const QUICK_PROCS: [usize; 4] = [1, 2, 4, 8];

/// Configuration of one figure sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Workload.
    pub bench: Bench,
    /// Machine.
    pub arch: ArchKind,
    /// Methods to plot.
    pub methods: Vec<Method>,
    /// Processor counts to sweep.
    pub procs: Vec<usize>,
    /// Total operations per data point (split across processors).
    pub total_ops: u64,
    /// Schedule seed.
    pub seed: u64,
}

impl Sweep {
    /// The paper-shaped sweep for `bench` on `arch` (paper methods, paper
    /// processor counts).
    pub fn paper(bench: Bench, arch: ArchKind, total_ops: u64) -> Self {
        Sweep {
            bench,
            arch,
            methods: Method::PAPER.to_vec(),
            procs: PAPER_PROCS.to_vec(),
            total_ops,
            seed: 0x5EED,
        }
    }

    /// Run every configuration, in method-major order.
    pub fn run(&self) -> Vec<DataPoint> {
        let mut out = Vec::with_capacity(self.methods.len() * self.procs.len());
        for &method in &self.methods {
            for &procs in &self.procs {
                out.push(run_point(self.bench, self.arch, method, procs, self.total_ops, self.seed));
            }
        }
        out
    }
}

/// Summary of one method's curve in a sweep: peak throughput and where it
/// crosses below another method.
#[derive(Debug, Clone)]
pub struct CurveSummary {
    /// Method summarized.
    pub method: Method,
    /// Best throughput over the sweep.
    pub peak_throughput: f64,
    /// Processor count at the peak.
    pub peak_procs: usize,
    /// Throughput at the largest processor count.
    pub final_throughput: f64,
}

/// Summarize each method's curve from a sweep's data points.
pub fn summarize(points: &[DataPoint]) -> Vec<CurveSummary> {
    let mut methods: Vec<Method> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method);
        }
    }
    methods
        .into_iter()
        .map(|m| {
            let curve: Vec<&DataPoint> = points.iter().filter(|p| p.method == m).collect();
            let peak = curve
                .iter()
                .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
                .expect("non-empty curve");
            let last = curve.iter().max_by_key(|p| p.procs).expect("non-empty curve");
            CurveSummary {
                method: m,
                peak_throughput: peak.throughput,
                peak_procs: peak.procs,
                final_throughput: last.throughput,
            }
        })
        .collect()
}

/// Ratio of method `a`'s throughput to method `b`'s at each processor count
/// present for both (used to check the paper's "STM beats Herlihy" shape).
pub fn ratio_curve(points: &[DataPoint], a: Method, b: Method) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for pa in points.iter().filter(|p| p.method == a) {
        if let Some(pb) = points.iter().find(|p| p.method == b && p.procs == pa.procs) {
            if pb.throughput > 0.0 {
                out.push((pa.procs, pa.throughput / pb.throughput));
            }
        }
    }
    out.sort_by_key(|&(p, _)| p);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_summarizes() {
        let sweep = Sweep {
            bench: Bench::Counting,
            arch: ArchKind::Uniform,
            methods: vec![Method::Stm, Method::Ttas],
            procs: vec![1, 2],
            total_ops: 32,
            seed: 1,
        };
        let points = sweep.run();
        assert_eq!(points.len(), 4);
        let summaries = summarize(&points);
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert!(s.peak_throughput > 0.0);
            assert!(s.peak_procs == 1 || s.peak_procs == 2);
        }
        let ratios = ratio_curve(&points, Method::Stm, Method::Ttas);
        assert_eq!(ratios.len(), 2);
        assert!(ratios.iter().all(|&(_, r)| r > 0.0));
    }
}
