//! Machine-readable benchmark report (`BENCH_stm.json`).
//!
//! The figure runner snapshots every data point it produced — throughput
//! plus the protocol-level conflict/help/retry rates — into one JSON
//! document, so downstream tooling (CI artifacts, plotting scripts,
//! regression diffs) can consume the sweep without re-parsing CSV tables.
//!
//! Since `stm-bench/v3` the document carries four sections:
//!
//! * `points` — the paper-figure sweeps ([`DataPoint`]) plus the
//!   write-path/MWCAS-kernel ladder ([`WritePoint`]); write-path rows carry
//!   `"bench": "write-path"` and a `seed`, and are the second row family
//!   the `bench_gate` binary replays.
//! * `read_heavy` — the simulated read-heavy fast-path points
//!   ([`ReadPoint`]); deterministic, and the rows the `bench_gate` binary
//!   replays against the committed baseline on every PR.
//! * `fairness` — the F1 starvation-ablation points ([`FairnessPoint`]):
//!   max-losses-before-commit and p99 big-transaction tail latency, baseline
//!   vs escalation ladder. Deterministic; the third replayed row family,
//!   where the gate additionally fails if a fresh `max_losses` exceeds the
//!   committed one or an escalation row breaks its N+M `loss_bound`.
//! * `host` — wall-clock host-machine measurements ([`HostPoint`] and
//!   [`WriteHostPoint`], told apart by `workload`); informational only,
//!   never gated (wall-clock does not reproduce across machines).

use std::io;
use std::path::Path;

use crate::fairness::FairnessPoint;
use crate::read_heavy::{HostPoint, ReadPoint};
use crate::workloads::DataPoint;
use crate::write_path::{WriteHostPoint, WritePoint};

/// Schema identifier written into the report, bumped on layout changes.
pub const BENCH_SCHEMA: &str = "stm-bench/v3";

/// Build the JSON document for a set of data points.
///
/// Layout: `{"schema": ..., "points": [...], "read_heavy": [...],
/// "host": [...]}`. Figure `points` rows carry `{bench, arch, method,
/// procs, total_ops, cycles, throughput, commits, conflicts, helps,
/// conflict_rate, help_rate, retry_rate}` (protocol fields zero for lock
/// baselines); write-path `points` rows carry `{bench: "write-path",
/// kernel, arch, method, procs, total_ops, seed, cycles, throughput,
/// commits, conflicts, helps}` — the `seed` marks them replayable, which
/// is how the CI gate tells the two row families apart. `read_heavy` rows
/// swap `method` for the fast-path `config` and record the `seed` so the
/// row can be replayed bit-exactly; `fairness` rows carry `{bench: "storm",
/// arch, config, procs, total_ops, seed, cycles, throughput, big_txs,
/// max_losses, loss_bound, p99_big_latency, escalations, forced,
/// deferrals}`; `host` rows are `{workload, config, procs, total_ops,
/// nanos, ops_per_sec}` with `workload` `"snapshot"` (read ladder) or
/// `"write-path"` (kernel ladder).
pub fn bench_json(
    points: &[DataPoint],
    write: &[WritePoint],
    read_heavy: &[ReadPoint],
    fairness: &[FairnessPoint],
    host: &[HostPoint],
    write_host: &[WriteHostPoint],
) -> serde_json::Value {
    let mut rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), p.bench.to_string().into()),
                ("arch".into(), p.arch.to_string().into()),
                ("method".into(), p.method.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("commits".into(), p.commits.into()),
                ("conflicts".into(), p.conflicts.into()),
                ("helps".into(), p.helps.into()),
                ("conflict_rate".into(), p.conflict_rate().into()),
                ("help_rate".into(), p.help_rate().into()),
                ("retry_rate".into(), p.retry_rate().into()),
            ])
        })
        .collect();
    rows.extend(write.iter().map(|p| {
        serde_json::Value::Object(vec![
            ("bench".into(), "write-path".into()),
            ("kernel".into(), crate::write_path::k_label(p.k).into()),
            ("arch".into(), p.arch.to_string().into()),
            ("method".into(), p.mode.to_string().into()),
            ("procs".into(), (p.procs as u64).into()),
            ("total_ops".into(), p.total_ops.into()),
            ("seed".into(), p.seed.into()),
            ("cycles".into(), p.cycles.into()),
            ("throughput".into(), p.throughput.into()),
            ("commits".into(), p.commits.into()),
            ("conflicts".into(), p.conflicts.into()),
            ("helps".into(), p.helps.into()),
        ])
    }));
    let read_rows = read_heavy
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), p.bench.to_string().into()),
                ("arch".into(), p.arch.to_string().into()),
                ("config".into(), p.mode.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("seed".into(), p.seed.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("commits".into(), p.commits.into()),
                ("conflicts".into(), p.conflicts.into()),
                ("helps".into(), p.helps.into()),
            ])
        })
        .collect();
    let fairness_rows = fairness
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), "storm".into()),
                ("arch".into(), p.arch.to_string().into()),
                ("config".into(), p.mode.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("seed".into(), p.seed.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("big_txs".into(), p.big_txs.into()),
                ("max_losses".into(), p.max_losses.into()),
                ("loss_bound".into(), p.loss_bound.into()),
                ("p99_big_latency".into(), p.p99_big_latency.into()),
                ("escalations".into(), p.escalations.into()),
                ("forced".into(), p.forced.into()),
                ("deferrals".into(), p.deferrals.into()),
            ])
        })
        .collect();
    let mut host_rows: Vec<serde_json::Value> = host
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("workload".into(), "snapshot".into()),
                ("config".into(), p.config.into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("nanos".into(), p.nanos.into()),
                ("ops_per_sec".into(), p.ops_per_sec.into()),
            ])
        })
        .collect();
    host_rows.extend(write_host.iter().map(|p| {
        serde_json::Value::Object(vec![
            ("workload".into(), "write-path".into()),
            ("config".into(), p.config().into()),
            ("procs".into(), (p.procs as u64).into()),
            ("total_ops".into(), p.total_ops.into()),
            ("nanos".into(), p.nanos.into()),
            ("ops_per_sec".into(), p.ops_per_sec.into()),
        ])
    }));
    serde_json::Value::Object(vec![
        ("schema".into(), BENCH_SCHEMA.into()),
        ("points".into(), serde_json::Value::Array(rows)),
        ("read_heavy".into(), serde_json::Value::Array(read_rows)),
        ("fairness".into(), serde_json::Value::Array(fairness_rows)),
        ("host".into(), serde_json::Value::Array(host_rows)),
    ])
}

/// Write [`bench_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_bench_json(
    path: &Path,
    points: &[DataPoint],
    write: &[WritePoint],
    read_heavy: &[ReadPoint],
    fairness: &[FairnessPoint],
    host: &[HostPoint],
    write_host: &[WriteHostPoint],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let doc = serde_json::to_string_pretty(&bench_json(
        points, write, read_heavy, fairness, host, write_host,
    ))
    .expect("bench values are finite");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_heavy::{run_host_point, run_read_point, ReadBench, ReadMode};
    use crate::workloads::{run_point, ArchKind, Bench};
    use crate::write_path::{run_write_host_point, run_write_point, WriteMode};
    use stm_structures::Method;

    #[test]
    fn report_round_trips_with_protocol_rates() {
        let points = vec![
            run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 2, 64, 1),
            run_point(Bench::Counting, ArchKind::Bus, Method::Mcs, 2, 64, 1),
        ];
        let doc =
            serde_json::to_string_pretty(&bench_json(&points, &[], &[], &[], &[], &[])).unwrap();
        let v = serde_json::from_str(&doc).expect("report must be valid JSON");
        assert_eq!(v["schema"].as_str(), Some(BENCH_SCHEMA));
        let rows = v["points"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let stm = &rows[0];
        assert_eq!(stm["method"].as_str(), Some("STM"));
        assert_eq!(stm["commits"].as_u64(), Some(points[0].commits));
        assert_eq!(stm["total_ops"].as_u64(), Some(64));
        assert!(stm["throughput"].as_f64().unwrap() > 0.0);
        assert!(stm["conflict_rate"].as_f64().unwrap() >= 0.0);
        let lock = &rows[1];
        assert_eq!(lock["method"].as_str(), Some("MCS-lock"));
        assert_eq!(lock["commits"].as_u64(), Some(0));
        assert_eq!(lock["retry_rate"].as_f64(), Some(0.0));
        assert!(v["read_heavy"].as_array().unwrap().is_empty());
        assert!(v["fairness"].as_array().unwrap().is_empty());
        assert!(v["host"].as_array().unwrap().is_empty());
    }

    #[test]
    fn read_heavy_rows_carry_replay_parameters() {
        let rp = run_read_point(ReadBench::Snapshot, ArchKind::Bus, ReadMode::Fast, 2, 64, 5);
        let hp = run_host_point("fast-dense", true, false, 1, 256);
        let v = bench_json(&[], &[], &[rp.clone()], &[], &[hp], &[]);
        let row = &v["read_heavy"].as_array().unwrap()[0];
        // The gate replays rows from these fields alone; losing one breaks it.
        assert_eq!(row["bench"].as_str(), Some("snapshot"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["config"].as_str(), Some("fast-read"));
        assert_eq!(row["procs"].as_u64(), Some(2));
        assert_eq!(row["total_ops"].as_u64(), Some(64));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(rp.cycles));
        let host = &v["host"].as_array().unwrap()[0];
        assert_eq!(host["config"].as_str(), Some("fast-dense"));
        assert!(host["ops_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn write_path_rows_carry_replay_parameters() {
        let wp = run_write_point(2, ArchKind::Bus, WriteMode::Compiled, 2, 64, 5);
        let wh = run_write_host_point(2, WriteMode::Compiled, 1, 256);
        let v = bench_json(&[], &[wp.clone()], &[], &[], &[], &[wh]);
        let row = &v["points"].as_array().unwrap()[0];
        // The gate replays write-path rows from these fields alone; losing
        // one breaks it. The seed is also the family discriminator.
        assert_eq!(row["bench"].as_str(), Some("write-path"));
        assert_eq!(row["kernel"].as_str(), Some("k2"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["method"].as_str(), Some("compiled"));
        assert_eq!(row["procs"].as_u64(), Some(2));
        assert_eq!(row["total_ops"].as_u64(), Some(64));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(wp.cycles));
        let host = &v["host"].as_array().unwrap()[0];
        assert_eq!(host["workload"].as_str(), Some("write-path"));
        assert_eq!(host["config"].as_str(), Some("k2-compiled"));
        assert!(host["ops_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fairness_rows_carry_replay_parameters_and_the_bound() {
        use crate::fairness::{fair_loss_bound, run_fairness_point, FairMode};
        let fp = run_fairness_point(ArchKind::Bus, FairMode::Escalation, 128, 5);
        let v = bench_json(&[], &[], &[], &[fp.clone()], &[], &[]);
        let row = &v["fairness"].as_array().unwrap()[0];
        // The gate replays rows from these fields alone; losing one breaks it.
        assert_eq!(row["bench"].as_str(), Some("storm"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["config"].as_str(), Some("escalation"));
        assert_eq!(row["procs"].as_u64(), Some(fp.procs as u64));
        assert_eq!(row["total_ops"].as_u64(), Some(fp.total_ops));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(fp.cycles));
        assert_eq!(row["max_losses"].as_u64(), Some(fp.max_losses));
        assert_eq!(row["loss_bound"].as_u64(), Some(fair_loss_bound()));
        assert_eq!(row["p99_big_latency"].as_u64(), Some(fp.p99_big_latency));
    }

    #[test]
    fn writer_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("stm_bench_report_{}", std::process::id()));
        let path = dir.join("nested/BENCH_stm.json");
        let points = vec![run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 1, 16, 1)];
        write_bench_json(&path, &points, &[], &[], &[], &[], &[]).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["points"].as_array().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
