//! Machine-readable benchmark report (`BENCH_stm.json`).
//!
//! The figure runner snapshots every data point it produced — throughput
//! plus the protocol-level conflict/help/retry rates — into one JSON
//! document, so downstream tooling (CI artifacts, plotting scripts,
//! regression diffs) can consume the sweep without re-parsing CSV tables.
//!
//! Since `stm-bench/v4` the document carries five sections:
//!
//! * `points` — the paper-figure sweeps ([`DataPoint`]) plus the
//!   write-path/MWCAS-kernel ladder ([`WritePoint`]); write-path rows carry
//!   `"bench": "write-path"` and a `seed`, and are the second row family
//!   the `bench_gate` binary replays.
//! * `read_heavy` — the simulated read-heavy fast-path points
//!   ([`ReadPoint`]); deterministic, and the rows the `bench_gate` binary
//!   replays against the committed baseline on every PR.
//! * `fairness` — the F1 starvation-ablation points ([`FairnessPoint`]):
//!   max-losses-before-commit and p99 big-transaction tail latency, baseline
//!   vs escalation ladder. Deterministic; the third replayed row family,
//!   where the gate additionally fails if a fresh `max_losses` exceeds the
//!   committed one or an escalation row breaks its N+M `loss_bound`.
//! * `kv` — the million-key KV service ladder ([`KvPoint`]): Zipfian
//!   get/put/delete traffic over the arena-backed hash map, one row per
//!   threads × skew × read-ratio rung. Wall-clock throughput is
//!   informational; the gate replays the rungs and pins the *functional*
//!   columns (`live_cells`, `entries`, the accounting identity), which are
//!   exact on any machine.
//! * `host` — wall-clock host-machine measurements ([`HostPoint`] and
//!   [`WriteHostPoint`], told apart by `workload`); informational only,
//!   never gated (wall-clock does not reproduce across machines).
//!
//! [`splice_kv_section`] rewrites only the `kv` section (and the schema
//! tag) of an existing report, so regenerating the KV ladder leaves every
//! other committed baseline row byte-identical.

use std::io;
use std::path::Path;

use crate::fairness::FairnessPoint;
use crate::kv::KvPoint;
use crate::read_heavy::{HostPoint, ReadPoint};
use crate::workloads::DataPoint;
use crate::write_path::{WriteHostPoint, WritePoint};

/// Schema identifier written into the report, bumped on layout changes.
pub const BENCH_SCHEMA: &str = "stm-bench/v4";

/// Build the JSON document for a set of data points.
///
/// Layout: `{"schema": ..., "points": [...], "read_heavy": [...],
/// "host": [...]}`. Figure `points` rows carry `{bench, arch, method,
/// procs, total_ops, cycles, throughput, commits, conflicts, helps,
/// conflict_rate, help_rate, retry_rate}` (protocol fields zero for lock
/// baselines); write-path `points` rows carry `{bench: "write-path",
/// kernel, arch, method, procs, total_ops, seed, cycles, throughput,
/// commits, conflicts, helps}` — the `seed` marks them replayable, which
/// is how the CI gate tells the two row families apart. `read_heavy` rows
/// swap `method` for the fast-path `config` and record the `seed` so the
/// row can be replayed bit-exactly; `fairness` rows carry `{bench: "storm",
/// arch, config, procs, total_ops, seed, cycles, throughput, big_txs,
/// max_losses, loss_bound, p99_big_latency, escalations, forced,
/// deferrals}`; `kv` rows carry `{bench: "kv", config, keys, n_buckets,
/// threads, total_ops, skew, read_pct, seed, nanos, ops_per_sec, gets,
/// hits, puts, deletes, entries, live_cells, high_water_cells,
/// segments_live}`; `host` rows are `{workload, config, procs, total_ops,
/// nanos, ops_per_sec}` with `workload` `"snapshot"` (read ladder) or
/// `"write-path"` (kernel ladder).
pub fn bench_json(
    points: &[DataPoint],
    write: &[WritePoint],
    read_heavy: &[ReadPoint],
    fairness: &[FairnessPoint],
    kv: &[KvPoint],
    host: &[HostPoint],
    write_host: &[WriteHostPoint],
) -> serde_json::Value {
    let mut rows: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), p.bench.to_string().into()),
                ("arch".into(), p.arch.to_string().into()),
                ("method".into(), p.method.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("commits".into(), p.commits.into()),
                ("conflicts".into(), p.conflicts.into()),
                ("helps".into(), p.helps.into()),
                ("conflict_rate".into(), p.conflict_rate().into()),
                ("help_rate".into(), p.help_rate().into()),
                ("retry_rate".into(), p.retry_rate().into()),
            ])
        })
        .collect();
    rows.extend(write.iter().map(|p| {
        serde_json::Value::Object(vec![
            ("bench".into(), "write-path".into()),
            ("kernel".into(), crate::write_path::k_label(p.k).into()),
            ("arch".into(), p.arch.to_string().into()),
            ("method".into(), p.mode.to_string().into()),
            ("procs".into(), (p.procs as u64).into()),
            ("total_ops".into(), p.total_ops.into()),
            ("seed".into(), p.seed.into()),
            ("cycles".into(), p.cycles.into()),
            ("throughput".into(), p.throughput.into()),
            ("commits".into(), p.commits.into()),
            ("conflicts".into(), p.conflicts.into()),
            ("helps".into(), p.helps.into()),
        ])
    }));
    let read_rows = read_heavy
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), p.bench.to_string().into()),
                ("arch".into(), p.arch.to_string().into()),
                ("config".into(), p.mode.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("seed".into(), p.seed.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("commits".into(), p.commits.into()),
                ("conflicts".into(), p.conflicts.into()),
                ("helps".into(), p.helps.into()),
            ])
        })
        .collect();
    let fairness_rows = fairness
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), "storm".into()),
                ("arch".into(), p.arch.to_string().into()),
                ("config".into(), p.mode.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("seed".into(), p.seed.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("big_txs".into(), p.big_txs.into()),
                ("max_losses".into(), p.max_losses.into()),
                ("loss_bound".into(), p.loss_bound.into()),
                ("p99_big_latency".into(), p.p99_big_latency.into()),
                ("escalations".into(), p.escalations.into()),
                ("forced".into(), p.forced.into()),
                ("deferrals".into(), p.deferrals.into()),
            ])
        })
        .collect();
    let kv_rows = kv.iter().map(kv_row).collect();
    let mut host_rows: Vec<serde_json::Value> = host
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("workload".into(), "snapshot".into()),
                ("config".into(), p.config.into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("nanos".into(), p.nanos.into()),
                ("ops_per_sec".into(), p.ops_per_sec.into()),
            ])
        })
        .collect();
    host_rows.extend(write_host.iter().map(|p| {
        serde_json::Value::Object(vec![
            ("workload".into(), "write-path".into()),
            ("config".into(), p.config().into()),
            ("procs".into(), (p.procs as u64).into()),
            ("total_ops".into(), p.total_ops.into()),
            ("nanos".into(), p.nanos.into()),
            ("ops_per_sec".into(), p.ops_per_sec.into()),
        ])
    }));
    serde_json::Value::Object(vec![
        ("schema".into(), BENCH_SCHEMA.into()),
        ("points".into(), serde_json::Value::Array(rows)),
        ("read_heavy".into(), serde_json::Value::Array(read_rows)),
        ("fairness".into(), serde_json::Value::Array(fairness_rows)),
        ("kv".into(), serde_json::Value::Array(kv_rows)),
        ("host".into(), serde_json::Value::Array(host_rows)),
    ])
}

/// One `kv` section row (see [`bench_json`] for the column list).
fn kv_row(p: &KvPoint) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("bench".into(), "kv".into()),
        ("config".into(), p.label().into()),
        ("keys".into(), u64::from(p.keys).into()),
        ("n_buckets".into(), (p.n_buckets as u64).into()),
        ("threads".into(), (p.threads as u64).into()),
        ("total_ops".into(), p.total_ops.into()),
        ("skew".into(), p.skew.into()),
        ("read_pct".into(), u64::from(p.read_pct).into()),
        ("seed".into(), p.seed.into()),
        ("nanos".into(), p.nanos.into()),
        ("ops_per_sec".into(), p.ops_per_sec.into()),
        ("gets".into(), p.gets.into()),
        ("hits".into(), p.hits.into()),
        ("puts".into(), p.puts.into()),
        ("deletes".into(), p.deletes.into()),
        ("entries".into(), p.entries.into()),
        ("live_cells".into(), p.live_cells.into()),
        ("high_water_cells".into(), p.high_water_cells.into()),
        ("segments_live".into(), p.segments_live.into()),
    ])
}

/// Rewrite only the `kv` section of an existing report (replacing it, or
/// inserting it between `fairness` and `host`), stamping the current
/// [`BENCH_SCHEMA`]. Every other section is re-emitted from its parsed
/// values, which round-trip byte-identically (integers stay integers and
/// floats re-print via the same shortest-representation formatter), so
/// regenerating the KV ladder cannot disturb the replayed baselines.
///
/// # Errors
///
/// Returns an error if the file cannot be read, is not a JSON object, or
/// cannot be written back.
pub fn splice_kv_section(path: &Path, kv: &[KvPoint]) -> io::Result<()> {
    let doc = std::fs::read_to_string(path)?;
    let mut v: serde_json::Value =
        serde_json::from_str(&doc).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let serde_json::Value::Object(entries) = &mut v else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "report is not a JSON object"));
    };
    let rows = serde_json::Value::Array(kv.iter().map(kv_row).collect());
    for (k, val) in entries.iter_mut() {
        if k == "schema" {
            *val = BENCH_SCHEMA.into();
        }
    }
    if let Some((_, val)) = entries.iter_mut().find(|(k, _)| k == "kv") {
        *val = rows;
    } else {
        let at = entries.iter().position(|(k, _)| k == "host").unwrap_or(entries.len());
        entries.insert(at, ("kv".into(), rows));
    }
    std::fs::write(path, serde_json::to_string_pretty(&v).expect("kv values are finite"))
}

/// Write [`bench_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
#[allow(clippy::too_many_arguments)]
pub fn write_bench_json(
    path: &Path,
    points: &[DataPoint],
    write: &[WritePoint],
    read_heavy: &[ReadPoint],
    fairness: &[FairnessPoint],
    kv: &[KvPoint],
    host: &[HostPoint],
    write_host: &[WriteHostPoint],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let doc = serde_json::to_string_pretty(&bench_json(
        points, write, read_heavy, fairness, kv, host, write_host,
    ))
    .expect("bench values are finite");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_heavy::{run_host_point, run_read_point, ReadBench, ReadMode};
    use crate::workloads::{run_point, ArchKind, Bench};
    use crate::write_path::{run_write_host_point, run_write_point, WriteMode};
    use stm_structures::Method;

    #[test]
    fn report_round_trips_with_protocol_rates() {
        let points = vec![
            run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 2, 64, 1),
            run_point(Bench::Counting, ArchKind::Bus, Method::Mcs, 2, 64, 1),
        ];
        let doc =
            serde_json::to_string_pretty(&bench_json(&points, &[], &[], &[], &[], &[], &[])).unwrap();
        let v = serde_json::from_str(&doc).expect("report must be valid JSON");
        assert_eq!(v["schema"].as_str(), Some(BENCH_SCHEMA));
        let rows = v["points"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let stm = &rows[0];
        assert_eq!(stm["method"].as_str(), Some("STM"));
        assert_eq!(stm["commits"].as_u64(), Some(points[0].commits));
        assert_eq!(stm["total_ops"].as_u64(), Some(64));
        assert!(stm["throughput"].as_f64().unwrap() > 0.0);
        assert!(stm["conflict_rate"].as_f64().unwrap() >= 0.0);
        let lock = &rows[1];
        assert_eq!(lock["method"].as_str(), Some("MCS-lock"));
        assert_eq!(lock["commits"].as_u64(), Some(0));
        assert_eq!(lock["retry_rate"].as_f64(), Some(0.0));
        assert!(v["read_heavy"].as_array().unwrap().is_empty());
        assert!(v["fairness"].as_array().unwrap().is_empty());
        assert!(v["host"].as_array().unwrap().is_empty());
    }

    #[test]
    fn read_heavy_rows_carry_replay_parameters() {
        let rp = run_read_point(ReadBench::Snapshot, ArchKind::Bus, ReadMode::Fast, 2, 64, 5);
        let hp = run_host_point("fast-dense", true, false, 1, 256);
        let v = bench_json(&[], &[], std::slice::from_ref(&rp), &[], &[], &[hp], &[]);
        let row = &v["read_heavy"].as_array().unwrap()[0];
        // The gate replays rows from these fields alone; losing one breaks it.
        assert_eq!(row["bench"].as_str(), Some("snapshot"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["config"].as_str(), Some("fast-read"));
        assert_eq!(row["procs"].as_u64(), Some(2));
        assert_eq!(row["total_ops"].as_u64(), Some(64));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(rp.cycles));
        let host = &v["host"].as_array().unwrap()[0];
        assert_eq!(host["config"].as_str(), Some("fast-dense"));
        assert!(host["ops_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn write_path_rows_carry_replay_parameters() {
        let wp = run_write_point(2, ArchKind::Bus, WriteMode::Compiled, 2, 64, 5);
        let wh = run_write_host_point(2, WriteMode::Compiled, 1, 256);
        let v = bench_json(&[], std::slice::from_ref(&wp), &[], &[], &[], &[], &[wh]);
        let row = &v["points"].as_array().unwrap()[0];
        // The gate replays write-path rows from these fields alone; losing
        // one breaks it. The seed is also the family discriminator.
        assert_eq!(row["bench"].as_str(), Some("write-path"));
        assert_eq!(row["kernel"].as_str(), Some("k2"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["method"].as_str(), Some("compiled"));
        assert_eq!(row["procs"].as_u64(), Some(2));
        assert_eq!(row["total_ops"].as_u64(), Some(64));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(wp.cycles));
        let host = &v["host"].as_array().unwrap()[0];
        assert_eq!(host["workload"].as_str(), Some("write-path"));
        assert_eq!(host["config"].as_str(), Some("k2-compiled"));
        assert!(host["ops_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fairness_rows_carry_replay_parameters_and_the_bound() {
        use crate::fairness::{fair_loss_bound, run_fairness_point, FairMode};
        let fp = run_fairness_point(ArchKind::Bus, FairMode::Escalation, 128, 5);
        let v = bench_json(&[], &[], &[], std::slice::from_ref(&fp), &[], &[], &[]);
        let row = &v["fairness"].as_array().unwrap()[0];
        // The gate replays rows from these fields alone; losing one breaks it.
        assert_eq!(row["bench"].as_str(), Some("storm"));
        assert_eq!(row["arch"].as_str(), Some("bus"));
        assert_eq!(row["config"].as_str(), Some("escalation"));
        assert_eq!(row["procs"].as_u64(), Some(fp.procs as u64));
        assert_eq!(row["total_ops"].as_u64(), Some(fp.total_ops));
        assert_eq!(row["seed"].as_u64(), Some(5));
        assert_eq!(row["cycles"].as_u64(), Some(fp.cycles));
        assert_eq!(row["max_losses"].as_u64(), Some(fp.max_losses));
        assert_eq!(row["loss_bound"].as_u64(), Some(fair_loss_bound()));
        assert_eq!(row["p99_big_latency"].as_u64(), Some(fp.p99_big_latency));
    }

    fn sample_kv_point() -> KvPoint {
        KvPoint {
            keys: 600_000,
            n_buckets: 1 << 18,
            threads: 4,
            total_ops: 400_000,
            skew: 0.99,
            read_pct: 95,
            seed: 31415,
            nanos: 123_456_789,
            ops_per_sec: 3_240_001.5,
            gets: 380_000,
            hits: 300_000,
            puts: 10_000,
            deletes: 10_000,
            entries: 599_000,
            live_cells: 2_321_288,
            high_water_cells: 2_324_288,
            segments_live: 600,
        }
    }

    #[test]
    fn kv_rows_carry_replay_parameters_and_invariant_columns() {
        let kp = sample_kv_point();
        let v = bench_json(&[], &[], &[], &[], std::slice::from_ref(&kp), &[], &[]);
        let row = &v["kv"].as_array().unwrap()[0];
        // The gate replays rungs from these fields alone; losing one breaks
        // it. The functional columns are what it pins.
        assert_eq!(row["bench"].as_str(), Some("kv"));
        assert_eq!(row["config"].as_str(), Some("t4-z0.99-r95"));
        assert_eq!(row["keys"].as_u64(), Some(600_000));
        assert_eq!(row["n_buckets"].as_u64(), Some(1 << 18));
        assert_eq!(row["threads"].as_u64(), Some(4));
        assert_eq!(row["total_ops"].as_u64(), Some(400_000));
        assert_eq!(row["skew"].as_f64(), Some(0.99));
        assert_eq!(row["read_pct"].as_u64(), Some(95));
        assert_eq!(row["seed"].as_u64(), Some(31415));
        assert_eq!(row["entries"].as_u64(), Some(599_000));
        assert_eq!(row["live_cells"].as_u64(), Some(2_321_288));
        assert!(row["ops_per_sec"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn splice_replaces_only_the_kv_section() {
        let dir = std::env::temp_dir().join(format!("stm_bench_splice_{}", std::process::id()));
        let path = dir.join("BENCH_stm.json");
        let points = vec![run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 1, 16, 1)];
        let rp = run_read_point(ReadBench::Snapshot, ArchKind::Bus, ReadMode::Fast, 2, 64, 5);
        write_bench_json(&path, &points, &[], &[rp], &[], &[], &[], &[]).unwrap();
        let before: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();

        splice_kv_section(&path, &[sample_kv_point()]).unwrap();
        let after_doc = std::fs::read_to_string(&path).unwrap();
        let after: serde_json::Value = serde_json::from_str(&after_doc).unwrap();
        assert_eq!(after["schema"].as_str(), Some(BENCH_SCHEMA));
        assert_eq!(after["kv"].as_array().unwrap().len(), 1);
        // Every other section round-trips untouched — byte-identical once
        // re-serialized, which is what keeps the replayed baselines stable.
        assert_eq!(after["points"], before["points"]);
        assert_eq!(after["read_heavy"], before["read_heavy"]);
        assert_eq!(after["fairness"], before["fairness"]);
        assert_eq!(after["host"], before["host"]);
        // Section order is preserved: kv sits between fairness and host.
        let fairness_at = after_doc.find("\"fairness\"").unwrap();
        let kv_at = after_doc.find("\"kv\"").unwrap();
        let host_at = after_doc.find("\"host\"").unwrap();
        assert!(fairness_at < kv_at && kv_at < host_at);

        // Splicing a second time replaces (not duplicates) the section.
        splice_kv_section(&path, &[sample_kv_point(), sample_kv_point()]).unwrap();
        let again: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(again["kv"].as_array().unwrap().len(), 2);
        assert_eq!(again["points"], before["points"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("stm_bench_report_{}", std::process::id()));
        let path = dir.join("nested/BENCH_stm.json");
        let points = vec![run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 1, 16, 1)];
        write_bench_json(&path, &points, &[], &[], &[], &[], &[], &[]).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["points"].as_array().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
