//! Machine-readable benchmark report (`BENCH_stm.json`).
//!
//! The figure runner snapshots every data point it produced — throughput
//! plus the protocol-level conflict/help/retry rates — into one JSON
//! document, so downstream tooling (CI artifacts, plotting scripts,
//! regression diffs) can consume the sweep without re-parsing CSV tables.

use std::io;
use std::path::Path;

use crate::workloads::DataPoint;

/// Schema identifier written into the report, bumped on layout changes.
pub const BENCH_SCHEMA: &str = "stm-bench/v1";

/// Build the JSON document for a set of data points.
///
/// Layout: `{"schema": ..., "points": [{bench, arch, method, procs,
/// total_ops, cycles, throughput, commits, conflicts, helps,
/// conflict_rate, help_rate, retry_rate}, ...]}`. The protocol fields are
/// zero for lock baselines, which never enter the STM protocol.
pub fn bench_json(points: &[DataPoint]) -> serde_json::Value {
    let rows = points
        .iter()
        .map(|p| {
            serde_json::Value::Object(vec![
                ("bench".into(), p.bench.to_string().into()),
                ("arch".into(), p.arch.to_string().into()),
                ("method".into(), p.method.to_string().into()),
                ("procs".into(), (p.procs as u64).into()),
                ("total_ops".into(), p.total_ops.into()),
                ("cycles".into(), p.cycles.into()),
                ("throughput".into(), p.throughput.into()),
                ("commits".into(), p.commits.into()),
                ("conflicts".into(), p.conflicts.into()),
                ("helps".into(), p.helps.into()),
                ("conflict_rate".into(), p.conflict_rate().into()),
                ("help_rate".into(), p.help_rate().into()),
                ("retry_rate".into(), p.retry_rate().into()),
            ])
        })
        .collect();
    serde_json::Value::Object(vec![
        ("schema".into(), BENCH_SCHEMA.into()),
        ("points".into(), serde_json::Value::Array(rows)),
    ])
}

/// Write [`bench_json`] for `points` to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_bench_json(path: &Path, points: &[DataPoint]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let doc = serde_json::to_string_pretty(&bench_json(points)).expect("bench values are finite");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{run_point, ArchKind, Bench};
    use stm_structures::Method;

    #[test]
    fn report_round_trips_with_protocol_rates() {
        let points = vec![
            run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 2, 64, 1),
            run_point(Bench::Counting, ArchKind::Bus, Method::Mcs, 2, 64, 1),
        ];
        let doc = serde_json::to_string_pretty(&bench_json(&points)).unwrap();
        let v = serde_json::from_str(&doc).expect("report must be valid JSON");
        assert_eq!(v["schema"].as_str(), Some(BENCH_SCHEMA));
        let rows = v["points"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let stm = &rows[0];
        assert_eq!(stm["method"].as_str(), Some("STM"));
        assert_eq!(stm["commits"].as_u64(), Some(points[0].commits));
        assert_eq!(stm["total_ops"].as_u64(), Some(64));
        assert!(stm["throughput"].as_f64().unwrap() > 0.0);
        assert!(stm["conflict_rate"].as_f64().unwrap() >= 0.0);
        let lock = &rows[1];
        assert_eq!(lock["method"].as_str(), Some("MCS-lock"));
        assert_eq!(lock["commits"].as_u64(), Some(0));
        assert_eq!(lock["retry_rate"].as_f64(), Some(0.0));
    }

    #[test]
    fn writer_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("stm_bench_report_{}", std::process::id()));
        let path = dir.join("nested/BENCH_stm.json");
        let points = vec![run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 1, 16, 1)];
        write_bench_json(&path, &points).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::from_str(&doc).unwrap();
        assert_eq!(v["points"].as_array().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
