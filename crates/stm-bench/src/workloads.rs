//! The benchmark workload drivers: one simulated run = one data point.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_core::machine::MemPort;
use stm_core::word::Word;
use stm_sim::arch::{BusModel, CachedMeshModel, CostModel, MeshModel, UniformModel};
use stm_sim::engine::{SimConfig, SimPort, SimReport, Simulation};
use stm_structures::counter::Counter;
use stm_structures::prio::PrioQueue;
use stm_structures::queue::FifoQueue;
use stm_structures::resource::ResourcePool;
use stm_structures::Method;

/// Which benchmark workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Shared counter: every operation increments one word (maximum
    /// contention).
    Counting,
    /// Doubly-linked FIFO queue: each processor alternates enqueue/dequeue.
    Queue,
    /// Resource allocation: acquire 3 random resources of 64, then release.
    Resource,
    /// Array priority queue: alternate insert / extract-min over the whole
    /// heap.
    Prio,
}

impl Bench {
    /// All benchmarks.
    pub const ALL: [Bench; 4] = [Bench::Counting, Bench::Queue, Bench::Resource, Bench::Prio];

    /// Short name used in tables and CSV files.
    pub fn label(self) -> &'static str {
        match self {
            Bench::Counting => "counting",
            Bench::Queue => "queue",
            Bench::Resource => "resource",
            Bench::Prio => "prio",
        }
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which simulated machine to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Snoopy-cache bus machine.
    Bus,
    /// Alewife-like mesh DSM machine (no remote caching).
    Mesh,
    /// Mesh DSM with coherent read caching (architecture ablation).
    MeshCached,
    /// Contention-free ideal machine (ablations only).
    Uniform,
}

impl ArchKind {
    /// Build the cost model for `procs` processors.
    pub fn model(self, procs: usize) -> Box<dyn CostModel + 'static> {
        match self {
            ArchKind::Bus => Box::new(BusModel::for_procs(procs)),
            ArchKind::Mesh => Box::new(MeshModel::for_procs(procs)),
            ArchKind::MeshCached => Box::new(CachedMeshModel::for_procs(procs)),
            ArchKind::Uniform => Box::new(UniformModel::new(1, 6)),
        }
    }

    /// Short name used in tables and CSV files.
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::Bus => "bus",
            ArchKind::Mesh => "mesh",
            ArchKind::MeshCached => "mesh-cached",
            ArchKind::Uniform => "uniform",
        }
    }

    /// Inverse of [`ArchKind::label`] (used by the CI gate to replay
    /// baseline rows).
    pub fn from_label(s: &str) -> Option<Self> {
        [ArchKind::Bus, ArchKind::Mesh, ArchKind::MeshCached, ArchKind::Uniform]
            .into_iter()
            .find(|a| a.label() == s)
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Workload.
    pub bench: Bench,
    /// Machine.
    pub arch: ArchKind,
    /// Synchronization method.
    pub method: Method,
    /// Simulated processors.
    pub procs: usize,
    /// Completed operations across all processors.
    pub total_ops: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Throughput in operations per million cycles (the paper's metric).
    pub throughput: f64,
    /// Transactions committed during the run (0 for the lock methods, which
    /// announce no protocol steps).
    pub commits: u64,
    /// Transaction attempts failed on an ownership conflict.
    pub conflicts: u64,
    /// Helping spans entered (the paper's non-redundant helping at work).
    pub helps: u64,
}

impl DataPoint {
    /// Fraction of transaction attempts that failed on a conflict
    /// (`conflicts / (commits + conflicts)`; 0 when no attempts were
    /// announced, e.g. the lock methods).
    pub fn conflict_rate(&self) -> f64 {
        let attempts = self.commits + self.conflicts;
        if attempts == 0 {
            0.0
        } else {
            self.conflicts as f64 / attempts as f64
        }
    }

    /// Helping spans per transaction attempt.
    pub fn help_rate(&self) -> f64 {
        let attempts = self.commits + self.conflicts;
        if attempts == 0 {
            0.0
        } else {
            self.helps as f64 / attempts as f64
        }
    }

    /// Failed attempts per committed transaction (the retry overhead).
    pub fn retry_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.commits as f64
        }
    }
}

/// Boxed cost model wrapper so `Simulation::new` (which takes a sized model)
/// can accept `ArchKind::model`'s trait object.
pub(crate) struct DynModel(pub(crate) Box<dyn CostModel>);

impl CostModel for DynModel {
    fn access(&mut self, t: u64, proc: usize, kind: stm_sim::arch::OpKind, addr: usize) -> u64 {
        self.0.access(t, proc, kind, addr)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

fn throughput(total_ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        total_ops as f64 * 1_000_000.0 / cycles as f64
    }
}

/// Run one `(bench, arch, method, procs)` configuration with `total_ops`
/// operations split evenly across processors.
///
/// # Panics
///
/// Panics if the run's correctness check fails (conservation, emptiness,
/// quiescence) — a benchmark that produces wrong answers must never emit a
/// data point.
pub fn run_point(
    bench: Bench,
    arch: ArchKind,
    method: Method,
    procs: usize,
    total_ops: u64,
    seed: u64,
) -> DataPoint {
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let (report, ops) = match bench {
        Bench::Counting => run_counting(arch, method, procs, per_proc, seed),
        Bench::Queue => run_queue(arch, method, procs, per_proc, seed),
        Bench::Resource => run_resource(arch, method, procs, per_proc, seed),
        Bench::Prio => run_prio(arch, method, procs, per_proc, seed),
    };
    debug_assert_eq!(ops, actual_total);
    let cycles = report.cycles;
    DataPoint {
        bench,
        arch,
        method,
        procs,
        total_ops: ops,
        cycles,
        throughput: throughput(ops, cycles),
        commits: report.stats.commits(),
        conflicts: report.stats.aborts(),
        helps: report.stats.helps(),
    }
}

fn sim_config(n_words: usize, seed: u64, init: Vec<(usize, Word)>) -> SimConfig {
    SimConfig { n_words, seed, jitter: 2, max_cycles: 1 << 36, init, ..Default::default() }
}

fn run_counting(
    arch: ArchKind,
    method: Method,
    procs: usize,
    per_proc: u64,
    seed: u64,
) -> (SimReport, u64) {
    let counter = Counter::new(method, 0, procs);
    let config = sim_config(Counter::words_needed(method, procs), seed, counter.init_words(0));
    let report =
        Simulation::new(config, DynModel(arch.model(procs))).run(procs, |_p| {
            let counter = counter.clone();
            move |mut port: SimPort| {
                let mut h = counter.handle(&port);
                for _ in 0..per_proc {
                    h.increment(&mut port);
                }
            }
        });
    // Correctness gate: the counter must equal the exact operation count.
    let final_value = {
        let c = counter.clone();
        // Read the final value straight out of the memory image via a probe
        // run? Cheaper: the init_words/report pair — reuse handle decoding by
        // rebuilding on a 1-proc host is overkill; decode via Counter on a
        // fresh simulated port is unnecessary: every representation stores
        // the value at a method-specific address. Use a tiny helper:
        decode_counter(&c, &report.memory)
    };
    assert_eq!(final_value as u64, per_proc * procs as u64, "lost updates in counting benchmark");
    (report, per_proc * procs as u64)
}

/// Decode a counter's final value from a raw memory image.
fn decode_counter(counter: &Counter, memory: &[Word]) -> u32 {
    // All methods expose the value through their init_words address: for STM
    // it is the packed cell; for Herlihy the *current buffer* may have moved,
    // so read through the object pointer; locks store it in plain form.
    // The cleanest universal decoder replays a read on a 1-processor
    // simulation seeded with the final memory image.
    let config = SimConfig {
        n_words: memory.len(),
        init: memory.iter().copied().enumerate().collect(),
        ..Default::default()
    };
    let value = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let v2 = std::sync::Arc::clone(&value);
    let counter = counter.clone();
    let _ = Simulation::new(config, UniformModel::new(1, 1)).run(1, move |_| {
        let counter = counter.clone();
        let v2 = std::sync::Arc::clone(&v2);
        move |mut port: SimPort| {
            let mut h = counter.handle(&port);
            v2.store(h.read(&mut port), std::sync::atomic::Ordering::SeqCst);
        }
    });
    value.load(std::sync::atomic::Ordering::SeqCst)
}

fn run_queue(
    arch: ArchKind,
    method: Method,
    procs: usize,
    per_proc: u64,
    seed: u64,
) -> (SimReport, u64) {
    let capacity = (2 * procs).max(16);
    let queue = FifoQueue::new(method, 0, procs, capacity);
    let config =
        sim_config(FifoQueue::words_needed(method, procs, capacity), seed, queue.init_words());
    // Each processor alternates enqueue/dequeue; a round is one op pair, and
    // we count 2 ops per round, so rounds = per_proc / 2.
    let rounds = (per_proc / 2).max(1);
    let report = Simulation::new(config, DynModel(arch.model(procs))).run(procs, |p| {
        let queue = queue.clone();
        move |mut port: SimPort| {
            let mut h = queue.handle(&port);
            for i in 0..rounds {
                let v = (p as u64 * rounds + i) as u32;
                while !h.enqueue(&mut port, v) {
                    port.delay(8);
                }
                while h.dequeue(&mut port).is_none() {
                    port.delay(8);
                }
            }
        }
    });
    // Correctness gate: balanced enq/deq leave the queue empty.
    let len = decode_queue_len(&queue, &report.memory);
    assert_eq!(len, 0, "queue must drain with balanced enqueue/dequeue");
    (report, 2 * rounds * procs as u64)
}

fn decode_queue_len(queue: &FifoQueue, memory: &[Word]) -> usize {
    let config = SimConfig {
        n_words: memory.len(),
        init: memory.iter().copied().enumerate().collect(),
        ..Default::default()
    };
    let out = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX));
    let o2 = std::sync::Arc::clone(&out);
    let queue = queue.clone();
    let _ = Simulation::new(config, UniformModel::new(1, 1)).run(1, move |_| {
        let queue = queue.clone();
        let o2 = std::sync::Arc::clone(&o2);
        move |mut port: SimPort| {
            let mut h = queue.handle(&port);
            o2.store(h.len(&mut port), std::sync::atomic::Ordering::SeqCst);
        }
    });
    out.load(std::sync::atomic::Ordering::SeqCst)
}

const RESOURCES: usize = 64;
const RESOURCE_K: usize = 3;
const RESOURCE_UNITS: u32 = 1;

fn run_resource(
    arch: ArchKind,
    method: Method,
    procs: usize,
    per_proc: u64,
    seed: u64,
) -> (SimReport, u64) {
    let pool = ResourcePool::new(method, 0, procs, RESOURCES);
    let config = sim_config(
        ResourcePool::words_needed(method, procs, RESOURCES),
        seed,
        pool.init_words(RESOURCE_UNITS),
    );
    let report = Simulation::new(config, DynModel(arch.model(procs))).run(procs, |p| {
        let pool = pool.clone();
        move |mut port: SimPort| {
            let mut h = pool.handle(&port);
            let mut rng = SmallRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
            for _ in 0..per_proc {
                let set = distinct_indices(&mut rng, RESOURCE_K, RESOURCES);
                while !h.try_acquire(&mut port, &set) {
                    port.delay(16);
                }
                h.release(&mut port, &set);
            }
        }
    });
    let total: u64 = decode_resources(&pool, &report.memory).iter().map(|&v| v as u64).sum();
    assert_eq!(
        total,
        RESOURCES as u64 * RESOURCE_UNITS as u64,
        "resource units must be conserved"
    );
    (report, per_proc * procs as u64)
}

fn decode_resources(pool: &ResourcePool, memory: &[Word]) -> Vec<u32> {
    let config = SimConfig {
        n_words: memory.len(),
        init: memory.iter().copied().enumerate().collect(),
        ..Default::default()
    };
    let out: std::sync::Arc<std::sync::Mutex<Vec<u32>>> =
        std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let o2 = std::sync::Arc::clone(&out);
    let pool = pool.clone();
    let _ = Simulation::new(config, UniformModel::new(1, 1)).run(1, move |_| {
        let pool = pool.clone();
        let o2 = std::sync::Arc::clone(&o2);
        move |mut port: SimPort| {
            let mut h = pool.handle(&port);
            *o2.lock().unwrap() = h.read_all(&mut port);
        }
    });
    let v = out.lock().unwrap().clone();
    v
}

/// Draw `k` distinct indices in `0..m`.
fn distinct_indices(rng: &mut SmallRng, k: usize, m: usize) -> Vec<usize> {
    let mut set = Vec::with_capacity(k);
    while set.len() < k {
        let r = rng.gen_range(0..m);
        if !set.contains(&r) {
            set.push(r);
        }
    }
    set
}

const PRIO_CAPACITY: usize = 32;

fn run_prio(
    arch: ArchKind,
    method: Method,
    procs: usize,
    per_proc: u64,
    seed: u64,
) -> (SimReport, u64) {
    let q = PrioQueue::new(method, 0, procs, PRIO_CAPACITY);
    let config =
        sim_config(PrioQueue::words_needed(method, procs, PRIO_CAPACITY), seed, q.init_words());
    let rounds = (per_proc / 2).max(1);
    let report = Simulation::new(config, DynModel(arch.model(procs))).run(procs, |p| {
        let q = q.clone();
        move |mut port: SimPort| {
            let mut h = q.handle(&port);
            let mut rng = SmallRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0xBF58_476D));
            for _ in 0..rounds {
                let v = rng.gen_range(0..1_000_000);
                while !h.insert(&mut port, v) {
                    port.delay(16);
                }
                while h.extract_min(&mut port).is_none() {
                    port.delay(16);
                }
            }
        }
    });
    let len = decode_prio_len(&q, &report.memory);
    assert_eq!(len, 0, "priority queue must drain with balanced insert/extract");
    (report, 2 * rounds * procs as u64)
}

fn decode_prio_len(q: &PrioQueue, memory: &[Word]) -> usize {
    let config = SimConfig {
        n_words: memory.len(),
        init: memory.iter().copied().enumerate().collect(),
        ..Default::default()
    };
    let out = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX));
    let o2 = std::sync::Arc::clone(&out);
    let q = q.clone();
    let _ = Simulation::new(config, UniformModel::new(1, 1)).run(1, move |_| {
        let q = q.clone();
        let o2 = std::sync::Arc::clone(&o2);
        move |mut port: SimPort| {
            let mut h = q.handle(&port);
            o2.store(h.len(&mut port), std::sync::atomic::Ordering::SeqCst);
        }
    });
    out.load(std::sync::atomic::Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_point_is_checked_and_positive() {
        for method in [Method::Stm, Method::Mcs] {
            let p = run_point(Bench::Counting, ArchKind::Bus, method, 2, 64, 1);
            assert_eq!(p.total_ops, 64);
            assert!(p.cycles > 0);
            assert!(p.throughput > 0.0);
        }
    }

    #[test]
    fn stm_points_carry_protocol_rates_and_lock_points_do_not() {
        let stm = run_point(Bench::Counting, ArchKind::Bus, Method::Stm, 4, 64, 1);
        // Every completed operation is a committed transaction.
        assert_eq!(stm.commits, stm.total_ops, "one commit per op");
        assert!(stm.conflict_rate() >= 0.0 && stm.conflict_rate() < 1.0);
        assert!(stm.retry_rate() >= 0.0);
        let lock = run_point(Bench::Counting, ArchKind::Bus, Method::Mcs, 4, 64, 1);
        assert_eq!((lock.commits, lock.conflicts, lock.helps), (0, 0, 0));
        assert_eq!(lock.conflict_rate(), 0.0);
        assert_eq!(lock.help_rate(), 0.0);
        assert_eq!(lock.retry_rate(), 0.0);
    }

    #[test]
    fn queue_point_runs_all_methods_small() {
        for method in Method::PAPER {
            let p = run_point(Bench::Queue, ArchKind::Mesh, method, 2, 32, 2);
            assert_eq!(p.total_ops, 32);
            assert!(p.cycles > 0);
        }
    }

    #[test]
    fn resource_point_conserves() {
        let p = run_point(Bench::Resource, ArchKind::Bus, Method::Stm, 3, 30, 3);
        assert_eq!(p.total_ops, 30);
    }

    #[test]
    fn prio_point_drains() {
        let p = run_point(Bench::Prio, ArchKind::Bus, Method::Herlihy, 2, 16, 4);
        assert_eq!(p.total_ops, 16);
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let v = distinct_indices(&mut rng, 3, 8);
            assert_eq!(v.len(), 3);
            assert!(v[0] != v[1] && v[1] != v[2] && v[0] != v[2]);
        }
    }
}
