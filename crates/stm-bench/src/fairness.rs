//! F1 starvation ablation: a big-k transaction under a small-tx storm.
//!
//! The paper's protocol is lock-free but not starvation-free: a transaction
//! spanning many hot cells can lose to a stream of small commits
//! indefinitely. The fairness ladder (escalation after N losses, the forced
//! tier after M further losses — see `docs/protocol.md` §13) bounds that.
//! This module measures the bound: one processor runs big-k read-modify-write
//! transactions across the storm's hot cells while the rest hammer the two
//! hottest cells with single-cell commits, on the bus and mesh machines.
//!
//! Each configuration runs in both modes of [`FairMode`]: `baseline`
//! disables the ladder (thresholds at `u64::MAX` — the pre-fairness
//! contention manager) and `escalation` is the aggressive ladder. The
//! headline columns are `max_losses` — the most conflicts any single big
//! transaction suffered before committing — and the big transaction's p99
//! commit latency in simulated cycles. Under `escalation`, `max_losses` must
//! not exceed the N+M bound ([`fair_loss_bound`]); the point asserts that
//! before it is emitted, and the `bench_gate` binary re-checks it on every
//! replay.
//!
//! The simulator is deterministic: the same `(arch, mode, procs, ops, seed)`
//! tuple always yields the same cycle count and loss tally, which is what
//! lets CI gate fairness rows against the committed `BENCH_stm.json`
//! baseline exactly like the read-heavy and write-path families.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use stm_core::contention::{AdaptiveConfig, AdaptiveManager, PriorityBoard};
use stm_core::observe::TxObserver;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;
use stm_sim::liveness::{ForcedOrderChecker, LivenessChecker};

use crate::workloads::{ArchKind, DynModel};

/// Simulated processors in the storm (one big-k victim + the storm).
pub const FAIR_PROCS: usize = 4;

/// Cells in the storm's working set.
pub const FAIR_CELLS: usize = 8;

/// Cells spanned by the big transaction (includes the storm's hot cells).
pub const FAIR_BIG_K: usize = 6;

/// The aggressive escalation ladder measured by the ablation: escalation
/// trips within N = 4 attempts, M = 2 further losses claims the forced slot.
pub fn fair_ladder() -> AdaptiveConfig {
    AdaptiveConfig {
        starvation_losses: 2,
        starvation_attempts: 4,
        forced_losses: 2,
        ..AdaptiveConfig::default()
    }
}

/// N+M: the most conflicts an escalating transaction can suffer before its
/// sweep goes forced (which cannot lose).
pub fn fair_loss_bound() -> u64 {
    let cfg = fair_ladder();
    cfg.starvation_attempts + cfg.forced_losses
}

/// Fairness mode under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairMode {
    /// Ladder disabled (every threshold at `u64::MAX`): the pre-fairness
    /// contention manager, whose worst-case losses are unbounded.
    Baseline,
    /// The escalation ladder of [`fair_ladder`], sharing a
    /// [`PriorityBoard`] across all processors.
    Escalation,
}

impl FairMode {
    /// Both modes.
    pub const ALL: [FairMode; 2] = [FairMode::Baseline, FairMode::Escalation];

    /// Short name used in tables, CSV, and `BENCH_stm.json`.
    pub fn label(self) -> &'static str {
        match self {
            FairMode::Baseline => "baseline",
            FairMode::Escalation => "escalation",
        }
    }

    /// Inverse of [`FairMode::label`] (used by the CI gate to replay
    /// baseline rows).
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for FairMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured storm configuration (simulated machine).
#[derive(Debug, Clone)]
pub struct FairnessPoint {
    /// Machine.
    pub arch: ArchKind,
    /// Fairness mode.
    pub mode: FairMode,
    /// Simulated processors (always [`FAIR_PROCS`]; recorded for replay).
    pub procs: usize,
    /// Requested operation budget, recorded verbatim (the split across
    /// victim and storm is derived from it, so replaying with this value
    /// reproduces the row exactly; the committed count is `big_txs` plus the
    /// storm's share and may fall short of the budget by a rounding sliver).
    pub total_ops: u64,
    /// Schedule seed (recorded so the CI gate can replay the row exactly).
    pub seed: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Committed transactions per million simulated cycles.
    pub throughput: f64,
    /// Big-k transactions committed by the victim processor.
    pub big_txs: u64,
    /// Most conflicts any single big transaction suffered before committing.
    pub max_losses: u64,
    /// The N+M bound `max_losses` must respect under `escalation`
    /// (0 = unbounded, recorded for `baseline` rows).
    pub loss_bound: u64,
    /// p99 big-transaction commit latency in simulated cycles.
    pub p99_big_latency: u64,
    /// Escalations observed (victim entering the escalated tier).
    pub escalations: u64,
    /// Forced-tier commits observed.
    pub forced: u64,
    /// Conflicts where a storm transaction deferred to the escalated victim.
    pub deferrals: u64,
}

/// Tallies of the fairness lifecycle events, shared across the simulated
/// processors' observers.
#[derive(Clone, Default)]
struct StormCounters {
    escalations: Arc<AtomicU64>,
    deferrals: Arc<AtomicU64>,
    forced: Arc<AtomicU64>,
}

struct StormObserver(StormCounters);

impl TxObserver for StormObserver {
    fn starvation_escalated(&mut self, _p: usize, _o: Option<usize>, _a: u64, _now: u64) {
        self.0.escalations.fetch_add(1, Ordering::Relaxed);
    }
    fn conflict_deferred(&mut self, _p: usize, _o: usize, _now: u64) {
        self.0.deferrals.fetch_add(1, Ordering::Relaxed);
    }
    fn forced_commit(&mut self, _p: usize, _a: u64, _now: u64) {
        self.0.forced.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run one storm configuration on the simulated machine.
///
/// `total_ops` is split: the victim commits `total_ops / 8` big-k
/// transactions (at least 8), the storm processors share the rest as
/// single-cell commits on the two hottest cells.
///
/// # Panics
///
/// Panics if any add is lost or duplicated, if the run leaks an ownership,
/// if the run violates lock-freedom or the forced tier's ascending-order
/// invariant, or if an `escalation` row exceeds the N+M loss bound — a
/// benchmark that produces wrong answers must never emit a data point.
pub fn run_fairness_point(
    arch: ArchKind,
    mode: FairMode,
    total_ops: u64,
    seed: u64,
) -> FairnessPoint {
    let big_txs = (total_ops / 8).max(8);
    let small_per_proc =
        (total_ops.saturating_sub(big_txs) / (FAIR_PROCS as u64 - 1)).max(1);
    let actual_total = big_txs + small_per_proc * (FAIR_PROCS as u64 - 1);

    let board = Arc::new(PriorityBoard::new(FAIR_PROCS));
    let mut sim = StmSim::new(FAIR_PROCS, FAIR_CELLS, FAIR_CELLS, StmConfig::default())
        .seed(seed)
        .jitter(3)
        .trace(1 << 20);
    if mode == FairMode::Escalation {
        sim = sim.priority_board(Arc::clone(&board));
    }
    // Pre-fairness manager: the ladder exists but can never trip.
    let disabled = AdaptiveConfig {
        starvation_losses: u64::MAX,
        starvation_attempts: u64::MAX,
        forced_losses: u64::MAX,
        ..AdaptiveConfig::default()
    };

    let counters = StormCounters::default();
    let max_losses = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::with_capacity(big_txs as usize)));
    let report = sim.run(DynModel(arch.model(FAIR_PROCS)), |p, ops| {
        let board = Arc::clone(&board);
        let counters = counters.clone();
        let max_losses = Arc::clone(&max_losses);
        let latencies = Arc::clone(&latencies);
        move |mut port: SimPort| {
            let mut obs = StormObserver(counters);
            if p == 0 {
                // The victim: one big-k read-modify-write per iteration,
                // spanning the storm's hot cells.
                let mut cm = match mode {
                    FairMode::Baseline => AdaptiveManager::with_config(0, disabled),
                    FairMode::Escalation => {
                        AdaptiveManager::with_config(0, fair_ladder()).with_board(board)
                    }
                };
                let cells: Vec<usize> = (0..FAIR_BIG_K).collect();
                let params: Vec<Word> = vec![1; FAIR_BIG_K];
                let mut lats = Vec::with_capacity(big_txs as usize);
                for _ in 0..big_txs {
                    use stm_core::machine::MemPort;
                    let t0 = port.now();
                    let out = ops
                        .run(
                            &mut port,
                            &TxSpec::new(ops.builtins().add, &params, &cells),
                            &mut TxOptions::new().observer(&mut obs).manager(&mut cm),
                        )
                        .expect("unlimited budget");
                    lats.push(port.now().saturating_sub(t0));
                    max_losses.fetch_max(out.stats.conflicts, Ordering::Relaxed);
                }
                *latencies.lock().expect("latency lock") = lats;
            } else {
                // The storm: short adds hammering the two hottest cells.
                let mut cm = match mode {
                    FairMode::Baseline => AdaptiveManager::with_config(p, disabled),
                    FairMode::Escalation => AdaptiveManager::new(p).with_board(board),
                };
                for i in 0..small_per_proc as usize {
                    let cell = [(p + i) % 2];
                    let _ = ops
                        .run(
                            &mut port,
                            &TxSpec::new(ops.builtins().add, &[1], &cell),
                            &mut TxOptions::new().observer(&mut obs).manager(&mut cm),
                        )
                        .expect("unlimited budget");
                }
            }
        }
    });

    // Correctness gates: conservation, quiescence, liveness, forced order.
    let cells = sim.all_cells(&report);
    let total: u64 = cells.iter().map(|&v| v as u64).sum();
    let expected = big_txs * FAIR_BIG_K as u64 + small_per_proc * (FAIR_PROCS as u64 - 1);
    assert_eq!(total, expected, "{arch}/{mode}: lost or duplicated adds");
    for (c, &v) in cells.iter().enumerate().take(FAIR_BIG_K).skip(2) {
        assert_eq!(v as u64, big_txs, "{arch}/{mode}: big-only cell {c}");
    }
    assert!(sim.leaked_ownerships(&report).is_empty(), "{arch}/{mode}: leaked ownership");
    assert_eq!(LivenessChecker::default().check(&report), None, "{arch}/{mode}");
    assert_eq!(ForcedOrderChecker.check(&report), None, "{arch}/{mode}");

    let max_losses = max_losses.load(Ordering::Relaxed);
    let loss_bound = match mode {
        FairMode::Baseline => 0,
        FairMode::Escalation => fair_loss_bound(),
    };
    if mode == FairMode::Escalation {
        assert!(
            max_losses <= loss_bound,
            "{arch}: a big transaction lost {max_losses} times, above the N+M bound {loss_bound}"
        );
    }

    let mut lats = latencies.lock().expect("latency lock").clone();
    lats.sort_unstable();
    let p99_big_latency =
        if lats.is_empty() { 0 } else { lats[(lats.len() - 1) * 99 / 100] };

    let cycles = report.cycles;
    FairnessPoint {
        arch,
        mode,
        procs: FAIR_PROCS,
        total_ops,
        seed,
        cycles,
        throughput: if cycles == 0 {
            0.0
        } else {
            actual_total as f64 * 1_000_000.0 / cycles as f64
        },
        big_txs,
        max_losses,
        loss_bound,
        p99_big_latency,
        escalations: counters.escalations.load(Ordering::Relaxed),
        forced: counters.forced.load(Ordering::Relaxed),
        deferrals: counters.deferrals.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_bounds_losses_where_baseline_exceeds_them() {
        // The ablation's reason to exist: on at least one architecture the
        // unprotected baseline must lose more than the ladder's bound, and
        // the ladder must hold it (run_fairness_point asserts the bound
        // internally before emitting an escalation row).
        let mut baseline_worst = 0;
        for arch in [ArchKind::Bus, ArchKind::Mesh] {
            let base = run_fairness_point(arch, FairMode::Baseline, 256, 9);
            let esc = run_fairness_point(arch, FairMode::Escalation, 256, 9);
            baseline_worst = baseline_worst.max(base.max_losses);
            assert!(esc.escalations > 0, "{arch}: storm produced no escalations");
            assert!(esc.max_losses <= fair_loss_bound(), "{arch}");
        }
        assert!(
            baseline_worst > fair_loss_bound(),
            "storm too weak: baseline max losses {baseline_worst} within the bound"
        );
    }

    #[test]
    fn fairness_points_are_deterministic() {
        let a = run_fairness_point(ArchKind::Bus, FairMode::Escalation, 128, 5);
        let b = run_fairness_point(ArchKind::Bus, FairMode::Escalation, 128, 5);
        assert_eq!(a.cycles, b.cycles, "simulated runs must be reproducible");
        assert_eq!(a.max_losses, b.max_losses);
        assert_eq!(a.p99_big_latency, b.p99_big_latency);
        assert!(a.throughput > 0.0);
    }

    #[test]
    fn labels_round_trip() {
        for mode in FairMode::ALL {
            assert_eq!(FairMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(FairMode::from_label("nonsense"), None);
    }
}
