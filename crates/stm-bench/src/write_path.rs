//! Write-path ladder: the compiled-plan/MWCAS-kernel microbenchmarks.
//!
//! Every operation here is a committing `add` transaction over `k` cells —
//! the pure acquiring write path, with `k` selecting the MWCAS kernel tier:
//! `k = 1, 2, 4` hit the monomorphized small-k kernels and `k = 3` the
//! general sweep. Each tier runs in both modes of [`WriteMode`]:
//!
//! * `interpreted` — the spec entry point ([`StmOps::run`]), which builds a
//!   fresh `TxView` (dedup, sort, allocate) on every call.
//! * `compiled` — the cached-plan entry point ([`StmOps::run_planned`]):
//!   one compile per (op, cells) shape, then allocation-free replays out of
//!   the per-thread scratch.
//!
//! On the **simulated** machines the two modes are bit-identical by
//! construction — the kernels issue the same memory operations in the same
//! order — so [`run_write_point`] rows serve double duty: they are the
//! deterministic baseline the `bench_gate` binary replays on every PR
//! (regression anchor for the write path's simulated cost), and the gate
//! additionally asserts `interpreted.cycles == compiled.cycles`, a standing
//! bit-identity witness.
//!
//! The compiled path's *win* is host-side: [`run_write_host_point`] measures
//! wall-clock throughput on real threads, where skipping per-attempt
//! allocation and re-planning is the whole point. The uncontended small-k
//! rows carry the PR's ≥ 1.5× acceptance claim; wall-clock rows are
//! informational (never CI-gated).
//!
//! [`run_cache_point`] is the companion plan-cache ablation (W2): the same
//! host write path with the number of distinct transaction shapes as the
//! independent variable, measuring the bounded cache's hit rate and what a
//! miss-heavy shape churn costs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stm_core::machine::host::HostMachine;
use stm_core::ops::{StmOps, PLAN_CACHE_CAPACITY};
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

use crate::workloads::{ArchKind, DynModel};

/// Cells in the write-path working set.
pub const WRITE_CELLS: usize = 8;

/// The kernel-tier ladder: k = 1, 2, 4 (monomorphized MWCAS kernels) and
/// k = 3 (general sweep control).
pub const WRITE_KS: [usize; 4] = [1, 2, 3, 4];

/// Processor counts for the simulated ladder: 1 isolates uncontended kernel
/// cost, 4 adds conflicts and helping. Pinned (rather than swept) to keep
/// the CI gate's replay bounded.
pub const WRITE_PROCS: [usize; 2] = [1, 4];

/// Execution mode under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMode {
    /// Spec entry point: per-call view build and per-attempt allocation.
    Interpreted,
    /// Cached compiled plan: allocation-free replay through the kernels.
    Compiled,
}

impl WriteMode {
    /// Both modes.
    pub const ALL: [WriteMode; 2] = [WriteMode::Interpreted, WriteMode::Compiled];

    /// Short name used in tables, CSV, and `BENCH_stm.json`.
    pub fn label(self) -> &'static str {
        match self {
            WriteMode::Interpreted => "interpreted",
            WriteMode::Compiled => "compiled",
        }
    }

    /// Inverse of [`WriteMode::label`] (used by the CI gate to replay
    /// baseline rows).
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for WriteMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Label for a kernel tier (`"k1"` .. `"k4"`).
pub fn k_label(k: usize) -> &'static str {
    match k {
        1 => "k1",
        2 => "k2",
        3 => "k3",
        4 => "k4",
        _ => panic!("write-path ladder covers k = 1..=4, got {k}"),
    }
}

/// Inverse of [`k_label`].
pub fn k_from_label(s: &str) -> Option<usize> {
    WRITE_KS.into_iter().find(|&k| k_label(k) == s)
}

/// One measured write-path configuration (simulated machine).
#[derive(Debug, Clone)]
pub struct WritePoint {
    /// Transaction width (kernel tier).
    pub k: usize,
    /// Machine.
    pub arch: ArchKind,
    /// Execution mode.
    pub mode: WriteMode,
    /// Simulated processors.
    pub procs: usize,
    /// Committed transactions across all processors.
    pub total_ops: u64,
    /// Schedule seed (recorded so the CI gate can replay the row exactly).
    pub seed: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Operations per million simulated cycles.
    pub throughput: f64,
    /// Transactions committed through the acquiring protocol.
    pub commits: u64,
    /// Attempts failed on an ownership conflict.
    pub conflicts: u64,
    /// Helping spans entered.
    pub helps: u64,
}

/// Run one write-path configuration on the simulated machine.
///
/// Every processor commits `total_ops / procs` `add(+1)` transactions over
/// cells `0..k`, so at `procs > 1` all processors collide on the same data
/// set — worst-case contention for the kernel under test.
///
/// # Panics
///
/// Panics if updates are lost (every cell in the working set must end at
/// exactly the committed-transaction count) or the run leaks an ownership —
/// a benchmark that produces wrong answers must never emit a data point.
pub fn run_write_point(
    k: usize,
    arch: ArchKind,
    mode: WriteMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
) -> WritePoint {
    assert!(WRITE_KS.contains(&k), "write-path ladder covers k = 1..=4, got {k}");
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let sim =
        StmSim::new(procs, WRITE_CELLS, WRITE_CELLS, StmConfig::default()).seed(seed).jitter(2);
    let committed = Arc::new(AtomicU64::new(0));
    let report = sim.run(DynModel(arch.model(procs)), |_p, ops| {
        let committed = Arc::clone(&committed);
        move |mut port: SimPort| {
            let add = ops.builtins().add;
            let cells: Vec<usize> = (0..k).collect();
            let params = vec![1 as Word; k];
            for _ in 0..per_proc {
                match mode {
                    WriteMode::Compiled => {
                        ops.run_planned(&mut port, add, &params, &cells, |_| ());
                    }
                    WriteMode::Interpreted => {
                        let _ = ops
                            .run(
                                &mut port,
                                &TxSpec::new(add, &params, &cells),
                                &mut TxOptions::new(),
                            )
                            .expect("unlimited budget cannot be exhausted");
                    }
                }
                committed.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    // Correctness gates: conservation and protocol quiescence.
    let writes = committed.load(Ordering::Relaxed);
    let cells = sim.all_cells(&report);
    for (c, &v) in cells.iter().enumerate() {
        let want = if c < k { writes } else { 0 };
        assert_eq!(v as u64, want, "cell {c} must equal the committed count ({mode}, k={k})");
    }
    assert!(sim.leaked_ownerships(&report).is_empty(), "run must end protocol-quiescent");
    let cycles = report.cycles;
    WritePoint {
        k,
        arch,
        mode,
        procs,
        total_ops: actual_total,
        seed,
        cycles,
        throughput: if cycles == 0 {
            0.0
        } else {
            actual_total as f64 * 1_000_000.0 / cycles as f64
        },
        commits: report.stats.commits(),
        conflicts: report.stats.aborts(),
        helps: report.stats.helps(),
    }
}

/// One wall-clock write-path measurement on the real host machine
/// (informational; not CI-gated — but the uncontended small-k rows are
/// where the compiled path's ≥ 1.5× claim lives).
#[derive(Debug, Clone)]
pub struct WriteHostPoint {
    /// Transaction width (kernel tier).
    pub k: usize,
    /// Execution mode.
    pub mode: WriteMode,
    /// Real threads.
    pub procs: usize,
    /// Committed transactions across all threads.
    pub total_ops: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub nanos: u64,
    /// Transactions per second.
    pub ops_per_sec: f64,
}

impl WriteHostPoint {
    /// `BENCH_stm.json` host-row config label, e.g. `"k2-compiled"`.
    pub fn config(&self) -> String {
        format!("{}-{}", k_label(self.k), self.mode)
    }
}

/// Run one write-path configuration on the real host machine with real
/// threads, measuring wall-clock time.
///
/// # Panics
///
/// Panics on a lost update, as in [`run_write_point`].
pub fn run_write_host_point(
    k: usize,
    mode: WriteMode,
    procs: usize,
    total_ops: u64,
) -> WriteHostPoint {
    assert!(WRITE_KS.contains(&k), "write-path ladder covers k = 1..=4, got {k}");
    let ops = StmOps::new(0, WRITE_CELLS, procs, WRITE_CELLS, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..procs {
            let ops = ops.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                let add = ops.builtins().add;
                let cells: Vec<usize> = (0..k).collect();
                let params = vec![1 as Word; k];
                for _ in 0..per_proc {
                    match mode {
                        WriteMode::Compiled => {
                            ops.run_planned(&mut port, add, &params, &cells, |_| ());
                        }
                        WriteMode::Interpreted => {
                            let _ = ops
                                .run(
                                    &mut port,
                                    &TxSpec::new(add, &params, &cells),
                                    &mut TxOptions::new(),
                                )
                                .expect("unlimited budget cannot be exhausted");
                        }
                    }
                }
            });
        }
    });
    let nanos = start.elapsed().as_nanos() as u64;
    let mut port = machine.port(0);
    let finals = ops.snapshot(&mut port, &(0..WRITE_CELLS).collect::<Vec<_>>());
    for (c, &v) in finals.iter().enumerate() {
        let want = if c < k { actual_total } else { 0 };
        assert_eq!(v as u64, want, "host cell {c} must equal the committed count (k={k})");
    }
    WriteHostPoint {
        k,
        mode,
        procs,
        total_ops: actual_total,
        nanos,
        ops_per_sec: if nanos == 0 {
            0.0
        } else {
            actual_total as f64 * 1e9 / nanos as f64
        },
    }
}

/// One plan-cache ablation measurement: a single thread cycling through
/// `shapes` distinct 2-cell transaction shapes against the bounded
/// [`PLAN_CACHE_CAPACITY`]-entry cache.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Scenario label (`"resident"` or `"churn"`).
    pub scenario: &'static str,
    /// Distinct `(op, cells)` shapes the workload cycles through.
    pub shapes: usize,
    /// Committed transactions.
    pub total_ops: u64,
    /// Plan-cache lookups served without compiling.
    pub hits: u64,
    /// Plan-cache lookups that compiled (cold starts and evictions).
    pub misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Wall-clock nanoseconds for the whole run.
    pub nanos: u64,
    /// Transactions per second.
    pub ops_per_sec: f64,
}

/// The W2 ablation scenarios: shape counts below and above the cache
/// capacity. `resident` fits comfortably (steady-state hit rate ≈ 1);
/// `churn` cycles through 1.5× capacity, which against move-to-front LRU
/// is the adversarial pattern — every lookup misses and recompiles, so the
/// throughput gap against `resident` prices what the cache buys.
pub const CACHE_SCENARIOS: [(&str, usize); 2] =
    [("resident", 8), ("churn", PLAN_CACHE_CAPACITY + PLAN_CACHE_CAPACITY / 2)];

/// Run one plan-cache ablation scenario on the real host machine
/// (single-threaded, wall-clock; informational, never CI-gated).
///
/// Transaction `i` is an `add(+1, +1)` over cells `[s, s + 1]` with
/// `s = i mod shapes` — all k = 2, so kernel and protocol cost are
/// constant and the only variable is whether the plan is found cached.
///
/// # Panics
///
/// Panics on a lost update.
pub fn run_cache_point(scenario: &'static str, shapes: usize, total_ops: u64) -> CachePoint {
    let n_cells = shapes + 1;
    let ops = StmOps::new(0, n_cells, 1, 8, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
    let mut port = machine.port(0);
    let add = ops.builtins().add;
    let start = std::time::Instant::now();
    for i in 0..total_ops {
        let s = (i % shapes as u64) as usize;
        ops.run_planned(&mut port, add, &[1, 1], &[s, s + 1], |_| ());
    }
    let nanos = start.elapsed().as_nanos() as u64;
    // Read back in max_locs-sized chunks (the working set can exceed one
    // transaction's data-set cap).
    let all_cells: Vec<usize> = (0..n_cells).collect();
    let sum: u64 = all_cells
        .chunks(8)
        .flat_map(|chunk| ops.snapshot(&mut port, chunk))
        .map(|v| v as u64)
        .sum();
    assert_eq!(sum, 2 * total_ops, "each transaction must add 1 to exactly two cells");
    let stats = ops.plan_cache_stats();
    assert_eq!(stats.hits + stats.misses, total_ops, "every transaction consults the cache");
    CachePoint {
        scenario,
        shapes,
        total_ops,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        nanos,
        ops_per_sec: if nanos == 0 {
            0.0
        } else {
            total_ops as f64 * 1e9 / nanos as f64
        },
    }
}

/// Observer under measurement in [`run_observer_ladder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverMode {
    /// `NoopObserver` — the unobserved baseline.
    Noop,
    /// A per-thread [`FlightRecorder`](stm_core::flight::FlightRecorder)
    /// appending into a [`stm_core::DEFAULT_FLIGHT_CAPACITY`]-event ring on a shared
    /// [`OpBoard`](stm_core::flight::OpBoard) — the always-on production
    /// configuration.
    Flight,
}

impl ObserverMode {
    /// Short name used by `bench_gate` output.
    pub fn label(self) -> &'static str {
        match self {
            ObserverMode::Noop => "noop",
            ObserverMode::Flight => "flight",
        }
    }
}

/// Run the full W1 host kernel ladder (compiled plans, `k` = 1..=4, every
/// thread committing `ops_per_k` `add` transactions per tier) under the
/// given observer, returning total wall-clock nanoseconds.
///
/// This is the measurement behind the ≤5% flight-recorder overhead gate:
/// `bench_gate` runs it interleaved for both [`ObserverMode`]s and compares
/// minima, so the recorder's per-event cost is priced on exactly the
/// shortest (most allocation-free) committing path the runtime has.
///
/// # Panics
///
/// Panics on a lost update, as in [`run_write_host_point`].
pub fn run_observer_ladder(mode: ObserverMode, procs: usize, ops_per_k: u64) -> u64 {
    use stm_core::flight::{FlightRecorder, OpBoard, DEFAULT_FLIGHT_CAPACITY};
    use stm_core::stm::TxScratch;

    let mut nanos = 0u64;
    for k in WRITE_KS {
        let ops = StmOps::new(0, WRITE_CELLS, procs, WRITE_CELLS, StmConfig::default());
        let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
        let board = Arc::new(OpBoard::new(procs));
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for p in 0..procs {
                let ops = ops.clone();
                let machine = machine.clone();
                let board = Arc::clone(&board);
                s.spawn(move || {
                    let mut port = machine.port(p);
                    let add = ops.builtins().add;
                    let cells: Vec<usize> = (0..k).collect();
                    let params = vec![1 as Word; k];
                    let plan = ops.plan_for(add, &cells);
                    let mut scratch = TxScratch::new();
                    match mode {
                        ObserverMode::Noop => {
                            let mut opts = TxOptions::new();
                            for _ in 0..ops_per_k {
                                ops.stm()
                                    .run_plan_in(&mut port, &plan, &params, &mut opts, &mut scratch)
                                    .expect("unlimited budget cannot be exhausted");
                            }
                        }
                        ObserverMode::Flight => {
                            let mut rec =
                                FlightRecorder::with_board(p, DEFAULT_FLIGHT_CAPACITY, board);
                            rec.set_op(k as u32);
                            let mut opts = TxOptions::new().observer(&mut rec);
                            for _ in 0..ops_per_k {
                                ops.stm()
                                    .run_plan_in(&mut port, &plan, &params, &mut opts, &mut scratch)
                                    .expect("unlimited budget cannot be exhausted");
                            }
                        }
                    }
                });
            }
        });
        nanos += start.elapsed().as_nanos() as u64;
        let mut port = machine.port(0);
        let finals = ops.snapshot(&mut port, &(0..WRITE_CELLS).collect::<Vec<_>>());
        let want = ops_per_k * procs as u64;
        for (c, &v) in finals.iter().enumerate() {
            let expect = if c < k { want } else { 0 };
            assert_eq!(v as u64, expect, "cell {c} must equal the committed count (k={k})");
        }
    }
    nanos
}

/// Compiled-over-interpreted wall-clock speedups, one per (k, procs) pair
/// present in both modes.
pub fn compiled_speedups(points: &[WriteHostPoint]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for c in points.iter().filter(|p| p.mode == WriteMode::Compiled) {
        if let Some(i) = points
            .iter()
            .find(|p| p.mode == WriteMode::Interpreted && p.k == c.k && p.procs == c.procs)
        {
            if i.ops_per_sec > 0.0 {
                out.push((c.k, c.procs, c.ops_per_sec / i.ops_per_sec));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_modes_are_bit_identical_per_tier() {
        // The PR's hard constraint, restated as a benchmark invariant: the
        // gate relies on interpreted and compiled rows agreeing exactly.
        for k in WRITE_KS {
            for arch in [ArchKind::Bus, ArchKind::Mesh] {
                let i = run_write_point(k, arch, WriteMode::Interpreted, 4, 128, 9);
                let c = run_write_point(k, arch, WriteMode::Compiled, 4, 128, 9);
                assert_eq!(i.cycles, c.cycles, "k={k} {arch}");
                assert_eq!(i.commits, c.commits, "k={k} {arch}");
                assert_eq!(i.conflicts, c.conflicts, "k={k} {arch}");
                assert_eq!(i.helps, c.helps, "k={k} {arch}");
            }
        }
    }

    #[test]
    fn sim_points_are_deterministic() {
        let a = run_write_point(2, ArchKind::Bus, WriteMode::Compiled, 2, 128, 5);
        let b = run_write_point(2, ArchKind::Bus, WriteMode::Compiled, 2, 128, 5);
        assert_eq!(a.cycles, b.cycles, "simulated runs must be reproducible");
        assert_eq!(a.total_ops, 128);
        assert!(a.throughput > 0.0);
    }

    #[test]
    fn labels_round_trip() {
        for k in WRITE_KS {
            assert_eq!(k_from_label(k_label(k)), Some(k));
        }
        for mode in WriteMode::ALL {
            assert_eq!(WriteMode::from_label(mode.label()), Some(mode));
        }
    }

    #[test]
    fn cache_scenarios_hit_and_miss_as_designed() {
        let (resident_label, resident_shapes) = CACHE_SCENARIOS[0];
        let r = run_cache_point(resident_label, resident_shapes, 1_000);
        assert_eq!(r.misses, resident_shapes as u64, "resident: one cold compile per shape");
        assert!(r.hit_rate > 0.95, "resident hit rate {:.3}", r.hit_rate);
        let (churn_label, churn_shapes) = CACHE_SCENARIOS[1];
        let c = run_cache_point(churn_label, churn_shapes, 1_000);
        assert_eq!(c.hits, 0, "cyclic churn beyond capacity defeats LRU entirely");
    }

    #[test]
    fn observer_ladder_runs_under_both_modes() {
        for mode in [ObserverMode::Noop, ObserverMode::Flight] {
            let nanos = run_observer_ladder(mode, 2, 500);
            assert!(nanos > 0, "{}", mode.label());
        }
    }

    #[test]
    fn host_ladder_runs_and_checks() {
        let mut points = Vec::new();
        for mode in WriteMode::ALL {
            let p = run_write_host_point(1, mode, 1, 2_000);
            assert_eq!(p.total_ops, 2_000);
            assert!(p.ops_per_sec > 0.0, "{mode}");
            points.push(p);
        }
        let speedups = compiled_speedups(&points);
        assert_eq!(speedups.len(), 1);
        assert!(speedups[0].2 > 0.0);
    }
}
