//! Table printing and CSV output for sweep results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use stm_structures::Method;

use crate::workloads::DataPoint;

/// Render a sweep as an aligned throughput table: one row per processor
/// count, one column per method (the shape of the paper's figures).
pub fn render_table(title: &str, points: &[DataPoint]) -> String {
    let mut methods: Vec<Method> = Vec::new();
    let mut procs: Vec<usize> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method);
        }
        if !procs.contains(&p.procs) {
            procs.push(p.procs);
        }
    }
    procs.sort_unstable();

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# throughput: operations per million simulated cycles");
    let _ = write!(out, "{:>6}", "procs");
    for m in &methods {
        let _ = write!(out, " {:>12}", m.label());
    }
    let _ = writeln!(out);
    for &p in &procs {
        let _ = write!(out, "{p:>6}");
        for m in &methods {
            match points.iter().find(|d| d.method == *m && d.procs == p) {
                Some(d) => {
                    let _ = write!(out, " {:>12.1}", d.throughput);
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render an arbitrary grid as an aligned table: a `# title` line, a header
/// row, then one row per entry, every column right-aligned to its widest
/// cell. Rows shorter than the header render empty trailing cells. Used by
/// `stm_top`'s live view alongside the sweep-shaped [`render_table`].
pub fn render_columns(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    fn emit(out: &mut String, widths: &[usize], cell: impl Fn(usize) -> String) {
        for (i, &w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:>w$}", cell(i), w = w);
        }
        out.push('\n');
    }
    emit(&mut out, &widths, |i| headers[i].to_string());
    for row in rows {
        emit(&mut out, &widths, |i| row.get(i).cloned().unwrap_or_default());
    }
    out
}

/// Format an integer with `,` thousands separators (`1234567` →
/// `"1,234,567"`), for table cells holding million-row counts (the KV
/// service ladder reports live-cell and operation counts in the millions).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Serialize data points as CSV (`bench,arch,method,procs,total_ops,cycles,
/// throughput,commits,conflicts,helps,conflict_rate,help_rate,retry_rate`).
///
/// The protocol columns are zero for the lock baselines, which do not run
/// the STM protocol.
pub fn to_csv(points: &[DataPoint]) -> String {
    let mut out = String::from(
        "bench,arch,method,procs,total_ops,cycles,throughput,\
         commits,conflicts,helps,conflict_rate,help_rate,retry_rate\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{},{},{},{:.4},{:.4},{:.4}",
            p.bench,
            p.arch,
            p.method,
            p.procs,
            p.total_ops,
            p.cycles,
            p.throughput,
            p.commits,
            p.conflicts,
            p.helps,
            p.conflict_rate(),
            p.help_rate(),
            p.retry_rate()
        );
    }
    out
}

/// Write data points to a CSV file, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_csv(path: &Path, points: &[DataPoint]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_csv(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{ArchKind, Bench};

    fn point(method: Method, procs: usize, thr: f64) -> DataPoint {
        DataPoint {
            bench: Bench::Counting,
            arch: ArchKind::Bus,
            method,
            procs,
            total_ops: 100,
            cycles: 1000,
            throughput: thr,
            commits: 100,
            conflicts: 25,
            helps: 5,
        }
    }

    #[test]
    fn table_includes_all_methods_and_procs() {
        let pts = vec![
            point(Method::Stm, 1, 10.0),
            point(Method::Stm, 2, 20.0),
            point(Method::Mcs, 1, 11.0),
            point(Method::Mcs, 2, 21.0),
        ];
        let t = render_table("demo", &pts);
        assert!(t.contains("STM"));
        assert!(t.contains("MCS-lock"));
        assert!(t.contains("10.0"));
        assert!(t.contains("21.0"));
        assert_eq!(t.lines().count(), 5); // title + metric + header + 2 rows
    }

    #[test]
    fn missing_cells_render_dash() {
        let pts = vec![point(Method::Stm, 1, 10.0), point(Method::Mcs, 2, 21.0)];
        let t = render_table("demo", &pts);
        assert!(t.contains('-'));
    }

    #[test]
    fn generic_columns_align_and_pad() {
        let rows = vec![
            vec!["hot-add".to_string(), "123456".to_string(), "9.5".to_string()],
            vec!["scan".to_string(), "7".to_string()],
        ];
        let t = render_columns("live", &["op", "commits", "p99"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "# live");
        // Every body line is as wide as the header line (aligned grid).
        assert!(lines[2].len() == lines[1].len() && lines[3].len() == lines[1].len());
        assert!(lines[2].contains("hot-add") && lines[2].contains("123456"));
    }

    #[test]
    fn thousands_groups_digits() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(7), "7");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(54321), "54,321");
        assert_eq!(thousands(1_234_567), "1,234,567");
        assert_eq!(thousands(1_000_000_000), "1,000,000,000");
        assert_eq!(thousands(u64::MAX), "18,446,744,073,709,551,615");
    }

    #[test]
    fn csv_roundtrip_fields() {
        let pts = vec![point(Method::Herlihy, 4, 12.5)];
        let csv = to_csv(&pts);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "bench,arch,method,procs,total_ops,cycles,throughput,\
             commits,conflicts,helps,conflict_rate,help_rate,retry_rate"
        );
        // conflict_rate 25/125, help_rate 5/125, retry_rate 25/100.
        assert_eq!(
            lines.next().unwrap(),
            "counting,bus,Herlihy,4,100,1000,12.500,100,25,5,0.2000,0.0400,0.2500"
        );
    }
}
