//! Table printing and CSV output for sweep results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use stm_structures::Method;

use crate::workloads::DataPoint;

/// Render a sweep as an aligned throughput table: one row per processor
/// count, one column per method (the shape of the paper's figures).
pub fn render_table(title: &str, points: &[DataPoint]) -> String {
    let mut methods: Vec<Method> = Vec::new();
    let mut procs: Vec<usize> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method);
        }
        if !procs.contains(&p.procs) {
            procs.push(p.procs);
        }
    }
    procs.sort_unstable();

    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# throughput: operations per million simulated cycles");
    let _ = write!(out, "{:>6}", "procs");
    for m in &methods {
        let _ = write!(out, " {:>12}", m.label());
    }
    let _ = writeln!(out);
    for &p in &procs {
        let _ = write!(out, "{p:>6}");
        for m in &methods {
            match points.iter().find(|d| d.method == *m && d.procs == p) {
                Some(d) => {
                    let _ = write!(out, " {:>12.1}", d.throughput);
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Serialize data points as CSV (`bench,arch,method,procs,total_ops,cycles,
/// throughput,commits,conflicts,helps,conflict_rate,help_rate,retry_rate`).
///
/// The protocol columns are zero for the lock baselines, which do not run
/// the STM protocol.
pub fn to_csv(points: &[DataPoint]) -> String {
    let mut out = String::from(
        "bench,arch,method,procs,total_ops,cycles,throughput,\
         commits,conflicts,helps,conflict_rate,help_rate,retry_rate\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{},{},{},{:.4},{:.4},{:.4}",
            p.bench,
            p.arch,
            p.method,
            p.procs,
            p.total_ops,
            p.cycles,
            p.throughput,
            p.commits,
            p.conflicts,
            p.helps,
            p.conflict_rate(),
            p.help_rate(),
            p.retry_rate()
        );
    }
    out
}

/// Write data points to a CSV file, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating directories or writing the file.
pub fn write_csv(path: &Path, points: &[DataPoint]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_csv(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{ArchKind, Bench};

    fn point(method: Method, procs: usize, thr: f64) -> DataPoint {
        DataPoint {
            bench: Bench::Counting,
            arch: ArchKind::Bus,
            method,
            procs,
            total_ops: 100,
            cycles: 1000,
            throughput: thr,
            commits: 100,
            conflicts: 25,
            helps: 5,
        }
    }

    #[test]
    fn table_includes_all_methods_and_procs() {
        let pts = vec![
            point(Method::Stm, 1, 10.0),
            point(Method::Stm, 2, 20.0),
            point(Method::Mcs, 1, 11.0),
            point(Method::Mcs, 2, 21.0),
        ];
        let t = render_table("demo", &pts);
        assert!(t.contains("STM"));
        assert!(t.contains("MCS-lock"));
        assert!(t.contains("10.0"));
        assert!(t.contains("21.0"));
        assert_eq!(t.lines().count(), 5); // title + metric + header + 2 rows
    }

    #[test]
    fn missing_cells_render_dash() {
        let pts = vec![point(Method::Stm, 1, 10.0), point(Method::Mcs, 2, 21.0)];
        let t = render_table("demo", &pts);
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let pts = vec![point(Method::Herlihy, 4, 12.5)];
        let csv = to_csv(&pts);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "bench,arch,method,procs,total_ops,cycles,throughput,\
             commits,conflicts,helps,conflict_rate,help_rate,retry_rate"
        );
        // conflict_rate 25/125, help_rate 5/125, retry_rate 25/100.
        assert_eq!(
            lines.next().unwrap(),
            "counting,bus,Herlihy,4,100,1000,12.500,100,25,5,0.2000,0.0400,0.2500"
        );
    }
}
