//! B1 producer–consumer: blocking `retry` vs spin-retry idle cost.
//!
//! The blocking layer's claim is simple: a consumer waiting on an empty
//! queue should cost **nothing** while it waits. This module measures that
//! claim in both worlds:
//!
//! * **Simulated** ([`run_blocking_point`]): one producer paces items onto a
//!   [`BoundedQueue`] with a fixed
//!   inter-push delay while one consumer drains it, either by parking
//!   ([`BlockMode::Blocking`], the dynamic layer's `retry`) or by hammering
//!   `try_pop` ([`BlockMode::Spin`], the pre-blocking idiom). The headline
//!   column is the consumer's memory-operation count: a parked processor
//!   takes zero scheduler steps, so in blocking mode it is proportional to
//!   the items actually popped, while the spinner burns an operation stream
//!   the whole time the queue is empty. Deterministic — the same
//!   `(arch, mode, items, seed)` tuple always reproduces the same cycle
//!   count, like every other simulated family.
//! * **Host** ([`run_blocking_host_point`]): the same shape on real
//!   threads, measuring the consumer thread's CPU time (via
//!   `/proc/thread-self/stat`, Linux only) across a wait window in which
//!   the producer deliberately sits on its hands. Parking must show
//!   near-zero CPU where the spinner shows roughly the whole window.
//!   Wall-clock, so informational only — never CI-gated.
//!
//! Park/wake events stay out of the protocol step set, so enabling nothing
//! (the default non-blocking configuration) leaves every other family's
//! schedule bit-identical — the `bench_gate` binary checks exactly that
//! against the committed baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stm_core::dynamic::DynamicStm;
use stm_core::stm::{StmConfig, TxOptions};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;
use stm_sim::trace::{TraceAnalysis, TraceKind};
use stm_structures::blocking::BoundedQueue;

use crate::workloads::{ArchKind, DynModel};

/// Simulated processors: one producer, one consumer.
pub const BLOCKING_PROCS: usize = 2;

/// Queue capacity under measurement.
pub const BLOCKING_CAPACITY: usize = 4;

/// Producer inter-push delay in simulated cycles — long enough that the
/// consumer drains the queue and spends most of the run genuinely waiting
/// (a pop transaction itself costs on the order of tens of operations, so
/// the gap must dwarf that for the idle window to dominate).
pub const BLOCKING_GAP: u64 = 2_000;

/// How the consumer waits on an empty queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockMode {
    /// Park on `retry`: zero scheduler steps until a push changes a watched
    /// cell.
    Blocking,
    /// Hammer `try_pop` in a loop: the pre-blocking idiom this family
    /// exists to retire.
    Spin,
}

impl BlockMode {
    /// Both modes.
    pub const ALL: [BlockMode; 2] = [BlockMode::Blocking, BlockMode::Spin];

    /// Short name used in tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            BlockMode::Blocking => "blocking",
            BlockMode::Spin => "spin",
        }
    }

    /// Inverse of [`BlockMode::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for BlockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured producer–consumer configuration (simulated machine).
#[derive(Debug, Clone)]
pub struct BlockingPoint {
    /// Machine.
    pub arch: ArchKind,
    /// How the consumer waits.
    pub mode: BlockMode,
    /// Simulated processors (always [`BLOCKING_PROCS`]; recorded for replay).
    pub procs: usize,
    /// Items pushed through the queue.
    pub items: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Items through the queue per million simulated cycles.
    pub throughput: f64,
    /// Memory operations the consumer issued — the idle-cost headline. The
    /// spinner's count grows with the wait; the parker's only with the pops.
    pub consumer_ops: u64,
    /// Times the consumer parked.
    pub parks: u64,
    /// Times a producer commit woke the parked consumer.
    pub wakeups: u64,
}

/// Run one simulated producer–consumer configuration.
///
/// The producer delays [`BLOCKING_GAP`] cycles before each push, so the
/// consumer spends most of the run facing an empty queue; how it spends
/// that time is the measurement.
///
/// # Panics
///
/// Panics if any item is lost, duplicated, or reordered (the popped sum and
/// the final head/tail indices are checked), if the run leaks an ownership,
/// or if blocking mode never actually parked — a point that did not
/// exercise the wait path must never be emitted.
pub fn run_blocking_point(arch: ArchKind, mode: BlockMode, items: u64, seed: u64) -> BlockingPoint {
    let cells = BoundedQueue::cells_needed(BLOCKING_CAPACITY);
    let sim = StmSim::new(BLOCKING_PROCS, cells, cells, StmConfig::default())
        .seed(seed)
        .jitter(3)
        .trace(1 << 21);
    let queue = BoundedQueue::new(0, BLOCKING_CAPACITY);
    let popped_sum = Arc::new(AtomicU64::new(0));
    let report = sim.run(DynModel(arch.model(BLOCKING_PROCS)), |p, ops| {
        let popped_sum = Arc::clone(&popped_sum);
        move |mut port: SimPort| {
            use stm_core::machine::MemPort;
            let stm = DynamicStm::from_ops(ops);
            if p == 0 {
                // Producer: paced pushes. The queue is empty at start and
                // far slower to fill than the consumer is to drain, so the
                // capacity condition never parks the producer — every wait
                // in the run is the consumer's.
                for i in 0..items {
                    port.delay(BLOCKING_GAP);
                    queue
                        .push(&stm, &mut port, i as u32 + 1, &mut TxOptions::new())
                        .expect("unlimited budget");
                }
            } else {
                let mut sum = 0u64;
                match mode {
                    BlockMode::Blocking => {
                        for _ in 0..items {
                            let v = queue
                                .pop(&stm, &mut port, &mut TxOptions::new())
                                .expect("unlimited budget");
                            sum += u64::from(v);
                        }
                    }
                    BlockMode::Spin => {
                        let mut got = 0u64;
                        while got < items {
                            if let Some(v) = queue.try_pop(&stm, &mut port) {
                                sum += u64::from(v);
                                got += 1;
                            }
                        }
                    }
                }
                popped_sum.store(sum, Ordering::Relaxed);
            }
        }
    });

    // Correctness gates: FIFO conservation and protocol quiescence.
    assert_eq!(
        popped_sum.load(Ordering::Relaxed),
        items * (items + 1) / 2,
        "{arch}/{mode}: lost or duplicated items"
    );
    assert_eq!(u64::from(sim.cell_value(&report, 0)), items, "{arch}/{mode}: head index");
    assert_eq!(u64::from(sim.cell_value(&report, 1)), items, "{arch}/{mode}: tail index");
    assert!(sim.leaked_ownerships(&report).is_empty(), "{arch}/{mode}: leaked ownership");
    assert_eq!(report.trace_dropped, 0, "{arch}/{mode}: trace overflow skews consumer_ops");

    let analysis = TraceAnalysis::of(&report.trace, BLOCKING_PROCS, 8);
    let consumer_ops = analysis.ops_per_proc[1];
    let parks = report
        .trace
        .iter()
        .filter(|e| e.proc == 1 && matches!(e.kind, TraceKind::Park(_)))
        .count() as u64;
    let wakeups = report
        .trace
        .iter()
        .filter(|e| e.proc == 1 && matches!(e.kind, TraceKind::Wake(_)))
        .count() as u64;
    if mode == BlockMode::Blocking {
        assert!(parks > 0, "{arch}: blocking consumer never parked; gap too short");
    }

    let cycles = report.cycles;
    BlockingPoint {
        arch,
        mode,
        procs: BLOCKING_PROCS,
        items,
        seed,
        cycles,
        throughput: if cycles == 0 { 0.0 } else { items as f64 * 1_000_000.0 / cycles as f64 },
        consumer_ops,
        parks,
        wakeups,
    }
}

/// One measured host wait window.
#[derive(Debug, Clone)]
pub struct BlockingHostPoint {
    /// How the consumer waits.
    pub mode: BlockMode,
    /// Wall-clock nanoseconds the consumer spent waiting for the item.
    pub wall_nanos: u64,
    /// CPU time (utime + stime, kernel clock ticks) the consumer **thread**
    /// burned across that window. `None` off Linux, where
    /// `/proc/thread-self/stat` does not exist.
    pub cpu_ticks: Option<u64>,
}

/// CPU time (utime + stime, clock ticks) of the calling thread, from
/// `/proc/thread-self/stat`. `None` where that file is unavailable.
///
/// Per-thread, not per-process, so concurrent test threads in the same
/// process do not pollute the measurement.
pub fn thread_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // comm may contain spaces; fields resume after the last ')'.
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the state field: utime is stat field 14, stime field 15.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Run one host wait window: the consumer waits on an empty queue while the
/// producer sleeps `wait` before pushing the single item.
///
/// The interesting number is [`BlockingHostPoint::cpu_ticks`]: parking
/// should burn near-zero CPU across the window, spinning roughly all of it.
/// Wall-clock and scheduler-dependent — informational only, never CI-gated.
pub fn run_blocking_host_point(mode: BlockMode, wait: std::time::Duration) -> BlockingHostPoint {
    use stm_core::machine::host::HostMachine;

    let stm = DynamicStm::new(0, BoundedQueue::cells_needed(1), 2, StmConfig::default());
    let machine = HostMachine::new(stm.stm().layout().words_needed(), 2);
    let queue = BoundedQueue::new(0, 1);
    {
        let mut port = machine.port(0);
        queue.init(&stm, &mut port);
    }
    let mut got = 0;
    let mut wall_nanos = 0;
    let mut cpu_ticks = None;
    std::thread::scope(|s| {
        {
            let (stm, machine) = (stm.clone(), machine.clone());
            s.spawn(move || {
                let mut port = machine.port(1);
                std::thread::sleep(wait);
                queue.push(&stm, &mut port, 42, &mut TxOptions::new()).expect("unlimited budget");
            });
        }
        let mut port = machine.port(0);
        let t0 = std::time::Instant::now();
        let c0 = thread_cpu_ticks();
        got = match mode {
            BlockMode::Blocking => {
                queue.pop(&stm, &mut port, &mut TxOptions::new()).expect("unlimited budget")
            }
            BlockMode::Spin => loop {
                if let Some(v) = queue.try_pop(&stm, &mut port) {
                    break v;
                }
            },
        };
        wall_nanos = t0.elapsed().as_nanos() as u64;
        cpu_ticks = c0.zip(thread_cpu_ticks()).map(|(a, b)| b - a);
    });
    assert_eq!(got, 42, "{mode}: wrong item through the queue");
    BlockingHostPoint { mode, wall_nanos, cpu_ticks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parking_consumer_is_orders_cheaper_than_spinning() {
        // The family's reason to exist: on both machines, the spinner's
        // idle stream must dwarf the parker's pop-proportional cost.
        for arch in [ArchKind::Bus, ArchKind::Mesh] {
            let blocking = run_blocking_point(arch, BlockMode::Blocking, 24, 7);
            let spin = run_blocking_point(arch, BlockMode::Spin, 24, 7);
            assert!(
                spin.consumer_ops >= 4 * blocking.consumer_ops,
                "{arch}: spin {} ops vs blocking {} ops — parking is not paying off",
                spin.consumer_ops,
                blocking.consumer_ops
            );
            assert!(blocking.parks > 0, "{arch}: never parked");
            assert!(blocking.wakeups >= blocking.parks, "{arch}: parks without wakeups");
            assert_eq!(spin.parks, 0, "{arch}: the spinner must never park");
        }
    }

    #[test]
    fn blocking_points_are_deterministic() {
        let a = run_blocking_point(ArchKind::Bus, BlockMode::Blocking, 16, 3);
        let b = run_blocking_point(ArchKind::Bus, BlockMode::Blocking, 16, 3);
        assert_eq!(a.cycles, b.cycles, "simulated runs must be reproducible");
        assert_eq!(a.consumer_ops, b.consumer_ops);
        assert_eq!((a.parks, a.wakeups), (b.parks, b.wakeups));
        assert!(a.throughput > 0.0);
    }

    #[test]
    fn labels_round_trip() {
        for mode in BlockMode::ALL {
            assert_eq!(BlockMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(BlockMode::from_label("nonsense"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn host_parking_burns_less_cpu_than_spinning() {
        let wait = std::time::Duration::from_millis(200);
        let blocking = run_blocking_host_point(BlockMode::Blocking, wait);
        let spin = run_blocking_host_point(BlockMode::Spin, wait);
        let (Some(b), Some(s)) = (blocking.cpu_ticks, spin.cpu_ticks) else {
            return; // /proc hidden (container oddity): nothing to compare
        };
        // The spinner burns CPU the whole window (~20 ticks at 100 Hz); the
        // parker sleeps through it. Margins are generous — CI is noisy.
        assert!(s >= 5, "spin burned only {s} ticks; window too short to judge");
        assert!(
            b <= s / 3,
            "parking burned {b} CPU ticks vs the spinner's {s} — not near-zero idle CPU"
        );
    }
}
