//! # stm-bench — the figure-regeneration harness
//!
//! For every figure of the Shavit–Touitou evaluation this crate runs the
//! corresponding workload on the simulated machine, sweeping processor
//! counts and methods, and emits the paper's throughput-vs-processors series
//! as printed tables and CSV files.
//!
//! * [`workloads`] — one driver per benchmark (counting, queue, resource
//!   allocation, priority queue), returning a [`workloads::DataPoint`] per
//!   (architecture, method, processor-count) configuration.
//! * [`read_heavy`] — snapshot-dominated and 90/10 read/write workloads
//!   measuring the invisible-read fast path (classic vs fast-read modes on
//!   the simulator, plus a wall-clock host ladder for the cache-aligned
//!   layout).
//! * [`write_path`] — the compiled-plan/MWCAS-kernel ladder: committing
//!   `add` transactions over k = 1..4 cells, interpreted (per-call spec
//!   build) vs compiled (cached allocation-free plans), on the simulator
//!   (deterministic, CI-gated, bit-identity witness) and as a wall-clock
//!   host ladder (the compiled path's speedup claim).
//! * [`durable`] — the durable-commit latency ladder: the contended write
//!   path with write-ahead journaling as the variable, from the compiled-out
//!   no-journal baseline through a simulated flush-cost ladder
//!   (deterministic) to an fsync'd file journal on the host (wall-clock,
//!   informational). Every simulated point re-verifies recovery equivalence
//!   before it is emitted.
//! * [`blocking`] — the B1 producer–consumer idle-cost comparison: a
//!   consumer draining a paced bounded queue by parking (`retry`) vs by
//!   spin-retrying `try_pop`, on the simulator (deterministic; the parked
//!   consumer takes zero scheduler steps) and on host threads (per-thread
//!   CPU time across the wait window; wall-clock, informational).
//! * [`kv`] — the million-key KV service over the growable sharded cell
//!   arena: Zipfian get/put/delete traffic against an arena-backed hash map
//!   with a live population in the millions of cells, swept over a
//!   threads × skew × read-ratio ladder (wall-clock throughput is
//!   informational; the `bench_gate` binary pins the workload's functional
//!   invariants — the live-cell floor, arena accounting, and a
//!   duplicate-free scan).
//! * [`fairness`] — the F1 starvation ablation: a big-k transaction under a
//!   small-tx storm, with the escalation ladder as the variable. Reports
//!   max-losses-before-commit and the big transaction's p99 tail latency;
//!   deterministic, CI-gated (an escalation row must respect the N+M loss
//!   bound).
//! * [`runner`] — parameter sweeps and the summary/crossover analysis.
//! * [`table`] — aligned table printing and CSV output.
//! * [`report`] — the machine-readable `BENCH_stm.json` report (throughput
//!   plus per-point conflict/help/retry rates). The read-heavy section and
//!   the write-path rows of the points section are the CI regression
//!   baseline checked by the `bench_gate` binary.
//!
//! The `figures` binary (`cargo run -p stm-bench --release --bin figures`)
//! regenerates every experiment; see `DESIGN.md` §6 for the experiment
//! index and `EXPERIMENTS.md` for recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocking;
pub mod durable;
pub mod fairness;
pub mod kv;
pub mod read_heavy;
pub mod report;
pub mod runner;
pub mod table;
pub mod workloads;
pub mod write_path;
