//! Regenerate the figures and tables of the Shavit–Touitou evaluation.
//!
//! ```text
//! cargo run -p stm-bench --release --bin figures -- [EXPERIMENTS] [OPTIONS]
//!
//! EXPERIMENTS (any subset; default: all)
//!   counting-bus counting-mesh queue-bus queue-mesh
//!   resource-bus resource-mesh prio-bus prio-mesh
//!   summary ablate-helping ablate-backoff ablate-arch
//!   read-heavy read-heavy-host write-path write-path-host plan-cache
//!   durable durable-host fairness blocking blocking-host kv
//!
//! OPTIONS
//!   --ops N        total operations per data point (default 2048)
//!   --quick        sweep P in {1,2,4,8} instead of the paper's {1..64}
//!   --procs LIST   comma-separated processor counts (overrides --quick)
//!   --seed S       schedule seed (default 0x5EED)
//!   --out DIR      CSV output directory (default results/)
//! ```
//!
//! Each experiment prints the paper-shaped throughput table and writes a CSV
//! under the output directory. See DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured comparisons.

use std::path::PathBuf;

use stm_bench::blocking::{run_blocking_host_point, run_blocking_point, BlockMode};
use stm_bench::durable::{
    run_durable_host_point, run_durable_point, DURABLE_FLUSH_COSTS, DURABLE_PROCS,
};
use stm_bench::fairness::{run_fairness_point, FairMode, FairnessPoint, FAIR_BIG_K};
use stm_bench::kv::{run_kv_ladder, KvPoint, KV_BUCKETS, KV_KEYS, KV_OPS};
use stm_bench::read_heavy::{
    run_host_point, run_read_point, HostPoint, ReadBench, ReadMode, ReadPoint, HOST_CONFIGS,
};
use stm_bench::report::write_bench_json;
use stm_bench::runner::{summarize, Sweep, PAPER_PROCS, QUICK_PROCS};
use stm_bench::table::{render_table, thousands, write_csv};
use stm_bench::workloads::{ArchKind, Bench, DataPoint};
use stm_bench::write_path::{
    compiled_speedups, k_label, run_cache_point, run_write_host_point, run_write_point,
    WriteHostPoint, WriteMode, WritePoint, CACHE_SCENARIOS, WRITE_KS, WRITE_PROCS,
};
use stm_core::stm::BackoffPolicy;
use stm_structures::Method;

#[derive(Debug, Clone)]
struct Options {
    experiments: Vec<String>,
    ops: u64,
    procs: Vec<usize>,
    seed: u64,
    out: PathBuf,
    quick: bool,
}

const ALL_EXPERIMENTS: [&str; 23] = [
    "counting-bus",
    "counting-mesh",
    "queue-bus",
    "queue-mesh",
    "resource-bus",
    "resource-mesh",
    "prio-bus",
    "prio-mesh",
    "summary",
    "ablate-helping",
    "ablate-backoff",
    "ablate-arch",
    "read-heavy",
    "read-heavy-host",
    "write-path",
    "write-path-host",
    "plan-cache",
    "durable",
    "durable-host",
    "fairness",
    "blocking",
    "blocking-host",
    "kv",
];

fn parse_args() -> Options {
    let mut opts = Options {
        experiments: Vec::new(),
        ops: 2048,
        procs: PAPER_PROCS.to_vec(),
        seed: 0x5EED,
        out: PathBuf::from("results"),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => opts.ops = expect_val(&mut args, "--ops").parse().expect("--ops N"),
            "--seed" => opts.seed = expect_val(&mut args, "--seed").parse().expect("--seed S"),
            "--quick" => {
                opts.procs = QUICK_PROCS.to_vec();
                opts.quick = true;
            }
            "--procs" => {
                opts.procs = expect_val(&mut args, "--procs")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--procs LIST"))
                    .collect()
            }
            "--out" => opts.out = PathBuf::from(expect_val(&mut args, "--out")),
            "--help" | "-h" => {
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                eprintln!("options: --ops N --quick --procs LIST --seed S --out DIR");
                std::process::exit(0);
            }
            name => {
                if ALL_EXPERIMENTS.contains(&name) {
                    opts.experiments.push(name.to_owned());
                } else {
                    eprintln!("unknown experiment or option: {name}");
                    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                    std::process::exit(2);
                }
            }
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments = ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned()).collect();
    }
    opts
}

fn expect_val(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_args();
    let mut all_points: Vec<DataPoint> = Vec::new();
    let mut write_points: Vec<WritePoint> = Vec::new();
    let mut read_points: Vec<ReadPoint> = Vec::new();
    let mut fairness_points: Vec<FairnessPoint> = Vec::new();
    let mut kv_points: Vec<KvPoint> = Vec::new();
    let mut host_points: Vec<HostPoint> = Vec::new();
    let mut write_host_points: Vec<WriteHostPoint> = Vec::new();

    let mut figure_points: Vec<DataPoint> = Vec::new();

    for exp in &opts.experiments {
        match exp.as_str() {
            "summary" => {} // handled after the sweeps
            "ablate-helping" => all_points.extend(run_ablate_helping(&opts)),
            "ablate-backoff" => run_ablate_backoff(&opts),
            "ablate-arch" => all_points.extend(run_ablate_arch(&opts)),
            "read-heavy" => read_points.extend(run_read_heavy(&opts)),
            "read-heavy-host" => host_points.extend(run_read_heavy_host(&opts)),
            "write-path" => write_points.extend(run_write_path(&opts)),
            "write-path-host" => write_host_points.extend(run_write_path_host(&opts)),
            "plan-cache" => run_plan_cache(&opts),
            "durable" => run_durable(&opts),
            "durable-host" => run_durable_host(&opts),
            "fairness" => fairness_points.extend(run_fairness(&opts)),
            "kv" => kv_points.extend(run_kv(&opts)),
            "blocking" => run_blocking(&opts),
            "blocking-host" => run_blocking_host(&opts),
            name => {
                let (bench, arch) = parse_figure(name);
                let points = run_figure(&opts, name, bench, arch);
                figure_points.extend(points.iter().cloned());
                all_points.extend(points);
            }
        }
    }

    if opts.experiments.iter().any(|e| e == "summary") {
        run_summary(&figure_points);
    }

    if !all_points.is_empty()
        || !write_points.is_empty()
        || !read_points.is_empty()
        || !fairness_points.is_empty()
        || !kv_points.is_empty()
        || !host_points.is_empty()
        || !write_host_points.is_empty()
    {
        let path = opts.out.join("BENCH_stm.json");
        write_bench_json(
            &path,
            &all_points,
            &write_points,
            &read_points,
            &fairness_points,
            &kv_points,
            &host_points,
            &write_host_points,
        )
        .expect("write BENCH_stm.json");
        eprintln!(
            "[figures] wrote {} ({} points, {} write-path, {} read-heavy, {} fairness, {} kv, \
             {} host)",
            path.display(),
            all_points.len() + write_points.len(),
            write_points.len(),
            read_points.len(),
            fairness_points.len(),
            kv_points.len(),
            host_points.len() + write_host_points.len()
        );
    }
}

fn parse_figure(name: &str) -> (Bench, ArchKind) {
    let (b, a) = name.split_once('-').expect("figure name is bench-arch");
    let bench = match b {
        "counting" => Bench::Counting,
        "queue" => Bench::Queue,
        "resource" => Bench::Resource,
        "prio" => Bench::Prio,
        _ => unreachable!("validated in parse_args"),
    };
    let arch = match a {
        "bus" => ArchKind::Bus,
        "mesh" => ArchKind::Mesh,
        _ => unreachable!("validated in parse_args"),
    };
    (bench, arch)
}

fn figure_id(bench: Bench, arch: ArchKind) -> &'static str {
    match (bench, arch) {
        (Bench::Counting, ArchKind::Bus) => "F1",
        (Bench::Counting, ArchKind::Mesh) => "F2",
        (Bench::Queue, ArchKind::Bus) => "F3",
        (Bench::Queue, ArchKind::Mesh) => "F4",
        (Bench::Resource, ArchKind::Bus) => "F5",
        (Bench::Resource, ArchKind::Mesh) => "F6",
        (Bench::Prio, ArchKind::Bus) => "F7",
        (Bench::Prio, ArchKind::Mesh) => "F8",
        _ => "F?",
    }
}

fn run_figure(opts: &Options, name: &str, bench: Bench, arch: ArchKind) -> Vec<DataPoint> {
    let mut sweep = Sweep::paper(bench, arch, opts.ops);
    sweep.procs = opts.procs.clone();
    sweep.seed = opts.seed;
    eprintln!("[figures] running {name} ({} points)...", sweep.methods.len() * sweep.procs.len());
    let points = sweep.run();
    let title = format!(
        "{} — {} benchmark on the {} machine ({} ops/point, seed {:#x})",
        figure_id(bench, arch),
        bench,
        arch,
        opts.ops,
        opts.seed
    );
    println!("{}", render_table(&title, &points));
    let path = opts.out.join(format!("{name}.csv"));
    write_csv(&path, &points).expect("write CSV");
    eprintln!("[figures] wrote {}", path.display());
    points
}

fn run_summary(points: &[DataPoint]) {
    if points.is_empty() {
        eprintln!("[figures] summary requested without figure sweeps; run figures together with it");
        return;
    }
    println!("# T1 — per-figure curve summary (peak and final throughput, ops/Mcycle)");
    println!(
        "{:>4} {:>14} {:>12} {:>12} {:>8} {:>12}",
        "fig", "bench/arch", "method", "peak-thr", "peak-P", "final-thr"
    );
    let mut combos: Vec<(Bench, ArchKind)> = Vec::new();
    for p in points {
        if !combos.contains(&(p.bench, p.arch)) {
            combos.push((p.bench, p.arch));
        }
    }
    for (bench, arch) in combos {
        let subset: Vec<DataPoint> =
            points.iter().filter(|p| p.bench == bench && p.arch == arch).cloned().collect();
        for s in summarize(&subset) {
            println!(
                "{:>4} {:>14} {:>12} {:>12.1} {:>8} {:>12.1}",
                figure_id(bench, arch),
                format!("{bench}/{arch}"),
                s.method.label(),
                s.peak_throughput,
                s.peak_procs,
                s.final_throughput
            );
        }
    }
    println!();
}

/// A1: the paper's core mechanism — helping on vs off, on the two workloads
/// where conflicts matter most.
fn run_ablate_helping(opts: &Options) -> Vec<DataPoint> {
    let mut all = Vec::new();
    for (bench, name) in
        [(Bench::Counting, "ablate-helping-counting"), (Bench::Resource, "ablate-helping-resource")]
    {
        let sweep = Sweep {
            bench,
            arch: ArchKind::Bus,
            methods: vec![Method::Stm, Method::StmNoHelp],
            procs: opts.procs.clone(),
            total_ops: opts.ops,
            seed: opts.seed,
        };
        eprintln!("[figures] running {name}...");
        let points = sweep.run();
        let title = format!("A1 — STM helping ablation, {bench} benchmark on the bus machine");
        println!("{}", render_table(&title, &points));
        write_csv(&opts.out.join(format!("{name}.csv")), &points).expect("write CSV");
        all.extend(points);
    }
    all
}

/// A3: architecture ablation — the STM's resource-allocation curve on the
/// plain mesh vs the coherently-caching mesh (Alewife-style).
fn run_ablate_arch(opts: &Options) -> Vec<DataPoint> {
    let mut all = Vec::new();
    for arch in [ArchKind::Mesh, ArchKind::MeshCached] {
        let sweep = Sweep {
            bench: Bench::Resource,
            arch,
            methods: vec![Method::Stm, Method::Mcs],
            procs: opts.procs.clone(),
            total_ops: opts.ops,
            seed: opts.seed,
        };
        eprintln!("[figures] running ablate-arch ({arch})...");
        let points = sweep.run();
        let title = format!("A3 — architecture ablation, resource benchmark on the {arch} machine");
        println!("{}", render_table(&title, &points));
        write_csv(&opts.out.join(format!("ablate-arch-{arch}.csv")), &points).expect("write CSV");
        all.extend(points);
    }
    all
}

/// R1: the read-heavy fast-path sweep — snapshot-dominated and 90/10
/// read/write workloads, classic (fast path off) vs fast-read, on the bus
/// and mesh machines. Deterministic; the rows CI gates against the
/// committed `BENCH_stm.json` baseline.
fn run_read_heavy(opts: &Options) -> Vec<ReadPoint> {
    let mut all = Vec::new();
    let mut csv = String::from(
        "bench,arch,config,procs,total_ops,seed,cycles,throughput,commits,conflicts,helps\n",
    );
    println!("# R1 — read-heavy fast-path sweep ({} ops/point, seed {:#x})", opts.ops, opts.seed);
    println!("# throughput: operations per million simulated cycles");
    for bench in ReadBench::ALL {
        for arch in [ArchKind::Bus, ArchKind::Mesh] {
            print!("{:>14} {:>5} {:>6}", bench.label(), arch.label(), "procs:");
            println!();
            for mode in ReadMode::ALL {
                print!("{:>27}", mode.label());
                for &procs in &opts.procs {
                    let p = run_read_point(bench, arch, mode, procs, opts.ops, opts.seed);
                    print!(" {:>10.1}", p.throughput);
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{},{:.3},{},{},{}\n",
                        p.bench, p.arch, p.mode, p.procs, p.total_ops, p.seed, p.cycles,
                        p.throughput, p.commits, p.conflicts, p.helps
                    ));
                    all.push(p);
                }
                println!();
            }
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("read-heavy.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("read-heavy.csv").display());
    all
}

/// R2: the host-machine ladder — the snapshot-dominated workload on real
/// threads, from the pre-fast-path protocol (`classic-dense`) through the
/// fast path (`fast-dense`) to the cache-aligned layout (`fast-padded`).
/// Wall-clock, so informational only: recorded in `BENCH_stm.json` but
/// never CI-gated.
fn run_read_heavy_host(opts: &Options) -> Vec<HostPoint> {
    let host_procs: Vec<usize> =
        opts.procs.iter().copied().filter(|&p| p <= num_cpus_cap()).collect();
    // Host ops need to be large enough to outlast thread startup.
    let ops = (opts.ops * 64).max(50_000);
    let mut all = Vec::new();
    let mut csv = String::from("workload,config,procs,total_ops,nanos,ops_per_sec\n");
    println!("# R2 — host snapshot ladder ({ops} ops/point, wall-clock, informational)");
    println!("{:>6} {:>15} {:>14} {:>14}", "procs", "config", "nanos", "ops/sec");
    for &procs in &host_procs {
        for (label, fast, padded) in HOST_CONFIGS {
            let p = run_host_point(label, fast, padded, procs, ops);
            println!("{:>6} {:>15} {:>14} {:>14.0}", p.procs, p.config, p.nanos, p.ops_per_sec);
            csv.push_str(&format!(
                "snapshot,{},{},{},{},{:.1}\n",
                p.config, p.procs, p.total_ops, p.nanos, p.ops_per_sec
            ));
            all.push(p);
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("read-heavy-host.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("read-heavy-host.csv").display());
    all
}

/// W1: the write-path kernel ladder — committing `add` transactions over
/// k = 1..4 cells (k = 1, 2, 4 hit the monomorphized MWCAS kernels, k = 3
/// the general sweep), interpreted vs compiled, on the bus and mesh
/// machines at the pinned processor counts. Deterministic; the rows CI
/// gates against the committed `BENCH_stm.json` baseline, where the two
/// modes must also agree cycle-for-cycle (bit-identity witness).
fn run_write_path(opts: &Options) -> Vec<WritePoint> {
    let mut all = Vec::new();
    let mut csv = String::from(
        "kernel,arch,mode,procs,total_ops,seed,cycles,throughput,commits,conflicts,helps\n",
    );
    println!(
        "# W1 — write-path kernel ladder ({} ops/point, seed {:#x})",
        opts.ops, opts.seed
    );
    println!("# throughput: committed transactions per million simulated cycles");
    for k in WRITE_KS {
        for arch in [ArchKind::Bus, ArchKind::Mesh] {
            print!("{:>4} {:>5} {:>6}", k_label(k), arch.label(), "procs:");
            println!();
            for mode in WriteMode::ALL {
                print!("{:>27}", mode.label());
                for procs in WRITE_PROCS {
                    let p = run_write_point(k, arch, mode, procs, opts.ops, opts.seed);
                    print!(" {:>10.1}", p.throughput);
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{},{:.3},{},{},{}\n",
                        k_label(p.k), p.arch, p.mode, p.procs, p.total_ops, p.seed, p.cycles,
                        p.throughput, p.commits, p.conflicts, p.helps
                    ));
                    all.push(p);
                }
                println!();
            }
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("write-path.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("write-path.csv").display());
    all
}

/// W1 (host half): the wall-clock write-path ladder — the same kernel tiers
/// on one real uncontended thread, interpreted vs compiled. This is where
/// the compiled path's speedup is visible (the simulator charges memory
/// traffic, not allocator traffic); the small-k rows carry the ≥ 1.5×
/// claim recorded in `EXPERIMENTS.md`. Wall-clock, so informational only:
/// recorded in `BENCH_stm.json` but never CI-gated.
fn run_write_path_host(opts: &Options) -> Vec<WriteHostPoint> {
    // Host ops need to be large enough to outlast thread startup.
    let ops = (opts.ops * 64).max(100_000);
    let mut all = Vec::new();
    let mut csv = String::from("kernel,mode,procs,total_ops,nanos,ops_per_sec\n");
    println!("# W1 (host) — write-path ladder ({ops} ops/point, wall-clock, informational)");
    println!("{:>4} {:>13} {:>14} {:>14}", "k", "mode", "nanos", "ops/sec");
    for k in WRITE_KS {
        for mode in WriteMode::ALL {
            let p = run_write_host_point(k, mode, 1, ops);
            println!("{:>4} {:>13} {:>14} {:>14.0}", k_label(p.k), p.mode, p.nanos, p.ops_per_sec);
            csv.push_str(&format!(
                "{},{},{},{},{},{:.1}\n",
                k_label(p.k), p.mode, p.procs, p.total_ops, p.nanos, p.ops_per_sec
            ));
            all.push(p);
        }
    }
    for (k, procs, speedup) in compiled_speedups(&all) {
        println!("{:>4} P={procs} compiled/interpreted speedup: {speedup:.2}x", k_label(k));
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("write-path-host.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("write-path-host.csv").display());
    all
}

/// W2: the plan-cache hit-rate ablation — the k = 2 host write path with
/// the number of distinct transaction shapes as the only variable:
/// `resident` fits the bounded cache, `churn` cycles through 1.5× its
/// capacity (the adversarial pattern for move-to-front LRU — every lookup
/// misses and recompiles). Wall-clock, informational only.
fn run_plan_cache(opts: &Options) {
    let ops = (opts.ops * 16).max(50_000);
    println!("# W2 — plan-cache hit-rate ablation ({ops} ops/point, wall-clock, informational)");
    println!(
        "{:>10} {:>7} {:>10} {:>10} {:>9} {:>14}",
        "scenario", "shapes", "hits", "misses", "hit-rate", "ops/sec"
    );
    let mut csv = String::from("scenario,shapes,total_ops,hits,misses,hit_rate,nanos,ops_per_sec\n");
    for (scenario, shapes) in CACHE_SCENARIOS {
        let p = run_cache_point(scenario, shapes, ops);
        println!(
            "{:>10} {:>7} {:>10} {:>10} {:>9.3} {:>14.0}",
            p.scenario, p.shapes, p.hits, p.misses, p.hit_rate, p.ops_per_sec
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.4},{},{:.1}\n",
            p.scenario, p.shapes, p.total_ops, p.hits, p.misses, p.hit_rate, p.nanos, p.ops_per_sec
        ));
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("plan-cache.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("plan-cache.csv").display());
}

/// D1: the durable-commit latency ladder — the contended single-cell write
/// path with the durability backend as the variable: no journal (the
/// compiled-out default) against memory journals of rising flush cost.
/// Deterministic; every point re-verifies recovery equivalence before it is
/// emitted. CSV-only (the CI gate replays other row families).
fn run_durable(opts: &Options) {
    println!(
        "# D1 — durable-commit latency ladder ({} ops/point, seed {:#x})",
        opts.ops, opts.seed
    );
    println!("# throughput: committed transactions per million simulated cycles");
    let mut csv =
        String::from("config,arch,procs,total_ops,seed,cycles,throughput,flushes\n");
    let configs: Vec<Option<u64>> =
        std::iter::once(None).chain(DURABLE_FLUSH_COSTS.into_iter().map(Some)).collect();
    for arch in [ArchKind::Bus, ArchKind::Mesh] {
        println!("{:>5} {:>6}", arch.label(), "procs:");
        for &flush_cost in &configs {
            print!("{:>22}", stm_bench::durable::durable_config(flush_cost));
            for procs in DURABLE_PROCS {
                let p = run_durable_point(arch, flush_cost, procs, opts.ops, opts.seed);
                print!(" {:>10.1}", p.throughput);
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{:.3},{}\n",
                    p.config, p.arch, p.procs, p.total_ops, p.seed, p.cycles, p.throughput,
                    p.flushes
                ));
            }
            println!();
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("durable.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("durable.csv").display());
}

/// D1 (host half): the same ladder on real threads against an fsync'd file
/// journal. Wall-clock, so informational only — fsync latency is a property
/// of the machine's storage stack, not of the protocol.
fn run_durable_host(opts: &Options) {
    let host_procs: Vec<usize> =
        DURABLE_PROCS.iter().copied().filter(|&p| p <= num_cpus_cap()).collect();
    let ops = (opts.ops * 4).max(4_000);
    println!("# D1 (host) — durable-commit ladder ({ops} ops/point, wall-clock, informational)");
    println!("{:>6} {:>12} {:>14} {:>14}", "procs", "config", "nanos", "ops/sec");
    let mut csv = String::from("config,procs,total_ops,nanos,ops_per_sec\n");
    for &procs in &host_procs {
        for journaled in [false, true] {
            let p = run_durable_host_point(journaled, procs, ops);
            println!("{:>6} {:>12} {:>14} {:>14.0}", p.procs, p.config, p.nanos, p.ops_per_sec);
            csv.push_str(&format!(
                "{},{},{},{},{:.1}\n",
                p.config, p.procs, p.total_ops, p.nanos, p.ops_per_sec
            ));
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("durable-host.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("durable-host.csv").display());
}

/// F1 (fairness): the starvation ablation — a big-k transaction under a
/// small-tx storm, baseline contention manager vs the escalation ladder, on
/// the bus and mesh machines. The headline columns are the worst
/// losses-before-commit any single big transaction suffered and the big
/// transaction's p99 commit latency. Deterministic; the rows CI gates
/// against the committed `BENCH_stm.json` baseline, where an escalation row
/// must also respect its N+M loss bound.
fn run_fairness(opts: &Options) -> Vec<FairnessPoint> {
    let mut all = Vec::new();
    let mut csv = String::from(
        "arch,config,procs,total_ops,seed,cycles,throughput,big_txs,max_losses,loss_bound,\
         p99_big_latency,escalations,forced,deferrals\n",
    );
    println!(
        "# F1 — starvation ablation, big-{FAIR_BIG_K} transaction under a small-tx storm \
         ({} ops/point, seed {:#x})",
        opts.ops, opts.seed
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "arch", "config", "max-losses", "loss-bound", "p99-big", "throughput", "forced"
    );
    for arch in [ArchKind::Bus, ArchKind::Mesh] {
        for mode in FairMode::ALL {
            let p = run_fairness_point(arch, mode, opts.ops, opts.seed);
            println!(
                "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12.1} {:>8}",
                p.arch.label(),
                p.mode.label(),
                p.max_losses,
                if p.loss_bound == 0 { "-".to_string() } else { p.loss_bound.to_string() },
                p.p99_big_latency,
                p.throughput,
                p.forced
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{}\n",
                p.arch, p.mode, p.procs, p.total_ops, p.seed, p.cycles, p.throughput,
                p.big_txs, p.max_losses, p.loss_bound, p.p99_big_latency, p.escalations,
                p.forced, p.deferrals
            ));
            all.push(p);
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("fairness.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("fairness.csv").display());
    all
}

/// K1: the million-key KV service ladder — Zipfian get/put/delete traffic
/// against the arena-backed hash map, one world reused across every
/// threads × skew × read-ratio rung. Wall-clock throughput is
/// informational; the functional columns (live cells, entries, arena
/// accounting) are what the CI gate replays from the committed baseline.
/// `--quick` shrinks the key space for CI smoke; the committed baseline is
/// regenerated at full scale by `examples/kv_service.rs --update-bench`.
fn run_kv(opts: &Options) -> Vec<KvPoint> {
    let (keys, n_buckets, ops) = if opts.quick {
        (20_000u32, 8_192usize, (opts.ops * 16).max(8_192))
    } else {
        (KV_KEYS, KV_BUCKETS, KV_OPS)
    };
    println!(
        "# K1 — KV service ladder ({} keys, {} buckets, {} ops/rung, wall-clock)",
        thousands(u64::from(keys)),
        thousands(n_buckets as u64),
        thousands(ops)
    );
    eprintln!("[figures] building KV world ({} keys)...", thousands(u64::from(keys)));
    let points = run_kv_ladder(keys, n_buckets, ops);
    println!(
        "{:>14} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "config", "ops/sec", "live-cells", "entries", "high-water", "segments"
    );
    let mut csv = String::from(
        "config,keys,n_buckets,threads,total_ops,skew,read_pct,seed,nanos,ops_per_sec,gets,\
         hits,puts,deletes,entries,live_cells,high_water_cells,segments_live\n",
    );
    for p in &points {
        println!(
            "{:>14} {:>12.0} {:>14} {:>12} {:>12} {:>10}",
            p.label(),
            p.ops_per_sec,
            thousands(p.live_cells),
            thousands(p.entries),
            thousands(p.high_water_cells),
            p.segments_live
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{:.1},{},{},{},{},{},{},{},{}\n",
            p.label(),
            p.keys,
            p.n_buckets,
            p.threads,
            p.total_ops,
            p.skew,
            p.read_pct,
            p.seed,
            p.nanos,
            p.ops_per_sec,
            p.gets,
            p.hits,
            p.puts,
            p.deletes,
            p.entries,
            p.live_cells,
            p.high_water_cells,
            p.segments_live
        ));
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("kv.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("kv.csv").display());
    points
}

/// B1: the blocking producer–consumer idle-cost comparison — a consumer
/// draining a paced bounded queue by parking (`retry`) vs by spin-retrying
/// `try_pop`, on the bus and mesh machines. The headline column is the
/// consumer's memory-operation count: the parked consumer takes zero
/// scheduler steps while it waits. Deterministic; CSV-only (the CI gate's
/// bit-identity check on the write-path rows already pins the non-blocking
/// schedules this feature must not perturb).
fn run_blocking(opts: &Options) {
    let items = (opts.ops / 16).clamp(16, 512);
    println!("# B1 — blocking vs spin producer–consumer ({items} items/point, seed {:#x})", opts.seed);
    println!(
        "{:>5} {:>10} {:>12} {:>8} {:>8} {:>12} {:>12}",
        "arch", "mode", "consumer-ops", "parks", "wakeups", "cycles", "throughput"
    );
    let mut csv = String::from(
        "arch,mode,procs,items,seed,cycles,throughput,consumer_ops,parks,wakeups\n",
    );
    for arch in [ArchKind::Bus, ArchKind::Mesh] {
        for mode in BlockMode::ALL {
            let p = run_blocking_point(arch, mode, items, opts.seed);
            println!(
                "{:>5} {:>10} {:>12} {:>8} {:>8} {:>12} {:>12.1}",
                p.arch.label(),
                p.mode.label(),
                p.consumer_ops,
                p.parks,
                p.wakeups,
                p.cycles,
                p.throughput
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{},{},{}\n",
                p.arch, p.mode, p.procs, p.items, p.seed, p.cycles, p.throughput,
                p.consumer_ops, p.parks, p.wakeups
            ));
        }
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("blocking.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("blocking.csv").display());
}

/// B1 (host half): the same wait on real threads, measuring the consumer
/// thread's CPU time across a window in which the producer deliberately
/// delays. Parking must show near-zero CPU where the spinner burns the
/// whole window. Wall-clock, so informational only.
fn run_blocking_host(opts: &Options) {
    let wait = std::time::Duration::from_millis(200);
    println!("# B1 (host) — idle CPU across a {}ms wait (wall-clock, informational)", wait.as_millis());
    println!("{:>10} {:>14} {:>14}", "mode", "wall-nanos", "cpu-ticks");
    let mut csv = String::from("mode,wall_nanos,cpu_ticks\n");
    for mode in BlockMode::ALL {
        let p = run_blocking_host_point(mode, wait);
        let ticks = p.cpu_ticks.map_or("n/a".to_owned(), |t| t.to_string());
        println!("{:>10} {:>14} {:>14}", p.mode.label(), p.wall_nanos, ticks);
        csv.push_str(&format!("{},{},{}\n", p.mode, p.wall_nanos, ticks));
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("blocking-host.csv"), csv).expect("write CSV");
    eprintln!("[figures] wrote {}", opts.out.join("blocking-host.csv").display());
}

/// Cap host-ladder thread counts at the machine's parallelism (sweeping 64
/// simulated processors is fine; 64 real threads on a 4-core runner is not).
fn num_cpus_cap() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// A2: Herlihy's method with different back-off policies (its performance is
/// known to be very sensitive to back-off tuning).
fn run_ablate_backoff(opts: &Options) {
    use stm_sim::engine::{SimConfig, SimPort, Simulation};
    use stm_sync::HerlihyObject;

    let policies: [(&str, BackoffPolicy); 3] = [
        ("none", BackoffPolicy::None),
        ("exp-small", BackoffPolicy::Exponential { base: 2, max: 256 }),
        ("exp-large", BackoffPolicy::Exponential { base: 16, max: 16384 }),
    ];
    println!("# A2 — Herlihy back-off ablation, counting benchmark on the bus machine");
    println!("# throughput: operations per million simulated cycles");
    print!("{:>6}", "procs");
    for (name, _) in &policies {
        print!(" {name:>12}");
    }
    println!();
    let mut csv = String::from("procs,policy,total_ops,cycles,throughput\n");
    for &procs in &opts.procs {
        print!("{procs:>6}");
        for (name, policy) in &policies {
            let per_proc = (opts.ops / procs as u64).max(1);
            let obj = HerlihyObject::with_backoff(0, 1, procs, *policy);
            let report = Simulation::new(
                SimConfig {
                    n_words: HerlihyObject::words_needed(1, procs),
                    seed: opts.seed,
                    jitter: 2,
                    max_cycles: 1 << 36,
                    init: obj.initial_words(&[0]),
                    ..Default::default()
                },
                stm_sim::arch::BusModel::for_procs(procs),
            )
            .run(procs, |_| {
                move |mut port: SimPort| {
                    let mut h = obj.handle(&port);
                    for _ in 0..per_proc {
                        h.update(&mut port, |o| o[0] += 1);
                    }
                }
            });
            let total = per_proc * procs as u64;
            let thr = total as f64 * 1e6 / report.cycles as f64;
            print!(" {thr:>12.1}");
            csv.push_str(&format!("{procs},{name},{total},{},{thr:.3}\n", report.cycles));
        }
        println!();
    }
    println!();
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    std::fs::write(opts.out.join("ablate-backoff.csv"), csv).expect("write CSV");
}
