//! T2 — protocol footprint table: shared-memory operations per uncontended
//! operation, for every structure × method.
//!
//! This machine-independent count explains the throughput rankings: a
//! method's cycle cost on any architecture is roughly its footprint weighted
//! by that architecture's per-access costs.
//!
//! Run with: `cargo run -p stm-bench --release --bin footprint`

use stm_core::machine::counting::CountingPort;
use stm_core::machine::host::HostMachine;
use stm_structures::counter::Counter;
use stm_structures::deque::{Deque, End};
use stm_structures::list_set::ListSet;
use stm_structures::prio::PrioQueue;
use stm_structures::queue::FifoQueue;
use stm_structures::resource::ResourcePool;
use stm_structures::Method;

fn main() {
    println!("# T2 — shared-memory operations per uncontended operation (reads+writes+CAS)");
    println!(
        "{:>14} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "method", "counter", "queue", "resource3", "prio(c32)", "deque", "(cas)"
    );
    for method in Method::ALL {
        let counter = measure_counter(method);
        let queue = measure_queue(method);
        let resource = measure_resource(method);
        let prio = measure_prio(method);
        let (deque, deque_cas) = measure_deque(method);
        println!(
            "{:>14} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
            method.label(),
            counter,
            queue,
            resource,
            prio,
            deque,
            deque_cas
        );
    }
    println!();
    println!(
        "# list-set (STM only): {} ops per insert+remove pair at 8 keys",
        measure_list_set()
    );
}

fn measure_list_set() -> u64 {
    let s = ListSet::new(0, 1, 16, stm_core::stm::StmConfig::default());
    let m = HostMachine::new(ListSet::words_needed(1, 16), 1);
    let mut port = CountingPort::new(m.port(0));
    s.init_on(&mut port);
    for k in 0..8 {
        s.insert(&mut port, k * 3);
    }
    port.reset();
    s.insert(&mut port, 13);
    s.remove(&mut port, 13);
    port.counts().total() / 2
}

fn measure_counter(method: Method) -> u64 {
    let c = Counter::new(method, 0, 1);
    let m = HostMachine::new(Counter::words_needed(method, 1), 1);
    let mut port = CountingPort::new(m.port(0));
    c.init_on(&mut port, 0);
    let mut h = c.handle(&port);
    h.increment(&mut port); // warm-up
    port.reset();
    h.increment(&mut port);
    port.counts().total()
}

fn measure_queue(method: Method) -> u64 {
    let q = FifoQueue::new(method, 0, 1, 8);
    let m = HostMachine::new(FifoQueue::words_needed(method, 1, 8), 1);
    let mut port = CountingPort::new(m.port(0));
    q.init_on(&mut port);
    let mut h = q.handle(&port);
    h.enqueue(&mut port, 1);
    let _ = h.dequeue(&mut port);
    port.reset();
    h.enqueue(&mut port, 2);
    let _ = h.dequeue(&mut port);
    port.counts().total() / 2
}

fn measure_resource(method: Method) -> u64 {
    let pool = ResourcePool::new(method, 0, 1, 64);
    let m = HostMachine::new(ResourcePool::words_needed(method, 1, 64), 1);
    let mut port = CountingPort::new(m.port(0));
    pool.init_on(&mut port, 2);
    let mut h = pool.handle(&port);
    let set = [3usize, 17, 42];
    h.try_acquire(&mut port, &set);
    h.release(&mut port, &set);
    port.reset();
    h.try_acquire(&mut port, &set);
    h.release(&mut port, &set);
    port.counts().total() / 2
}

fn measure_prio(method: Method) -> u64 {
    let q = PrioQueue::new(method, 0, 1, 32);
    let m = HostMachine::new(PrioQueue::words_needed(method, 1, 32), 1);
    let mut port = CountingPort::new(m.port(0));
    q.init_on(&mut port);
    let mut h = q.handle(&port);
    h.insert(&mut port, 5);
    let _ = h.extract_min(&mut port);
    port.reset();
    h.insert(&mut port, 6);
    let _ = h.extract_min(&mut port);
    port.counts().total() / 2
}

fn measure_deque(method: Method) -> (u64, u64) {
    let d = Deque::new(method, 0, 1, 8);
    let m = HostMachine::new(Deque::words_needed(method, 1, 8), 1);
    let mut port = CountingPort::new(m.port(0));
    d.init_on(&mut port);
    let mut h = d.handle(&port);
    h.push(&mut port, End::Back, 1);
    let _ = h.pop(&mut port, End::Front);
    port.reset();
    h.push(&mut port, End::Back, 2);
    let _ = h.pop(&mut port, End::Front);
    let c = port.counts();
    (c.total() / 2, (c.cas_ok + c.cas_failed) / 2)
}
