//! CI regression gate for the read-only fast path.
//!
//! ```text
//! cargo run -p stm-bench --release --bin bench_gate -- [OPTIONS]
//!
//! OPTIONS
//!   --baseline PATH   committed report to gate against
//!                     (default results/BENCH_stm.json)
//!   --tolerance PCT   allowed throughput regression in percent (default 15)
//!   --observer-tolerance PCT
//!                     allowed flight-recorder overhead vs NoopObserver on
//!                     the W1 host kernel ladder, in percent (default 5)
//!   --observer-ops N  committed transactions per thread per kernel tier in
//!                     the overhead measurement (default 50000)
//! ```
//!
//! Replays every `read_heavy` row, every write-path `points` row, and every
//! `fairness` row of the committed `BENCH_stm.json` baseline — same
//! workload, architecture, mode, processor count, operation count, and
//! seed, so on an unchanged protocol the simulated cycle counts reproduce
//! bit-exactly — and fails (exit 1) if any row's fresh throughput falls
//! more than the tolerance below the committed number. Also enforces
//! structural invariants on the fresh run: every write-path row's fresh
//! cycle count must equal the committed one exactly — the default
//! (non-blocking) configuration's schedules are pinned bit-identically, so
//! an inert-by-design feature (the blocking layer's park/wake hooks, say)
//! cannot silently perturb them; the fast-read mode beats classic
//! on every read-heavy (bench, arch, procs) configuration; the write path's
//! interpreted and compiled modes agree cycle-for-cycle on every
//! (kernel, arch, procs) configuration — the standing bit-identity witness
//! for the compiled-plan layer; and on the fairness rows, a fresh
//! `max_losses` must never exceed the committed one (starvation must not
//! regress), with every escalation row inside its N+M `loss_bound`.
//!
//! The `kv` rows are replayed differently: wall-clock throughput does not
//! reproduce across machines, so the gate rebuilds the committed world
//! (same keys, buckets, seed) once, re-runs every rung at a quarter of the
//! committed operation count, and pins the workload's *functional*
//! invariants instead — every rung must sustain at least one million live
//! arena cells (the flagship claim), the quiesced map scan must match the
//! length counter with no duplicate keys and exact arena accounting
//! (`live == 2·buckets + 3·len`), and the read-heavy rung must reach at
//! least a quarter of the write-heavy rung's fresh throughput at equal
//! thread count and skew (both sides measured on this machine, so the
//! ratio is meaningful).
//!
//! Write-path rows are recognized inside `points` by `"bench":
//! "write-path"`; figure rows (no seed) are not replayable and are
//! skipped. Host (`host` section) rows are wall-clock and are deliberately
//! ignored.

use std::path::PathBuf;

use stm_bench::fairness::{run_fairness_point, FairMode};
use stm_bench::kv::{build_world, run_kv_point, KvConfig, KvPoint};
use stm_bench::read_heavy::{run_read_point, ReadBench, ReadMode, ReadPoint};
use stm_bench::table::thousands;
use stm_bench::workloads::ArchKind;
use stm_bench::write_path::{
    k_from_label, k_label, run_observer_ladder, run_write_point, ObserverMode, WriteMode,
    WritePoint,
};

struct Options {
    baseline: PathBuf,
    tolerance: f64,
    observer_tolerance: f64,
    observer_ops: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        baseline: PathBuf::from("results/BENCH_stm.json"),
        tolerance: 15.0,
        // The recorder's true cost on the W1 ladder is ~2%; the headroom
        // absorbs code-alignment jitter between builds and shared-runner
        // noise, which has been measured swinging the median by +/-6 points
        // on busy hosts. A real recorder regression (an allocation or lock
        // on the record path) shows up at 2-10x this limit, not near it.
        observer_tolerance: 12.0,
        observer_ops: 50_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => opts.baseline = PathBuf::from(val("--baseline")),
            "--tolerance" => {
                opts.tolerance = val("--tolerance").parse().expect("--tolerance PCT")
            }
            "--observer-tolerance" => {
                opts.observer_tolerance =
                    val("--observer-tolerance").parse().expect("--observer-tolerance PCT")
            }
            "--observer-ops" => {
                opts.observer_ops = val("--observer-ops").parse().expect("--observer-ops N")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_gate [--baseline PATH] [--tolerance PCT] \
                     [--observer-tolerance PCT] [--observer-ops N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// A baseline row's replay parameters plus its committed throughput.
struct BaselineRow {
    bench: ReadBench,
    arch: ArchKind,
    mode: ReadMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
    throughput: f64,
}

fn parse_baseline(doc: &serde_json::Value) -> Vec<BaselineRow> {
    let rows = doc["read_heavy"]
        .as_array()
        .unwrap_or_else(|| die("baseline has no read_heavy section (schema too old?)"));
    rows.iter()
        .map(|r| BaselineRow {
            bench: ReadBench::from_label(r["bench"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown bench label in baseline")),
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: ReadMode::from_label(r["config"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown config label in baseline")),
            procs: r["procs"].as_u64().unwrap_or_else(|| die("missing procs")) as usize,
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
        })
        .collect()
}

/// A baseline write-path row's replay parameters plus its committed
/// throughput.
struct WriteRow {
    k: usize,
    arch: ArchKind,
    mode: WriteMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
    throughput: f64,
    cycles: u64,
}

fn parse_write_baseline(doc: &serde_json::Value) -> Vec<WriteRow> {
    let Some(rows) = doc["points"].as_array() else { return Vec::new() };
    rows.iter()
        .filter(|r| r["bench"].as_str() == Some("write-path"))
        .map(|r| WriteRow {
            k: k_from_label(r["kernel"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown kernel label in baseline")),
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: WriteMode::from_label(r["method"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown method label in baseline")),
            procs: r["procs"].as_u64().unwrap_or_else(|| die("missing procs")) as usize,
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
            cycles: r["cycles"].as_u64().unwrap_or_else(|| die("missing cycles")),
        })
        .collect()
}

/// A baseline fairness row's replay parameters plus its committed numbers.
struct FairRow {
    arch: ArchKind,
    mode: FairMode,
    total_ops: u64,
    seed: u64,
    throughput: f64,
    max_losses: u64,
    loss_bound: u64,
}

fn parse_fairness_baseline(doc: &serde_json::Value) -> Vec<FairRow> {
    let Some(rows) = doc["fairness"].as_array() else { return Vec::new() };
    rows.iter()
        .map(|r| FairRow {
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: FairMode::from_label(r["config"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown fairness config label in baseline")),
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
            max_losses: r["max_losses"].as_u64().unwrap_or_else(|| die("missing max_losses")),
            loss_bound: r["loss_bound"].as_u64().unwrap_or_else(|| die("missing loss_bound")),
        })
        .collect()
}

/// A baseline KV rung's replay parameters plus its committed numbers.
struct KvRow {
    keys: u32,
    n_buckets: usize,
    threads: usize,
    total_ops: u64,
    skew: f64,
    read_pct: u32,
    seed: u64,
    ops_per_sec: f64,
    live_cells: u64,
}

fn parse_kv_baseline(doc: &serde_json::Value) -> Vec<KvRow> {
    let rows = doc["kv"]
        .as_array()
        .unwrap_or_else(|| die("baseline has no kv section (schema too old?)"));
    rows.iter()
        .map(|r| KvRow {
            keys: r["keys"].as_u64().unwrap_or_else(|| die("missing keys")) as u32,
            n_buckets: r["n_buckets"].as_u64().unwrap_or_else(|| die("missing n_buckets"))
                as usize,
            threads: r["threads"].as_u64().unwrap_or_else(|| die("missing threads")) as usize,
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            skew: r["skew"].as_f64().unwrap_or_else(|| die("missing skew")),
            read_pct: r["read_pct"].as_u64().unwrap_or_else(|| die("missing read_pct")) as u32,
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            ops_per_sec: r["ops_per_sec"].as_f64().unwrap_or_else(|| die("missing ops_per_sec")),
            live_cells: r["live_cells"].as_u64().unwrap_or_else(|| die("missing live_cells")),
        })
        .collect()
}

fn die<T>(msg: &str) -> T {
    eprintln!("[bench-gate] error: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let text = std::fs::read_to_string(&opts.baseline).unwrap_or_else(|e| {
        die(&format!("cannot read {}: {e}", opts.baseline.display()))
    });
    let doc: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("bad baseline JSON: {e}")));
    let baseline = parse_baseline(&doc);
    if baseline.is_empty() {
        die::<()>("baseline read_heavy section is empty; regenerate with `figures read-heavy`");
    }
    let write_baseline = parse_write_baseline(&doc);
    if write_baseline.is_empty() {
        die::<()>("baseline has no write-path points; regenerate with `figures write-path`");
    }
    let fairness_baseline = parse_fairness_baseline(&doc);
    if fairness_baseline.is_empty() {
        die::<()>("baseline has no fairness rows; regenerate with `figures fairness`");
    }
    let kv_baseline = parse_kv_baseline(&doc);
    if kv_baseline.is_empty() {
        die::<()>(
            "baseline has no kv rows; regenerate with `cargo run --release --example \
             kv_service -- --update-bench`",
        );
    }
    eprintln!(
        "[bench-gate] replaying {} read-heavy + {} write-path + {} fairness + {} kv rows \
         from {} (tolerance {}%)",
        baseline.len(),
        write_baseline.len(),
        fairness_baseline.len(),
        kv_baseline.len(),
        opts.baseline.display(),
        opts.tolerance
    );

    let floor = 1.0 - opts.tolerance / 100.0;
    let mut fresh: Vec<ReadPoint> = Vec::with_capacity(baseline.len());
    let mut failures = 0usize;
    for row in &baseline {
        let p = run_read_point(row.bench, row.arch, row.mode, row.procs, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let ok = ratio >= floor;
        println!(
            "{} {:>14} {:>5} {:>10} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%)",
            if ok { "ok  " } else { "FAIL" },
            row.bench.label(),
            row.arch.label(),
            row.mode.label(),
            row.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0
        );
        if !ok {
            failures += 1;
        }
        fresh.push(p);
    }

    // Structural invariant: fast-read must beat classic in the fresh run on
    // every configuration both modes cover.
    for f in fresh.iter().filter(|p| p.mode == ReadMode::Fast) {
        if let Some(c) = fresh.iter().find(|p| {
            p.mode == ReadMode::Classic
                && p.bench == f.bench
                && p.arch == f.arch
                && p.procs == f.procs
        }) {
            if f.throughput <= c.throughput {
                println!(
                    "FAIL {:>14} {:>5} P={:<3} fast-read {:.1} does not beat classic {:.1}",
                    f.bench.label(),
                    f.arch.label(),
                    f.procs,
                    f.throughput,
                    c.throughput
                );
                failures += 1;
            }
        }
    }

    // Write-path rows: same replay-and-compare, against the kernel ladder.
    let mut fresh_write: Vec<WritePoint> = Vec::with_capacity(write_baseline.len());
    for row in &write_baseline {
        let p = run_write_point(row.k, row.arch, row.mode, row.procs, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let mut ok = ratio >= floor;
        // These rows run the default (non-blocking) configuration, whose
        // schedules must replay the committed baseline bit-identically:
        // any cycle drift means a supposedly-inert feature (the blocking
        // layer's park/wake hooks, an observer, ...) perturbed the
        // protocol schedule.
        let mut note = String::new();
        if p.cycles != row.cycles {
            ok = false;
            note = format!("  cycles {} drifted from committed {}", p.cycles, row.cycles);
        }
        println!(
            "{} {:>14} {:>5} {:>12} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%){}",
            if ok { "ok  " } else { "FAIL" },
            format!("write-path/{}", k_label(row.k)),
            row.arch.label(),
            row.mode.label(),
            row.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0,
            note
        );
        if !ok {
            failures += 1;
        }
        fresh_write.push(p);
    }

    // Structural invariant: compiled plans must replay the interpreted
    // schedule cycle-for-cycle on every configuration both modes cover —
    // the bit-identity constraint of the compiled-plan layer, checked
    // against fresh runs on every PR.
    for c in fresh_write.iter().filter(|p| p.mode == WriteMode::Compiled) {
        if let Some(i) = fresh_write.iter().find(|p| {
            p.mode == WriteMode::Interpreted
                && p.k == c.k
                && p.arch == c.arch
                && p.procs == c.procs
        }) {
            if c.cycles != i.cycles {
                println!(
                    "FAIL {:>14} {:>5} P={:<3} compiled {} cycles != interpreted {} cycles",
                    format!("write-path/{}", k_label(c.k)),
                    c.arch.label(),
                    c.procs,
                    c.cycles,
                    i.cycles
                );
                failures += 1;
            }
        }
    }

    // Fairness rows: replay-and-compare on throughput like the other
    // families, plus the starvation gate — a fresh row may never lose more
    // than the committed baseline did, and an escalation row must stay
    // inside its N+M loss bound (run_fairness_point also asserts the bound
    // internally, so a broken ladder aborts loudly rather than emitting).
    for row in &fairness_baseline {
        let p = run_fairness_point(row.arch, row.mode, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let mut ok = ratio >= floor;
        let mut note = String::new();
        if p.max_losses > row.max_losses {
            ok = false;
            note = format!(
                "  max-losses {} regressed past committed {}",
                p.max_losses, row.max_losses
            );
        }
        if row.mode == FairMode::Escalation && p.max_losses > row.loss_bound {
            ok = false;
            note.push_str(&format!(
                "  max-losses {} above the N+M bound {}",
                p.max_losses, row.loss_bound
            ));
        }
        println!(
            "{} {:>14} {:>5} {:>10} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%) \
             losses {}/{}{}",
            if ok { "ok  " } else { "FAIL" },
            "storm",
            row.arch.label(),
            row.mode.label(),
            p.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0,
            p.max_losses,
            row.max_losses,
            note
        );
        if !ok {
            failures += 1;
        }
    }

    // Observer-overhead gate: the always-on flight recorder must cost at
    // most `observer_tolerance` percent over NoopObserver on the W1 host
    // kernel ladder. Wall-clock measurements are noisy, so each trial runs
    // the two modes back-to-back and contributes one flight/noop *ratio* —
    // a noise burst (co-tenant, thermal dip) lands on both halves of a
    // pair and cancels in the quotient, where it used to poison one side's
    // minimum. The median ratio over nine trials is the estimate. This
    // runs *before* the KV replay: the ladder needs a quiet machine, and
    // the KV rungs below saturate every core for seconds at a time.
    const OBSERVER_TRIALS: usize = 9;
    let procs = 2;
    // Warm-up: populate plan caches, fault in pages, spin up the allocator.
    let _ = run_observer_ladder(ObserverMode::Noop, procs, opts.observer_ops / 10);
    let _ = run_observer_ladder(ObserverMode::Flight, procs, opts.observer_ops / 10);
    let mut ratios = [0.0f64; OBSERVER_TRIALS];
    let mut best = [u64::MAX; 2];
    for (i, r) in ratios.iter_mut().enumerate() {
        // Alternate which mode goes first: a machine that slows (or
        // recovers) monotonically across the sweep otherwise always puts
        // the second-run mode on the slow side and biases every ratio the
        // same way.
        let (noop, flight) = if i % 2 == 0 {
            let n = run_observer_ladder(ObserverMode::Noop, procs, opts.observer_ops);
            (n, run_observer_ladder(ObserverMode::Flight, procs, opts.observer_ops))
        } else {
            let f = run_observer_ladder(ObserverMode::Flight, procs, opts.observer_ops);
            (run_observer_ladder(ObserverMode::Noop, procs, opts.observer_ops), f)
        };
        *r = flight as f64 / noop.max(1) as f64;
        best[0] = best[0].min(noop);
        best[1] = best[1].min(flight);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = (ratios[OBSERVER_TRIALS / 2] - 1.0) * 100.0;
    let ok = overhead <= opts.observer_tolerance;
    println!(
        "{} {:>14} P={procs:<3} noop {:>10} ns  flight {:>10} ns  overhead {overhead:+.2}% \
         (median of {OBSERVER_TRIALS} paired ratios, limit {}%)",
        if ok { "ok  " } else { "FAIL" },
        "observer/W1",
        best[0],
        best[1],
        opts.observer_tolerance
    );
    if !ok {
        failures += 1;
    }

    // KV rows: wall-clock throughput does not reproduce across machines,
    // so instead of a throughput floor the gate rebuilds the committed
    // world once (the rows must agree on its shape) and replays every rung
    // at a quarter of the committed operation count, pinning the workload's
    // functional invariants: the million-live-cell floor per rung, exact
    // arena accounting after quiescence, and read-heavy rungs keeping up
    // with write-heavy ones on *this* machine.
    let kv0 = &kv_baseline[0];
    let (kv_keys, kv_buckets) = (kv0.keys, kv0.n_buckets);
    if kv_baseline.iter().any(|r| r.keys != kv_keys || r.n_buckets != kv_buckets) {
        die::<()>("kv rows disagree on keys/n_buckets; the ladder shares one world");
    }
    let kv_procs = kv_baseline.iter().map(|r| r.threads).max().unwrap_or(1);
    eprintln!(
        "[bench-gate] building kv world ({} keys, {} buckets)...",
        thousands(u64::from(kv_keys)),
        thousands(kv_buckets as u64)
    );
    // Scoped so the multi-million-cell world is torn down before the
    // wall-clock observer ladder below — tens of megabytes of hot heap
    // would otherwise sit on that measurement.
    let fresh_kv = {
        let world = build_world(kv_keys, kv_buckets, kv_procs);
        let mut fresh_kv: Vec<KvPoint> = Vec::with_capacity(kv_baseline.len());
        for row in &kv_baseline {
            let cfg = KvConfig {
                keys: kv_keys,
                n_buckets: kv_buckets,
                threads: row.threads,
                total_ops: row.total_ops.div_ceil(4),
                skew: row.skew,
                read_pct: row.read_pct,
                seed: row.seed,
            };
            let p = run_kv_point(&world, &cfg);
            let mut ok = true;
            let mut note = String::new();
            if p.live_cells < 1_000_000 {
                ok = false;
                note = format!(
                    "  live cells {} below the million-cell floor",
                    thousands(p.live_cells)
                );
            }
            println!(
                "{} {:>14} {:>14} T={:<2} committed {:>12.0} ops/s fresh {:>12.0} ops/s \
                 live {:>10} (baseline {:>10}){}",
                if ok { "ok  " } else { "FAIL" },
                "kv",
                p.label(),
                row.threads,
                row.ops_per_sec,
                p.ops_per_sec,
                thousands(p.live_cells),
                thousands(row.live_cells),
                note
            );
            if !ok {
                failures += 1;
            }
            fresh_kv.push(p);
        }
        // Quiesced integrity: the scan must match the length counter with no
        // duplicates or reachable tombstones, and arena accounting must be
        // exact (the map owns the arena, so live == 2·buckets + 3·len). These
        // assert internally — a violation is a protocol bug and aborts loudly.
        let scanned = {
            let mut port = world.machine().port(0);
            world.map().check_quiesced(&mut port, true)
        };
        println!(
            "ok   {:>14} quiesced scan {} entries, arena accounting exact ({} live cells)",
            "kv/scan",
            thousands(scanned),
            thousands(world.map().arena().live_cells() as u64)
        );
        fresh_kv
    };
    // Read-heavy rungs must keep up with write-heavy ones: both sides are
    // fresh numbers from this machine, so the ratio is meaningful even
    // though the absolute throughput is not.
    for f in fresh_kv.iter().filter(|p| p.read_pct == 95) {
        if let Some(w) = fresh_kv
            .iter()
            .find(|p| p.read_pct == 50 && p.threads == f.threads && p.skew == f.skew)
        {
            if f.ops_per_sec < 0.25 * w.ops_per_sec {
                println!(
                    "FAIL {:>14} {:>14} read-heavy {:.0} ops/s under a quarter of \
                     write-heavy {:.0} ops/s",
                    "kv",
                    f.label(),
                    f.ops_per_sec,
                    w.ops_per_sec
                );
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("[bench-gate] {failures} regression(s) beyond {}% tolerance", opts.tolerance);
        std::process::exit(1);
    }
    eprintln!(
        "[bench-gate] all rows within tolerance; fast path still a win; write-path schedules \
         bit-identical to the committed baseline; compiled plans bit-identical; starvation \
         still bounded; kv service holding a million-plus live cells with exact accounting; \
         flight recorder within the overhead budget"
    );
}
