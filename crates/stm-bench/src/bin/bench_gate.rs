//! CI regression gate for the read-only fast path.
//!
//! ```text
//! cargo run -p stm-bench --release --bin bench_gate -- [OPTIONS]
//!
//! OPTIONS
//!   --baseline PATH   committed report to gate against
//!                     (default results/BENCH_stm.json)
//!   --tolerance PCT   allowed throughput regression in percent (default 15)
//!   --observer-tolerance PCT
//!                     allowed flight-recorder overhead vs NoopObserver on
//!                     the W1 host kernel ladder, in percent (default 5)
//!   --observer-ops N  committed transactions per thread per kernel tier in
//!                     the overhead measurement (default 50000)
//! ```
//!
//! Replays every `read_heavy` row, every write-path `points` row, and every
//! `fairness` row of the committed `BENCH_stm.json` baseline — same
//! workload, architecture, mode, processor count, operation count, and
//! seed, so on an unchanged protocol the simulated cycle counts reproduce
//! bit-exactly — and fails (exit 1) if any row's fresh throughput falls
//! more than the tolerance below the committed number. Also enforces
//! structural invariants on the fresh run: every write-path row's fresh
//! cycle count must equal the committed one exactly — the default
//! (non-blocking) configuration's schedules are pinned bit-identically, so
//! an inert-by-design feature (the blocking layer's park/wake hooks, say)
//! cannot silently perturb them; the fast-read mode beats classic
//! on every read-heavy (bench, arch, procs) configuration; the write path's
//! interpreted and compiled modes agree cycle-for-cycle on every
//! (kernel, arch, procs) configuration — the standing bit-identity witness
//! for the compiled-plan layer; and on the fairness rows, a fresh
//! `max_losses` must never exceed the committed one (starvation must not
//! regress), with every escalation row inside its N+M `loss_bound`.
//!
//! Write-path rows are recognized inside `points` by `"bench":
//! "write-path"`; figure rows (no seed) are not replayable and are
//! skipped. Host (`host` section) rows are wall-clock and are deliberately
//! ignored.

use std::path::PathBuf;

use stm_bench::fairness::{run_fairness_point, FairMode};
use stm_bench::read_heavy::{run_read_point, ReadBench, ReadMode, ReadPoint};
use stm_bench::workloads::ArchKind;
use stm_bench::write_path::{
    k_from_label, k_label, run_observer_ladder, run_write_point, ObserverMode, WriteMode,
    WritePoint,
};

struct Options {
    baseline: PathBuf,
    tolerance: f64,
    observer_tolerance: f64,
    observer_ops: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        baseline: PathBuf::from("results/BENCH_stm.json"),
        tolerance: 15.0,
        observer_tolerance: 5.0,
        observer_ops: 50_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => opts.baseline = PathBuf::from(val("--baseline")),
            "--tolerance" => {
                opts.tolerance = val("--tolerance").parse().expect("--tolerance PCT")
            }
            "--observer-tolerance" => {
                opts.observer_tolerance =
                    val("--observer-tolerance").parse().expect("--observer-tolerance PCT")
            }
            "--observer-ops" => {
                opts.observer_ops = val("--observer-ops").parse().expect("--observer-ops N")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_gate [--baseline PATH] [--tolerance PCT] \
                     [--observer-tolerance PCT] [--observer-ops N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// A baseline row's replay parameters plus its committed throughput.
struct BaselineRow {
    bench: ReadBench,
    arch: ArchKind,
    mode: ReadMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
    throughput: f64,
}

fn parse_baseline(doc: &serde_json::Value) -> Vec<BaselineRow> {
    let rows = doc["read_heavy"]
        .as_array()
        .unwrap_or_else(|| die("baseline has no read_heavy section (schema too old?)"));
    rows.iter()
        .map(|r| BaselineRow {
            bench: ReadBench::from_label(r["bench"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown bench label in baseline")),
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: ReadMode::from_label(r["config"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown config label in baseline")),
            procs: r["procs"].as_u64().unwrap_or_else(|| die("missing procs")) as usize,
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
        })
        .collect()
}

/// A baseline write-path row's replay parameters plus its committed
/// throughput.
struct WriteRow {
    k: usize,
    arch: ArchKind,
    mode: WriteMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
    throughput: f64,
    cycles: u64,
}

fn parse_write_baseline(doc: &serde_json::Value) -> Vec<WriteRow> {
    let Some(rows) = doc["points"].as_array() else { return Vec::new() };
    rows.iter()
        .filter(|r| r["bench"].as_str() == Some("write-path"))
        .map(|r| WriteRow {
            k: k_from_label(r["kernel"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown kernel label in baseline")),
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: WriteMode::from_label(r["method"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown method label in baseline")),
            procs: r["procs"].as_u64().unwrap_or_else(|| die("missing procs")) as usize,
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
            cycles: r["cycles"].as_u64().unwrap_or_else(|| die("missing cycles")),
        })
        .collect()
}

/// A baseline fairness row's replay parameters plus its committed numbers.
struct FairRow {
    arch: ArchKind,
    mode: FairMode,
    total_ops: u64,
    seed: u64,
    throughput: f64,
    max_losses: u64,
    loss_bound: u64,
}

fn parse_fairness_baseline(doc: &serde_json::Value) -> Vec<FairRow> {
    let Some(rows) = doc["fairness"].as_array() else { return Vec::new() };
    rows.iter()
        .map(|r| FairRow {
            arch: ArchKind::from_label(r["arch"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown arch label in baseline")),
            mode: FairMode::from_label(r["config"].as_str().unwrap_or_default())
                .unwrap_or_else(|| die("unknown fairness config label in baseline")),
            total_ops: r["total_ops"].as_u64().unwrap_or_else(|| die("missing total_ops")),
            seed: r["seed"].as_u64().unwrap_or_else(|| die("missing seed")),
            throughput: r["throughput"].as_f64().unwrap_or_else(|| die("missing throughput")),
            max_losses: r["max_losses"].as_u64().unwrap_or_else(|| die("missing max_losses")),
            loss_bound: r["loss_bound"].as_u64().unwrap_or_else(|| die("missing loss_bound")),
        })
        .collect()
}

fn die<T>(msg: &str) -> T {
    eprintln!("[bench-gate] error: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let text = std::fs::read_to_string(&opts.baseline).unwrap_or_else(|e| {
        die(&format!("cannot read {}: {e}", opts.baseline.display()))
    });
    let doc: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("bad baseline JSON: {e}")));
    let baseline = parse_baseline(&doc);
    if baseline.is_empty() {
        die::<()>("baseline read_heavy section is empty; regenerate with `figures read-heavy`");
    }
    let write_baseline = parse_write_baseline(&doc);
    if write_baseline.is_empty() {
        die::<()>("baseline has no write-path points; regenerate with `figures write-path`");
    }
    let fairness_baseline = parse_fairness_baseline(&doc);
    if fairness_baseline.is_empty() {
        die::<()>("baseline has no fairness rows; regenerate with `figures fairness`");
    }
    eprintln!(
        "[bench-gate] replaying {} read-heavy + {} write-path + {} fairness rows from {} \
         (tolerance {}%)",
        baseline.len(),
        write_baseline.len(),
        fairness_baseline.len(),
        opts.baseline.display(),
        opts.tolerance
    );

    let floor = 1.0 - opts.tolerance / 100.0;
    let mut fresh: Vec<ReadPoint> = Vec::with_capacity(baseline.len());
    let mut failures = 0usize;
    for row in &baseline {
        let p = run_read_point(row.bench, row.arch, row.mode, row.procs, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let ok = ratio >= floor;
        println!(
            "{} {:>14} {:>5} {:>10} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%)",
            if ok { "ok  " } else { "FAIL" },
            row.bench.label(),
            row.arch.label(),
            row.mode.label(),
            row.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0
        );
        if !ok {
            failures += 1;
        }
        fresh.push(p);
    }

    // Structural invariant: fast-read must beat classic in the fresh run on
    // every configuration both modes cover.
    for f in fresh.iter().filter(|p| p.mode == ReadMode::Fast) {
        if let Some(c) = fresh.iter().find(|p| {
            p.mode == ReadMode::Classic
                && p.bench == f.bench
                && p.arch == f.arch
                && p.procs == f.procs
        }) {
            if f.throughput <= c.throughput {
                println!(
                    "FAIL {:>14} {:>5} P={:<3} fast-read {:.1} does not beat classic {:.1}",
                    f.bench.label(),
                    f.arch.label(),
                    f.procs,
                    f.throughput,
                    c.throughput
                );
                failures += 1;
            }
        }
    }

    // Write-path rows: same replay-and-compare, against the kernel ladder.
    let mut fresh_write: Vec<WritePoint> = Vec::with_capacity(write_baseline.len());
    for row in &write_baseline {
        let p = run_write_point(row.k, row.arch, row.mode, row.procs, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let mut ok = ratio >= floor;
        // These rows run the default (non-blocking) configuration, whose
        // schedules must replay the committed baseline bit-identically:
        // any cycle drift means a supposedly-inert feature (the blocking
        // layer's park/wake hooks, an observer, ...) perturbed the
        // protocol schedule.
        let mut note = String::new();
        if p.cycles != row.cycles {
            ok = false;
            note = format!("  cycles {} drifted from committed {}", p.cycles, row.cycles);
        }
        println!(
            "{} {:>14} {:>5} {:>12} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%){}",
            if ok { "ok  " } else { "FAIL" },
            format!("write-path/{}", k_label(row.k)),
            row.arch.label(),
            row.mode.label(),
            row.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0,
            note
        );
        if !ok {
            failures += 1;
        }
        fresh_write.push(p);
    }

    // Structural invariant: compiled plans must replay the interpreted
    // schedule cycle-for-cycle on every configuration both modes cover —
    // the bit-identity constraint of the compiled-plan layer, checked
    // against fresh runs on every PR.
    for c in fresh_write.iter().filter(|p| p.mode == WriteMode::Compiled) {
        if let Some(i) = fresh_write.iter().find(|p| {
            p.mode == WriteMode::Interpreted
                && p.k == c.k
                && p.arch == c.arch
                && p.procs == c.procs
        }) {
            if c.cycles != i.cycles {
                println!(
                    "FAIL {:>14} {:>5} P={:<3} compiled {} cycles != interpreted {} cycles",
                    format!("write-path/{}", k_label(c.k)),
                    c.arch.label(),
                    c.procs,
                    c.cycles,
                    i.cycles
                );
                failures += 1;
            }
        }
    }

    // Fairness rows: replay-and-compare on throughput like the other
    // families, plus the starvation gate — a fresh row may never lose more
    // than the committed baseline did, and an escalation row must stay
    // inside its N+M loss bound (run_fairness_point also asserts the bound
    // internally, so a broken ladder aborts loudly rather than emitting).
    for row in &fairness_baseline {
        let p = run_fairness_point(row.arch, row.mode, row.total_ops, row.seed);
        let ratio = if row.throughput > 0.0 { p.throughput / row.throughput } else { 1.0 };
        let mut ok = ratio >= floor;
        let mut note = String::new();
        if p.max_losses > row.max_losses {
            ok = false;
            note = format!(
                "  max-losses {} regressed past committed {}",
                p.max_losses, row.max_losses
            );
        }
        if row.mode == FairMode::Escalation && p.max_losses > row.loss_bound {
            ok = false;
            note.push_str(&format!(
                "  max-losses {} above the N+M bound {}",
                p.max_losses, row.loss_bound
            ));
        }
        println!(
            "{} {:>14} {:>5} {:>10} P={:<3} baseline {:>10.1} fresh {:>10.1} ({:+.1}%) \
             losses {}/{}{}",
            if ok { "ok  " } else { "FAIL" },
            "storm",
            row.arch.label(),
            row.mode.label(),
            p.procs,
            row.throughput,
            p.throughput,
            (ratio - 1.0) * 100.0,
            p.max_losses,
            row.max_losses,
            note
        );
        if !ok {
            failures += 1;
        }
    }

    // Observer-overhead gate: the always-on flight recorder must cost at
    // most `observer_tolerance` percent over NoopObserver on the W1 host
    // kernel ladder. Wall-clock measurements are noisy, so trials are
    // interleaved (alternating modes so thermal/scheduler drift hits both)
    // and compared on per-mode minima — the standard noise-robust estimator
    // for "how fast can this path go".
    const OBSERVER_TRIALS: usize = 5;
    let procs = 2;
    let mut best = [u64::MAX; 2];
    // Warm-up: populate plan caches, fault in pages, spin up the allocator.
    let _ = run_observer_ladder(ObserverMode::Noop, procs, opts.observer_ops / 10);
    let _ = run_observer_ladder(ObserverMode::Flight, procs, opts.observer_ops / 10);
    for _ in 0..OBSERVER_TRIALS {
        for (slot, mode) in [ObserverMode::Noop, ObserverMode::Flight].into_iter().enumerate() {
            best[slot] = best[slot].min(run_observer_ladder(mode, procs, opts.observer_ops));
        }
    }
    let overhead = if best[0] > 0 {
        (best[1] as f64 / best[0] as f64 - 1.0) * 100.0
    } else {
        0.0
    };
    let ok = overhead <= opts.observer_tolerance;
    println!(
        "{} {:>14} P={procs:<3} noop {:>10} ns  flight {:>10} ns  overhead {overhead:+.2}% \
         (limit {}%)",
        if ok { "ok  " } else { "FAIL" },
        "observer/W1",
        best[0],
        best[1],
        opts.observer_tolerance
    );
    if !ok {
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[bench-gate] {failures} regression(s) beyond {}% tolerance", opts.tolerance);
        std::process::exit(1);
    }
    eprintln!(
        "[bench-gate] all rows within tolerance; fast path still a win; write-path schedules \
         bit-identical to the committed baseline; compiled plans bit-identical; starvation \
         still bounded; flight recorder within the overhead budget"
    );
}
