//! `stm_top` — live observability console for the host STM runtime.
//!
//! Drives a deliberately contended workload (a small hot cell set shared by
//! every thread) with a per-thread [`stm_core::FlightRecorder`] attached, aggregates
//! the rings through a [`stm_core::MetricsRegistry`], and renders a refreshing table
//! of commit/abort/help rates, log2-latency quantiles per op, starvation
//! escalations, and the hot-cell blame leaderboard.
//!
//! ```sh
//! cargo run --release --bin stm_top                 # live view, 10 s
//! cargo run --release --bin stm_top -- --once \
//!     --json snap.json --openmetrics snap.om        # one-shot for CI
//! ```
//!
//! Options:
//!
//!   --threads N       worker threads (default 4)
//!   --cells N         size of the shared hot cell set (default 8)
//!   --secs S          run duration in seconds (default 10; 2 with --once)
//!   --interval MS     refresh period in milliseconds (default 1000)
//!   --hot K           rows in the hot-cell leaderboard (default 8)
//!   --once            run headless, print one final report, then exit;
//!                     fails (exit 1) if the emitted OpenMetrics does not
//!                     round-trip through the parser or the blame table is
//!                     empty despite running multi-threaded
//!   --storm           fairness storm: thread 0 runs a big-k dynamic
//!                     transaction over the whole hot set (priority board
//!                     attached, aggressive escalation thresholds, delta-
//!                     revalidation on) while the rest hammer small adds;
//!                     with --once, fails (exit 1) if the run attributes no
//!                     fairness events (escalations, forced commits,
//!                     deferrals, or delta commits)
//!   --json PATH       write the final snapshot as JSON
//!   --openmetrics PATH
//!                     write the final snapshot as OpenMetrics text

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use stm_core::contention::{AdaptiveConfig, AdaptiveManager, PriorityBoard};
use stm_core::dynamic::DynamicStm;
use stm_core::export::{
    encode_openmetrics, parse_openmetrics, snapshot_json, MetricsRegistry, MetricsSnapshot,
};
use stm_core::machine::host::HostMachine;
use stm_core::metrics::Log2Histogram;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::{CellIdx, Word};
use stm_core::DEFAULT_FLIGHT_CAPACITY;

use stm_bench::table::render_columns;

/// Workload op tags (flight-recorder `op` field; 0 is reserved for
/// "untagged").
const OP_HOT_ADD: u32 = 1;
const OP_TRANSFER: u32 = 2;
const OP_SWEEP: u32 = 3;
const OP_BIG_K: u32 = 4;

struct Options {
    threads: usize,
    cells: usize,
    secs: f64,
    interval_ms: u64,
    hot: usize,
    once: bool,
    storm: bool,
    json: Option<PathBuf>,
    openmetrics: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        threads: 4,
        cells: 8,
        secs: f64::NAN,
        interval_ms: 1000,
        hot: 8,
        once: false,
        storm: false,
        json: None,
        openmetrics: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--threads" => opts.threads = val("--threads").parse().expect("--threads N"),
            "--cells" => opts.cells = val("--cells").parse().expect("--cells N"),
            "--secs" => opts.secs = val("--secs").parse().expect("--secs S"),
            "--interval" => {
                opts.interval_ms = val("--interval").parse().expect("--interval MS")
            }
            "--hot" => opts.hot = val("--hot").parse().expect("--hot K"),
            "--once" => opts.once = true,
            "--storm" => opts.storm = true,
            "--json" => opts.json = Some(PathBuf::from(val("--json"))),
            "--openmetrics" => opts.openmetrics = Some(PathBuf::from(val("--openmetrics"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: stm_top [--threads N] [--cells N] [--secs S] [--interval MS] \
                     [--hot K] [--once] [--storm] [--json PATH] [--openmetrics PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    if opts.secs.is_nan() {
        opts.secs = if opts.once { 2.0 } else { 10.0 };
    }
    if opts.threads == 0 || opts.cells < 2 {
        eprintln!("need at least 1 thread and 2 cells");
        std::process::exit(2);
    }
    opts
}

/// Local splitmix64 for workload generation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn fmt_ns(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

/// Render one snapshot as the three stacked tables of the live view.
fn render(snap: &MetricsSnapshot, hot: usize) -> String {
    let t = &snap.totals;
    let overview = render_columns(
        "stm_top overview",
        &[
            "commits", "aborts", "helps", "esc", "forced", "defer", "delta", "waits", "flushes",
            "dropped", "commit/s", "abort/s", "help/s",
        ],
        &[vec![
            t.commits.to_string(),
            t.aborts.to_string(),
            t.helps.to_string(),
            t.escalations.to_string(),
            t.forced_commits.to_string(),
            t.conflicts_deferred.to_string(),
            t.delta_commits.to_string(),
            t.backoff_waits.to_string(),
            t.journal_flushes.to_string(),
            t.dropped.to_string(),
            fmt_rate(snap.commit_rate),
            fmt_rate(snap.abort_rate),
            fmt_rate(snap.help_rate),
        ]],
    );

    let lat_rows: Vec<Vec<String>> = snap
        .latency
        .iter()
        .filter(|l| l.hist.count() > 0)
        .map(|l| {
            vec![
                l.name.clone(),
                l.hist.count().to_string(),
                fmt_ns(l.hist.percentile(50.0)),
                fmt_ns(l.hist.percentile(90.0)),
                fmt_ns(l.hist.percentile(99.0)),
                fmt_ns(l.hist.max() as f64),
            ]
        })
        .collect();
    let latency = render_columns(
        "per-op latency (workload wall-clock)",
        &["op", "count", "p50", "p90", "p99", "max"],
        &lat_rows,
    );

    let blame_rows: Vec<Vec<String>> = snap
        .attribution
        .top_cells(hot)
        .into_iter()
        .map(|(cell, b)| {
            vec![
                cell.to_string(),
                b.aborts.to_string(),
                b.helps.to_string(),
                b.cycles_lost.to_string(),
                format!("{:.1}", b.mean_cycles_lost()),
            ]
        })
        .collect();
    let blame = render_columns(
        "hot-cell blame leaderboard",
        &["cell", "aborts", "helps", "cycles_lost", "mean_lost"],
        &blame_rows,
    );

    format!("{overview}\n{latency}\n{blame}")
}

fn main() {
    let opts = parse_args();
    let procs = opts.threads;
    let cells = opts.cells;

    // Storm mode turns the fairness machinery on: a shared priority board
    // (escalation/forced tiers) and delta-revalidation for the big-k
    // dynamic transaction. The default run keeps both off, matching the
    // library defaults.
    let config = if opts.storm {
        StmConfig { delta_retry_cells: 4, ..StmConfig::default() }
    } else {
        StmConfig::default()
    };
    let board = opts.storm.then(|| Arc::new(PriorityBoard::new(procs)));
    let mut ops = StmOps::new(0, cells, procs, cells.min(8), config);
    if let Some(b) = &board {
        ops = ops.with_priority_board(Arc::clone(b));
    }
    let dstm = opts.storm.then(|| DynamicStm::from_ops(ops.clone()));
    let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
    // Deeper rings than the library default: stm_top's whole job is to fold
    // the stream, so spend some memory to keep drops low between drains.
    let registry = MetricsRegistry::new(procs, DEFAULT_FLIGHT_CAPACITY * 16);
    registry.register_op(OP_HOT_ADD, "hot-add");
    registry.register_op(OP_TRANSFER, "transfer");
    registry.register_op(OP_SWEEP, "sweep");
    registry.register_op(OP_BIG_K, "big-k");

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs_f64(opts.secs);

    std::thread::scope(|s| {
        for p in 0..procs {
            let ops = ops.clone();
            let machine = machine.clone();
            let registry = registry.clone();
            let board = board.clone();
            let dstm = dstm.clone();
            let storm = opts.storm;
            let stop = &stop;
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut rec = registry.recorder(p);
                // The storm's big-k thread escalates (and forces) fast so a
                // short run still exercises every fairness tier.
                let mut cm = if storm && p == 0 {
                    AdaptiveManager::with_config(
                        p,
                        AdaptiveConfig {
                            starvation_losses: 2,
                            starvation_attempts: 6,
                            forced_losses: 2,
                            ..AdaptiveConfig::default()
                        },
                    )
                } else {
                    AdaptiveManager::new(p)
                };
                if let Some(b) = &board {
                    cm = cm.with_board(Arc::clone(b));
                }
                let mut hists = [
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                    Log2Histogram::new(),
                ];
                let mut rng = 0x51E_ED00 ^ (p as u64) << 32;
                let mut since_flush = 0u32;
                let add = ops.builtins().add;

                if storm && p == 0 {
                    // Big-k dynamic read-modify-write over the whole hot
                    // set: under the small-tx storm its validations keep
                    // failing a cell or two at a time (delta commits) and
                    // its commit sweeps keep losing acquisitions
                    // (escalation, then the forced tier).
                    let dstm = dstm.expect("storm mode builds the dynamic handle");
                    let k = cells.min(8);
                    while !stop.load(Ordering::Relaxed) {
                        rec.set_op(OP_BIG_K);
                        let began = Instant::now();
                        dstm.run(
                            &mut port,
                            |tx| {
                                let mut vals = [0u32; 8];
                                for (c, v) in vals.iter_mut().enumerate().take(k) {
                                    *v = tx.read(c as CellIdx);
                                }
                                // Widen the read-to-commit window so the
                                // storm actually invalidates the snapshot
                                // (the bare loop is too fast on a host).
                                for _ in 0..500 {
                                    std::hint::spin_loop();
                                }
                                for (c, &v) in vals.iter().enumerate().take(k) {
                                    tx.write(c as CellIdx, v.wrapping_add(1));
                                }
                            },
                            &mut TxOptions::new().observer(&mut rec).manager(&mut cm),
                        )
                        .expect("unlimited budget cannot exhaust");
                        let nanos =
                            began.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        hists[(OP_BIG_K - 1) as usize].record(nanos);
                        since_flush += 1;
                        if since_flush >= 64 {
                            since_flush = 0;
                            for (i, h) in hists.iter_mut().enumerate() {
                                registry.merge_latency(i as u32 + 1, h);
                                *h = Log2Histogram::new();
                            }
                        }
                    }
                    for (i, h) in hists.iter().enumerate() {
                        registry.merge_latency(i as u32 + 1, h);
                    }
                    return;
                }

                while !stop.load(Ordering::Relaxed) {
                    rng = splitmix64(rng);
                    // 60% single-cell hot adds, 30% transfers, 10% sweeps:
                    // the mix keeps a few cells glowing so attribution has
                    // something to blame. In storm mode the small threads
                    // concentrate on cells 0-1 so the big-k transaction's
                    // validation failures touch few cells (delta territory)
                    // while those two cells stay contended enough to starve
                    // its acquisition sweeps (escalation territory).
                    let (tag, n) = if storm {
                        (OP_HOT_ADD, 1)
                    } else {
                        match rng % 10 {
                            0..=5 => (OP_HOT_ADD, 1),
                            6..=8 => (OP_TRANSFER, 2),
                            _ => (OP_SWEEP, 4.min(cells)),
                        }
                    };
                    let mut tx_cells: Vec<CellIdx> = Vec::with_capacity(n);
                    while tx_cells.len() < n {
                        rng = splitmix64(rng);
                        let c = if storm {
                            (rng % 2.min(cells as u64)) as CellIdx
                        } else {
                            // Square the draw to bias toward low cell
                            // indices — cell 0 and 1 become the hottest.
                            ((rng % cells as u64) * (rng % cells as u64)
                                / cells.max(1) as u64) as CellIdx
                        };
                        if !tx_cells.contains(&c) {
                            tx_cells.push(c);
                        }
                    }
                    let params: Vec<Word> = (0..n).map(|_| 1 as Word).collect();
                    let spec = TxSpec::new(add, &params, &tx_cells);
                    rec.set_op(tag);
                    let began = Instant::now();
                    let _ = ops
                        .stm()
                        .run(
                            &mut port,
                            &spec,
                            &mut TxOptions::new().observer(&mut rec).manager(&mut cm),
                        )
                        .expect("unlimited budget cannot exhaust");
                    let nanos = began.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    hists[(tag - 1) as usize].record(nanos);

                    since_flush += 1;
                    if since_flush >= 1024 {
                        since_flush = 0;
                        for (i, h) in hists.iter_mut().enumerate() {
                            registry.merge_latency(i as u32 + 1, h);
                            *h = Log2Histogram::new();
                        }
                    }
                }
                for (i, h) in hists.iter().enumerate() {
                    registry.merge_latency(i as u32 + 1, h);
                }
            });
        }

        // Aggregator loop on the main thread: drain the rings every 100 ms
        // so overwrite drops stay low, render every `interval_ms` (unless
        // headless). Snapshots are cumulative, so frequent drains only
        // affect the rate window, not the totals.
        let drain_tick = Duration::from_millis(100.min(opts.interval_ms));
        let mut next_render = Instant::now() + Duration::from_millis(opts.interval_ms);
        while Instant::now() < deadline {
            let tick = drain_tick.min(deadline.saturating_duration_since(Instant::now()));
            std::thread::sleep(tick);
            let snap = registry.snapshot();
            if !opts.once && Instant::now() >= next_render {
                next_render += Duration::from_millis(opts.interval_ms);
                println!("\n{}", render(&snap, opts.hot));
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Final snapshot after every worker has flushed its histograms.
    let snap = registry.snapshot();
    println!("\n{}", render(&snap, opts.hot));

    let om = encode_openmetrics(&snap);
    if let Some(path) = &opts.openmetrics {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, &om).expect("write openmetrics");
        println!("wrote OpenMetrics to {}", path.display());
    }
    if let Some(path) = &opts.json {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, snapshot_json(&snap)).expect("write json snapshot");
        println!("wrote JSON snapshot to {}", path.display());
    }

    // Self-check: the text we export must round-trip through our own
    // OpenMetrics parser, and a contended multi-thread run must have
    // produced a non-empty blame table.
    match parse_openmetrics(&om) {
        Ok(parsed) => {
            let commits: f64 = parsed
                .samples
                .iter()
                .filter(|s| s.name == "stm_commits_total")
                .map(|s| s.value)
                .sum();
            println!(
                "openmetrics self-parse ok: {} samples, {commits} commits",
                parsed.samples.len()
            );
        }
        Err(e) => {
            eprintln!("openmetrics self-parse FAILED: {e}");
            std::process::exit(1);
        }
    }
    if opts.threads > 1 && snap.attribution.is_empty() {
        eprintln!("no conflicts attributed despite {} contending threads", opts.threads);
        std::process::exit(1);
    }
    if opts.storm && opts.once {
        let t = &snap.totals;
        let fairness =
            t.escalations + t.forced_commits + t.conflicts_deferred + t.delta_commits;
        if fairness == 0 {
            eprintln!(
                "storm run attributed no fairness events (escalations, forced commits, \
                 deferrals, delta commits all zero)"
            );
            std::process::exit(1);
        }
        println!(
            "storm fairness attribution: {} escalations, {} forced, {} deferred, {} delta",
            t.escalations, t.forced_commits, t.conflicts_deferred, t.delta_commits
        );
    }
}
