//! Host crash-recovery stress: `kill -9` a committing child, recover, audit.
//!
//! The process re-executes itself in two roles:
//!
//! * **Child** (`STM_STRESS_CHILD` set to the journal path): truncates any
//!   torn tail left by the previous crash, recovers the heap from the
//!   journal, seeds a fresh [`HostMachine`] with the recovered image, and
//!   then commits `add` transactions from `STM_STRESS_PROCS` contending
//!   threads through a shared fsync'd [`FileJournal`] — forever, until
//!   killed.
//! * **Parent** (no env var): for each round, spawns the child, lets it run
//!   for a random 20–200 ms, delivers `SIGKILL` at an arbitrary point of the
//!   commit pipeline (possibly mid-`write(2)` or mid-`fsync`), then replays
//!   the full journal from the empty base image and audits the recovered
//!   heap against the durability contract. A failing round copies the
//!   journal into the artifact directory (CI uploads it) and exits nonzero.
//!
//! Audited invariants, cumulative across rounds:
//!
//! 1. both counters are monotone non-decreasing (a crash never loses a
//!    flushed commit, and replay never double-applies one);
//! 2. cell 0 ≥ cell 1 (threads alternate `add` on `[0]` and on `[0, 1]`, so
//!    any prefix of the serialization order preserves the inequality);
//! 3. the verified record count is monotone (the journal is append-only and
//!    tails are truncated, never resynchronized past corruption).
//!
//! Usage: `crash_recovery_stress [--rounds N] [--procs N] [--artifacts DIR]
//! [--journal PATH]`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use stm_core::durable::{read_journal, recover, scan_journal, FileJournal};
use stm_core::export::{snapshot_json, MetricsRegistry};
use stm_core::machine::host::HostMachine;
use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::{cell_value, pack_cell, Word};

const CHILD_ENV: &str = "STM_STRESS_CHILD";
const PROCS_ENV: &str = "STM_STRESS_PROCS";
const N_CELLS: usize = 2;
/// A child orphaned by a dying parent stops committing on its own.
const CHILD_MAX_RUNTIME: Duration = Duration::from_secs(60);

fn new_ops(procs: usize) -> StmOps {
    StmOps::new(0, N_CELLS, procs, 2, StmConfig::default())
}

fn base_image() -> Vec<Word> {
    vec![pack_cell(0, 0); N_CELLS]
}

// ---------------------------------------------------------------------------
// Child: recover, seed, commit forever
// ---------------------------------------------------------------------------

fn run_child(journal_path: &Path, procs: usize) {
    // A crash can tear the last record; truncate the file back to its
    // verified prefix so this generation's appends stay scannable.
    let bytes = read_journal(journal_path).unwrap_or_default();
    let scan = scan_journal(&bytes);
    let intact = bytes.len() - scan.tail_discarded;
    if scan.tail_discarded > 0 {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(journal_path)
            .expect("open journal for truncation");
        f.set_len(intact as u64).expect("truncate torn tail");
        f.sync_data().expect("fsync truncation");
    }

    let mut recovered = base_image();
    recover(&mut recovered, &bytes[..intact]);

    let ops = new_ops(procs);
    let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
    {
        // Seed the fresh heap with the recovered image (exact packed words,
        // stamps included) so new records' pre-images continue the history.
        let mut port = machine.port(0);
        let layout = ops.stm().layout();
        for (i, &w) in recovered.iter().enumerate() {
            port.write(layout.cell(i), w);
        }
    }

    let journal = FileJournal::open_append(journal_path).expect("reopen journal");
    // Flight recorders for the post-mortem: a sidecar snapshot is rewritten
    // atomically every ~50 ms so whatever the parent's SIGKILL interrupts,
    // the last completed dump survives for the failure artifact.
    let registry = MetricsRegistry::new(procs, 1 << 14);
    registry.register_op(1, "add1");
    registry.register_op(2, "add2");
    let flight_path = flight_sidecar(journal_path);
    let deadline = Instant::now() + CHILD_MAX_RUNTIME;
    std::thread::scope(|s| {
        for p in 0..procs {
            let ops = ops.clone();
            let machine = machine.clone();
            let mut jrn = journal.handle();
            let registry = registry.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                let mut rec = registry.recorder(p);
                let add = ops.builtins().add;
                // Alternate a single-cell and a two-cell commit so the
                // journal mixes record sizes; both preserve cell0 >= cell1.
                while Instant::now() < deadline {
                    let spec = TxSpec::new(add, &[1 as Word], &[0]);
                    rec.set_op(1);
                    let _ = ops
                        .run(
                            &mut port,
                            &spec,
                            &mut TxOptions::new().observer(&mut rec).journal(&mut jrn),
                        )
                        .expect("unlimited budget cannot be exhausted");
                    let spec = TxSpec::new(add, &[1 as Word, 1 as Word], &[0, 1]);
                    rec.set_op(2);
                    let _ = ops
                        .run(
                            &mut port,
                            &spec,
                            &mut TxOptions::new().observer(&mut rec).journal(&mut jrn),
                        )
                        .expect("unlimited budget cannot be exhausted");
                }
            });
        }
        // Sidecar writer: fold the rings and persist a snapshot until the
        // workers stop (or the parent kills the whole process).
        s.spawn(move || {
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
                write_flight_sidecar(&flight_path, &registry);
            }
        });
    });
}

/// Path of the flight-snapshot sidecar kept next to the journal.
fn flight_sidecar(journal_path: &Path) -> PathBuf {
    let mut os = journal_path.as_os_str().to_os_string();
    os.push(".flight.json");
    PathBuf::from(os)
}

/// Atomically replace the sidecar with a fresh snapshot (write to a temp
/// file, then rename) so a SIGKILL mid-write never leaves a torn dump.
fn write_flight_sidecar(path: &Path, registry: &MetricsRegistry) {
    let snap = registry.snapshot();
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, snapshot_json(&snap)).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

// ---------------------------------------------------------------------------
// Parent: kill, recover, audit
// ---------------------------------------------------------------------------

struct Options {
    rounds: u32,
    procs: usize,
    journal: PathBuf,
    artifacts: PathBuf,
}

fn parse_args() -> Options {
    let mut opts = Options {
        rounds: 8,
        procs: 4,
        journal: std::env::temp_dir()
            .join(format!("stm-crash-stress-{}.journal", std::process::id())),
        artifacts: PathBuf::from("target/stress-artifacts"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--rounds" => opts.rounds = val("--rounds").parse().expect("--rounds: integer"),
            "--procs" => opts.procs = val("--procs").parse().expect("--procs: integer"),
            "--journal" => opts.journal = PathBuf::from(val("--journal")),
            "--artifacts" => opts.artifacts = PathBuf::from(val("--artifacts")),
            other => {
                eprintln!("unknown option: {other}");
                eprintln!("usage: crash_recovery_stress [--rounds N] [--procs N] \
                           [--artifacts DIR] [--journal PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Splitmix-style PRNG for kill timing; seeded from the wall clock so every
/// nightly run probes different crash points.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct Audit {
    counters: [u64; N_CELLS],
    records: u64,
}

fn audit_round(round: u32, bytes: &[u8], prev: &Audit) -> Result<Audit, String> {
    let mut recovered = base_image();
    let report = recover(&mut recovered, bytes);
    let counters = [cell_value(recovered[0]) as u64, cell_value(recovered[1]) as u64];
    let next = Audit { counters, records: report.records_scanned };
    for (i, (&now, &before)) in counters.iter().zip(&prev.counters).enumerate() {
        if now < before {
            return Err(format!(
                "round {round}: cell {i} went backwards ({before} -> {now})"
            ));
        }
    }
    if counters[0] < counters[1] {
        return Err(format!(
            "round {round}: cell0 ({}) < cell1 ({}) — impossible under the workload",
            counters[0], counters[1]
        ));
    }
    if next.records < prev.records {
        return Err(format!(
            "round {round}: verified records went backwards ({} -> {})",
            prev.records, next.records
        ));
    }
    println!(
        "round {round:>3}: counters {:?}  records {}  torn-tail {} B",
        counters, next.records, report.tail_discarded
    );
    Ok(next)
}

fn run_parent(opts: &Options) {
    let exe = std::env::current_exe().expect("own executable path");
    let seed = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed)
        | 1;
    let mut rng = Rng(seed);
    println!(
        "# crash-recovery stress: {} rounds, {} child threads, kill seed {seed:#x}",
        opts.rounds, opts.procs
    );
    std::fs::remove_file(&opts.journal).ok();
    let mut prev = Audit { counters: [0; N_CELLS], records: 0 };
    for round in 1..=opts.rounds {
        let mut child = Command::new(&exe)
            .env(CHILD_ENV, &opts.journal)
            .env(PROCS_ENV, opts.procs.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn child");
        let ms = 20 + rng.next() % 181; // 20..=200 ms of committing
        std::thread::sleep(Duration::from_millis(ms));
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");

        let bytes = read_journal(&opts.journal).expect("read journal after crash");
        match audit_round(round, &bytes, &prev) {
            Ok(next) => prev = next,
            Err(why) => {
                std::fs::create_dir_all(&opts.artifacts).ok();
                let artifact = opts.artifacts.join(format!("failing-round{round}.journal"));
                std::fs::copy(&opts.journal, &artifact).ok();
                eprintln!("FAIL: {why}");
                eprintln!("journal preserved at {}", artifact.display());
                // Preserve the child's last flight snapshot alongside the
                // journal: it names the cells and op pairs that were hot
                // when the crash landed.
                let sidecar = flight_sidecar(&opts.journal);
                if sidecar.exists() {
                    let flight =
                        opts.artifacts.join(format!("failing-round{round}.flight.json"));
                    std::fs::copy(&sidecar, &flight).ok();
                    eprintln!("flight snapshot preserved at {}", flight.display());
                }
                std::process::exit(1);
            }
        }
    }
    let sidecar = flight_sidecar(&opts.journal);
    std::fs::remove_file(&opts.journal).ok();
    std::fs::remove_file(&sidecar).ok();
    println!(
        "# OK: {} crashes survived; final counters {:?}, {} records",
        opts.rounds, prev.counters, prev.records
    );
}

fn main() {
    if let Some(path) = std::env::var_os(CHILD_ENV) {
        let procs = std::env::var(PROCS_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4);
        run_child(Path::new(&path), procs);
        return;
    }
    run_parent(&parse_args());
}
