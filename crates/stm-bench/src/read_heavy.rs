//! Read-heavy workloads gauging the invisible-read fast path.
//!
//! The paper's benchmarks are write-dominated (every operation commits a
//! mutating transaction), so they cannot show what the validated
//! double-collect read ([`stm_core::stm::Stm::try_read_only`]) buys. The two
//! workloads here fill that gap:
//!
//! * **snapshot** — snapshot-dominated: each processor mostly takes an
//!   atomic 8-cell snapshot, with one lockstep 8-cell increment every
//!   [`WRITE_EVERY`] operations. Every snapshot asserts all cells equal —
//!   a torn (inconsistent-cut) read fails the run immediately, so every
//!   data point doubles as a serializability witness.
//! * **readmix** — a 90/10 read/write mix over single cells, the classic
//!   read-mostly key-value shape.
//!
//! Each workload runs in both modes of [`ReadMode`]: `classic` disables the
//! fast path (`fast_read_rounds = 0`, every read pays the full acquiring
//! protocol) and `fast` is the default configuration. Both use the dense
//! `pad_shift = 0` layout, which the simulator's cost models are calibrated
//! against, so the cycle deltas isolate the fast path's effect on shared
//! memory traffic. The simulator is deterministic: the same
//! `(bench, arch, mode, procs, ops, seed)` tuple always yields the same
//! cycle count, which is what lets CI gate on the committed
//! `BENCH_stm.json` baseline (see the `bench_gate` binary).
//!
//! [`run_host_point`] complements the simulated points with wall-clock
//! measurements on the real host machine, where the cache-aligned
//! [`StmConfig::host_tuned`] layout (`pad_shift = 3`) matters; those rows
//! are informational (wall-clock is not reproducible across machines) and
//! are **not** gated by CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::StmConfig;
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

use crate::workloads::{ArchKind, DynModel};

/// Cells in the read-heavy working set (and snapshot width).
pub const READ_CELLS: usize = 8;

/// In the snapshot workload, one write per this many operations.
pub const WRITE_EVERY: u64 = 16;

/// Which read-heavy workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadBench {
    /// Snapshot-dominated: 8-cell snapshots with a lockstep write every
    /// [`WRITE_EVERY`] ops.
    Snapshot,
    /// 90/10 single-cell read/write mix.
    ReadMix,
}

impl ReadBench {
    /// Both read-heavy workloads.
    pub const ALL: [ReadBench; 2] = [ReadBench::Snapshot, ReadBench::ReadMix];

    /// Short name used in tables, CSV, and `BENCH_stm.json`.
    pub fn label(self) -> &'static str {
        match self {
            ReadBench::Snapshot => "snapshot",
            ReadBench::ReadMix => "readmix-90-10",
        }
    }

    /// Inverse of [`ReadBench::label`] (used by the CI gate to replay
    /// baseline rows).
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.label() == s)
    }
}

impl std::fmt::Display for ReadBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fast-path mode under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadMode {
    /// Fast path disabled (`fast_read_rounds = 0`): the pre-fast-path
    /// protocol, every read commits through the acquiring path.
    Classic,
    /// The default configuration: validated double-collect reads with
    /// bounded fallback.
    Fast,
}

impl ReadMode {
    /// Both modes.
    pub const ALL: [ReadMode; 2] = [ReadMode::Classic, ReadMode::Fast];

    /// The STM configuration this mode measures (dense layout in both, so
    /// the simulated cost models stay address-faithful).
    pub fn config(self) -> StmConfig {
        match self {
            ReadMode::Classic => StmConfig { fast_read_rounds: 0, ..StmConfig::default() },
            ReadMode::Fast => StmConfig::default(),
        }
    }

    /// Short name used in tables, CSV, and `BENCH_stm.json`.
    pub fn label(self) -> &'static str {
        match self {
            ReadMode::Classic => "classic",
            ReadMode::Fast => "fast-read",
        }
    }

    /// Inverse of [`ReadMode::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for ReadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured read-heavy configuration (simulated machine).
#[derive(Debug, Clone)]
pub struct ReadPoint {
    /// Workload.
    pub bench: ReadBench,
    /// Machine.
    pub arch: ArchKind,
    /// Fast-path mode.
    pub mode: ReadMode,
    /// Simulated processors.
    pub procs: usize,
    /// Completed operations across all processors.
    pub total_ops: u64,
    /// Schedule seed (recorded so the CI gate can replay the row exactly).
    pub seed: u64,
    /// Virtual cycles for the whole run.
    pub cycles: u64,
    /// Operations per million simulated cycles.
    pub throughput: f64,
    /// Transactions committed through the acquiring protocol. Fast-path
    /// reads never enter it, so under `fast-read` this collapses towards
    /// the write count — itself evidence the fast path carried the reads.
    pub commits: u64,
    /// Attempts failed on an ownership conflict.
    pub conflicts: u64,
    /// Helping spans entered.
    pub helps: u64,
}

/// Run one read-heavy configuration on the simulated machine.
///
/// # Panics
///
/// Panics if any snapshot is torn (cells out of lockstep), if updates are
/// lost, or if the run leaks an ownership — a benchmark that produces wrong
/// answers must never emit a data point.
pub fn run_read_point(
    bench: ReadBench,
    arch: ArchKind,
    mode: ReadMode,
    procs: usize,
    total_ops: u64,
    seed: u64,
) -> ReadPoint {
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let sim = StmSim::new(procs, READ_CELLS, READ_CELLS, mode.config()).seed(seed).jitter(2);
    let adds = Arc::new(AtomicU64::new(0));
    let report = match bench {
        ReadBench::Snapshot => sim.run(DynModel(arch.model(procs)), |_p, ops| {
            let adds = Arc::clone(&adds);
            move |mut port: SimPort| {
                let cells: Vec<usize> = (0..READ_CELLS).collect();
                for i in 0..per_proc {
                    if i % WRITE_EVERY == 0 {
                        ops.fetch_add_many(&mut port, &cells, &[1; READ_CELLS]);
                        adds.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let snap = ops.snapshot(&mut port, &cells);
                        assert!(
                            snap.windows(2).all(|w| w[0] == w[1]),
                            "torn snapshot (inconsistent cut): {snap:?}"
                        );
                    }
                }
            }
        }),
        ReadBench::ReadMix => sim.run(DynModel(arch.model(procs)), |p, ops| {
            let adds = Arc::clone(&adds);
            move |mut port: SimPort| {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    seed ^ (p as u64).wrapping_mul(0x9E37_79B9),
                );
                for _ in 0..per_proc {
                    let c = rng.gen_range(0..READ_CELLS);
                    if rng.gen_range(0..10u32) == 0 {
                        ops.fetch_add(&mut port, c, 1);
                        adds.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let _ = ops.snapshot(&mut port, &[c]);
                    }
                }
            }
        }),
    };
    // Correctness gates: conservation and protocol quiescence.
    let writes = adds.load(Ordering::Relaxed);
    let cells = sim.all_cells(&report);
    match bench {
        ReadBench::Snapshot => {
            assert!(
                cells.iter().all(|&v| v as u64 == writes),
                "lockstep cells must all equal the write count {writes}: {cells:?}"
            );
        }
        ReadBench::ReadMix => {
            let sum: u64 = cells.iter().map(|&v| v as u64).sum();
            assert_eq!(sum, writes, "lost updates in read/write mix");
        }
    }
    assert!(sim.leaked_ownerships(&report).is_empty(), "run must end protocol-quiescent");
    let cycles = report.cycles;
    ReadPoint {
        bench,
        arch,
        mode,
        procs,
        total_ops: actual_total,
        seed,
        cycles,
        throughput: if cycles == 0 {
            0.0
        } else {
            actual_total as f64 * 1_000_000.0 / cycles as f64
        },
        commits: report.stats.commits(),
        conflicts: report.stats.aborts(),
        helps: report.stats.helps(),
    }
}

/// One wall-clock measurement on the real host machine (informational; not
/// CI-gated).
#[derive(Debug, Clone)]
pub struct HostPoint {
    /// Configuration label (`classic-dense`, `fast-dense`, `fast-padded`).
    pub config: &'static str,
    /// Real threads.
    pub procs: usize,
    /// Completed operations across all threads.
    pub total_ops: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub nanos: u64,
    /// Operations per second.
    pub ops_per_sec: f64,
}

/// The host configuration ladder: the trajectory from the pre-fast-path
/// protocol to the cache-aligned fast path.
pub const HOST_CONFIGS: [(&str, bool, bool); 3] = [
    // (label, fast path on, padded layout)
    ("classic-dense", false, false),
    ("fast-dense", true, false),
    ("fast-padded", true, true),
];

/// Run the snapshot-dominated workload on the real host machine with real
/// threads, measuring wall-clock time.
///
/// `fast` toggles the read-only fast path; `padded` selects the
/// cache-aligned [`StmConfig::host_tuned`] layout over the dense one.
///
/// # Panics
///
/// Panics on a torn snapshot or lost update, as in [`run_read_point`].
pub fn run_host_point(
    config_label: &'static str,
    fast: bool,
    padded: bool,
    procs: usize,
    total_ops: u64,
) -> HostPoint {
    let mut config = if padded { StmConfig::host_tuned() } else { StmConfig::default() };
    if !fast {
        config.fast_read_rounds = 0;
    }
    let ops = StmOps::new(0, READ_CELLS, procs, READ_CELLS, config);
    let machine = HostMachine::new(ops.stm().layout().words_needed(), procs);
    let per_proc = (total_ops / procs as u64).max(1);
    let actual_total = per_proc * procs as u64;
    let adds = Arc::new(AtomicU64::new(0));
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..procs {
            let ops = ops.clone();
            let machine = machine.clone();
            let adds = Arc::clone(&adds);
            s.spawn(move || {
                let mut port = machine.port(p);
                let cells: Vec<usize> = (0..READ_CELLS).collect();
                for i in 0..per_proc {
                    if i % WRITE_EVERY == 0 {
                        ops.fetch_add_many(&mut port, &cells, &[1; READ_CELLS]);
                        adds.fetch_add(1, Ordering::Relaxed);
                    } else {
                        let snap = ops.snapshot(&mut port, &cells);
                        assert!(
                            snap.windows(2).all(|w| w[0] == w[1]),
                            "torn snapshot on host: {snap:?}"
                        );
                    }
                }
            });
        }
    });
    let nanos = start.elapsed().as_nanos() as u64;
    let writes = adds.load(Ordering::Relaxed);
    let mut port = machine.port(0);
    let cells: Vec<usize> = (0..READ_CELLS).collect();
    let finals = ops.snapshot(&mut port, &cells);
    assert!(
        finals.iter().all(|&v| v as u64 == writes),
        "lockstep cells must all equal the write count {writes}: {finals:?}"
    );
    HostPoint {
        config: config_label,
        procs,
        total_ops: actual_total,
        nanos,
        ops_per_sec: if nanos == 0 {
            0.0
        } else {
            actual_total as f64 * 1e9 / nanos as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_mode_beats_classic_on_snapshot_workload() {
        // The headline delta: invisible reads cut shared-memory traffic, so
        // the same workload takes fewer simulated cycles.
        for arch in [ArchKind::Bus, ArchKind::Mesh] {
            let classic =
                run_read_point(ReadBench::Snapshot, arch, ReadMode::Classic, 4, 256, 7);
            let fast = run_read_point(ReadBench::Snapshot, arch, ReadMode::Fast, 4, 256, 7);
            assert!(
                fast.throughput > classic.throughput,
                "{arch}: fast {:.1} must beat classic {:.1}",
                fast.throughput,
                classic.throughput
            );
            // Fast-path reads bypass the acquiring protocol entirely, so
            // protocol commits collapse towards the write count.
            assert!(fast.commits < classic.commits, "{arch}: reads must leave the protocol");
        }
    }

    #[test]
    fn read_mix_conserves_and_is_deterministic() {
        let a = run_read_point(ReadBench::ReadMix, ArchKind::Bus, ReadMode::Fast, 3, 120, 11);
        let b = run_read_point(ReadBench::ReadMix, ArchKind::Bus, ReadMode::Fast, 3, 120, 11);
        assert_eq!(a.cycles, b.cycles, "simulated runs must be reproducible");
        assert_eq!(a.total_ops, 120);
        assert!(a.throughput > 0.0);
    }

    #[test]
    fn host_ladder_runs_and_checks() {
        for (label, fast, padded) in HOST_CONFIGS {
            let p = run_host_point(label, fast, padded, 2, 2_000);
            assert_eq!(p.total_ops, 2_000);
            assert!(p.ops_per_sec > 0.0, "{label}");
        }
    }
}
