//! Address-space layout of one STM instance inside a machine.
//!
//! Mirroring the paper's data structures, an STM instance occupies a
//! contiguous region of the machine's shared memory holding
//!
//! * `Memory[0..n_cells]` — the transactional cells (packed `stamp|value`),
//! * `Ownerships[0..n_cells]` — one ownership word per cell,
//! * `Records[0..n_procs]` — one transaction record per processor, reused
//!   across that processor's transactions (versioned), containing the status
//!   word, the declared data set (size + sorted cell indices), the
//!   transaction's code reference (opcode + parameters), and the old-value
//!   agreement entries.
//!
//! # Cache alignment
//!
//! The layout supports an optional `pad_shift`: with `pad_shift = s`, cells
//! and ownership words are spread one per `1 << s` words, and each record
//! base is rounded up to a `1 << s`-word boundary. On a real machine with
//! 64-byte cache lines (8 × 8-byte words), `pad_shift = 3` puts every cell,
//! every ownership word, and every record on its own cache line, eliminating
//! false sharing between processors hammering adjacent protocol words. The
//! default (`pad_shift = 0`) is the dense, address-faithful layout that the
//! `stm-sim` bus/mesh cost models assume — simulated figures stay comparable
//! to the paper's.
//!
//! # The sharded arena geometry
//!
//! [`StmLayout::arena`] lays the same protocol words out for a *growable*
//! cell heap: records come first, then up to `max_segments` fixed-size
//! segments, each holding `seg_cells` cells immediately followed by their
//! `seg_cells` ownership words. Segments are assigned round-robin to
//! `n_shards` shards (`shard = segment % n_shards`), so each shard's
//! protocol words cluster in its own address runs — which is what lets the
//! simulator's cost models charge cross-shard traffic, and what keeps
//! unrelated shards' ownership words off each other's cache lines on the
//! host.
//!
//! The layout itself remains an immutable, pure address function over the
//! *maximum* capacity: growth (committing fresh segments, allocating and
//! freeing cells) lives entirely in [`CellArena`](crate::arena::CellArena).
//! A cell's address therefore never moves once handed out, every compiled
//! [`TxPlan`](crate::stm::TxPlan) stays valid across growth, and — because
//! both `cell(idx)` and `ownership(idx)` are strictly increasing in `idx` —
//! sorting a data set by [`CellIdx`] still sorts it by ownership address, so
//! the paper's ascending-order acquisition argument survives verbatim
//! (docs/protocol.md §15).

use crate::word::{Addr, CellIdx, MAX_DATASET, MAX_PROCS};

/// Maximum number of parameter words a transaction program may take.
pub const MAX_PARAMS: usize = 8;

/// Offsets of the fixed fields inside a record (in words, relative to the
/// record base).
pub(crate) mod rec {
    /// Status word (version | code | fail index).
    pub const STATUS: usize = 0;
    /// Data-set size.
    pub const SIZE: usize = 1;
    /// Opcode: index into the process-wide program table.
    pub const OPCODE: usize = 2;
    /// Number of live parameter words.
    pub const NPARAMS: usize = 3;
    /// First parameter word.
    pub const PARAMS: usize = 4;
    /// First data-set address word (cell indices, ascending).
    pub const ADDRS: usize = PARAMS + super::MAX_PARAMS;
}

/// How cells and ownership words are arranged inside the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Geom {
    /// The paper's flat arrangement: all cells, then all ownership words,
    /// then the records.
    Fixed,
    /// Sharded segment arena: records first, then `max_segments` segments of
    /// `1 << seg_shift` cells each (cells then ownerships per segment),
    /// segment `s` belonging to shard `s & (n_shards - 1)` with
    /// `n_shards = 1 << shard_shift`.
    Arena { seg_shift: u8, shard_shift: u8 },
}

/// The segment-region geometry of an arena layout, as the simulator's cost
/// models need it: enough to map a raw address back to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGeometry {
    /// First address of the segment region (addresses below it are records).
    pub segments_base: Addr,
    /// One-past-the-end address of the segment region.
    pub segments_end: Addr,
    /// Words per segment (cells + ownerships, padded).
    pub seg_words: usize,
    /// Number of shards (power of two).
    pub n_shards: usize,
}

impl ShardGeometry {
    /// Shard owning `addr`, or `None` if the address lies outside the
    /// segment region (records, journal, other instances...).
    #[inline]
    pub fn shard_of(&self, addr: Addr) -> Option<usize> {
        if addr < self.segments_base || addr >= self.segments_end {
            return None;
        }
        let seg = (addr - self.segments_base) / self.seg_words;
        Some(seg & (self.n_shards - 1))
    }
}

/// Computes the addresses of every STM protocol word inside a machine's
/// address space.
///
/// # Examples
///
/// ```
/// use stm_core::layout::StmLayout;
///
/// let layout = StmLayout::new(0, 128, 4, 8);
/// assert!(layout.words_needed() > 128 * 2);
/// assert_eq!(layout.cell(0), 0);
/// assert_eq!(layout.ownership(0), 128);
///
/// // Cache-aligned: one word per 64-byte line (8 words) on the host.
/// let padded = StmLayout::with_pad_shift(0, 128, 4, 8, 3);
/// assert_eq!(padded.cell(1) - padded.cell(0), 8);
/// assert_eq!(padded.record(0) % 8, 0);
///
/// // Growable sharded arena: 4 shards, 16-cell segments, up to 8 segments.
/// let arena = StmLayout::arena(0, 4, 8, 0, 4, 16, 8);
/// assert_eq!(arena.n_cells(), 8 * 16);
/// assert_eq!(arena.shard_of(17), 1); // cell 17 lives in segment 1 → shard 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmLayout {
    base: Addr,
    n_cells: usize,
    n_procs: usize,
    max_locs: usize,
    pad_shift: u8,
    geom: Geom,
}

impl StmLayout {
    /// Lay out an STM instance at `base` with `n_cells` transactional cells
    /// for `n_procs` processors, allowing data sets of up to `max_locs`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics if `max_locs` is 0 or exceeds [`MAX_DATASET`], or if `n_procs`
    /// is 0 or exceeds [`MAX_PROCS`].
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, max_locs: usize) -> Self {
        Self::with_pad_shift(base, n_cells, n_procs, max_locs, 0)
    }

    /// Like [`StmLayout::new`], but spreading protocol words so that each
    /// cell, each ownership word, and each record starts on a
    /// `1 << pad_shift`-word boundary (its own cache line for
    /// `pad_shift = 3` on 64-byte-line hosts).
    ///
    /// # Panics
    ///
    /// Panics on the same out-of-range arguments as [`StmLayout::new`], or
    /// if `pad_shift` exceeds 6 (128 words per line is already absurd).
    pub fn with_pad_shift(
        base: Addr,
        n_cells: usize,
        n_procs: usize,
        max_locs: usize,
        pad_shift: u8,
    ) -> Self {
        assert!(max_locs > 0 && max_locs <= MAX_DATASET, "max_locs out of range");
        assert!(n_procs > 0 && n_procs <= MAX_PROCS, "n_procs out of range");
        assert!(pad_shift <= 6, "pad_shift out of range");
        StmLayout { base, n_cells, n_procs, max_locs, pad_shift, geom: Geom::Fixed }
    }

    /// Lay out a growable sharded cell arena at `base`: `n_procs` records
    /// first, then up to `max_segments` segments of `seg_cells` cells each
    /// (cells followed by their ownership words), segments striped
    /// round-robin over `n_shards` shards.
    ///
    /// The returned layout addresses the *full* capacity
    /// (`max_segments * seg_cells` cells); which cells actually exist at any
    /// moment is [`CellArena`](crate::arena::CellArena)'s business. Untouched
    /// segments cost only zero pages on the host, so capacity is cheap until
    /// grown into.
    ///
    /// # Panics
    ///
    /// Panics on the same out-of-range arguments as
    /// [`StmLayout::with_pad_shift`], or if `seg_cells`/`n_shards` are not
    /// powers of two, or if `max_segments` is 0.
    pub fn arena(
        base: Addr,
        n_procs: usize,
        max_locs: usize,
        pad_shift: u8,
        n_shards: usize,
        seg_cells: usize,
        max_segments: usize,
    ) -> Self {
        assert!(max_locs > 0 && max_locs <= MAX_DATASET, "max_locs out of range");
        assert!(n_procs > 0 && n_procs <= MAX_PROCS, "n_procs out of range");
        assert!(pad_shift <= 6, "pad_shift out of range");
        assert!(seg_cells.is_power_of_two(), "seg_cells must be a power of two");
        assert!(n_shards.is_power_of_two(), "n_shards must be a power of two");
        assert!(max_segments > 0, "max_segments must be positive");
        StmLayout {
            base,
            n_cells: max_segments * seg_cells,
            n_procs,
            max_locs,
            pad_shift,
            geom: Geom::Arena {
                seg_shift: seg_cells.trailing_zeros() as u8,
                shard_shift: n_shards.trailing_zeros() as u8,
            },
        }
    }

    /// The configured padding shift (0 = dense, address-faithful layout).
    pub fn pad_shift(&self) -> u8 {
        self.pad_shift
    }

    /// Words per padding unit (`1 << pad_shift`); consecutive cells,
    /// ownership words, and record bases are this many words apart.
    #[inline]
    pub fn pad_unit(&self) -> usize {
        1 << self.pad_shift
    }

    /// Number of transactional cells (for an arena layout: full capacity).
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of per-processor records.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Maximum data-set size per transaction.
    pub fn max_locs(&self) -> usize {
        self.max_locs
    }

    /// Whether this is a sharded arena layout.
    pub fn is_arena(&self) -> bool {
        matches!(self.geom, Geom::Arena { .. })
    }

    /// Cells per segment (1 segment spanning everything for fixed layouts).
    pub fn seg_cells(&self) -> usize {
        match self.geom {
            Geom::Fixed => self.n_cells,
            Geom::Arena { seg_shift, .. } => 1 << seg_shift,
        }
    }

    /// Maximum number of segments (1 for fixed layouts).
    pub fn max_segments(&self) -> usize {
        match self.geom {
            Geom::Fixed => 1,
            Geom::Arena { seg_shift, .. } => self.n_cells >> seg_shift,
        }
    }

    /// Number of shards (1 for fixed layouts).
    pub fn n_shards(&self) -> usize {
        match self.geom {
            Geom::Fixed => 1,
            Geom::Arena { shard_shift, .. } => 1 << shard_shift,
        }
    }

    /// Segment holding cell `idx` (0 for fixed layouts).
    #[inline]
    pub fn segment_of(&self, idx: CellIdx) -> usize {
        match self.geom {
            Geom::Fixed => 0,
            Geom::Arena { seg_shift, .. } => idx >> seg_shift,
        }
    }

    /// Shard owning cell `idx` (0 for fixed layouts).
    #[inline]
    pub fn shard_of(&self, idx: CellIdx) -> usize {
        match self.geom {
            Geom::Fixed => 0,
            Geom::Arena { seg_shift, shard_shift } => {
                (idx >> seg_shift) & ((1 << shard_shift) - 1)
            }
        }
    }

    /// The global cell index of `slot` within `seg`. Inverse of
    /// ([`segment_of`](Self::segment_of), `idx % seg_cells`); ascending in
    /// `(seg, slot)` lexicographic order, which is what keeps the sorted
    /// data-set → ascending-ownership-address argument intact.
    #[inline]
    pub fn cell_index(&self, seg: usize, slot: usize) -> CellIdx {
        debug_assert!(slot < self.seg_cells(), "slot {slot} out of range");
        match self.geom {
            Geom::Fixed => slot,
            Geom::Arena { seg_shift, .. } => (seg << seg_shift) + slot,
        }
    }

    /// Words per segment: cells plus ownership words, padded.
    #[inline]
    fn seg_words(&self) -> usize {
        (2 * self.seg_cells()) << self.pad_shift
    }

    /// The segment-region geometry, for cost models that charge cross-shard
    /// traffic. `None` for fixed layouts.
    pub fn shard_geometry(&self) -> Option<ShardGeometry> {
        match self.geom {
            Geom::Fixed => None,
            Geom::Arena { .. } => {
                let segments_base = self.base + self.n_procs * self.record_stride();
                Some(ShardGeometry {
                    segments_base,
                    segments_end: segments_base + self.max_segments() * self.seg_words(),
                    seg_words: self.seg_words(),
                    n_shards: self.n_shards(),
                })
            }
        }
    }

    /// Words occupied by one record, including any trailing padding needed
    /// to keep consecutive record bases on distinct padding units.
    pub fn record_stride(&self) -> usize {
        let dense = rec::ADDRS + 2 * self.max_locs;
        let unit = self.pad_unit();
        dense.div_ceil(unit) * unit
    }

    /// Total words this instance occupies starting at its base address.
    pub fn words_needed(&self) -> usize {
        match self.geom {
            Geom::Fixed => 2 * self.n_cells * self.pad_unit() + self.n_procs * self.record_stride(),
            Geom::Arena { .. } => {
                self.n_procs * self.record_stride() + self.max_segments() * self.seg_words()
            }
        }
    }

    /// One-past-the-end address of the region.
    pub fn end(&self) -> Addr {
        self.base + self.words_needed()
    }

    /// Address of transactional cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` is out of range.
    #[inline]
    pub fn cell(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        match self.geom {
            Geom::Fixed => self.base + (idx << self.pad_shift),
            Geom::Arena { seg_shift, .. } => {
                let seg = idx >> seg_shift;
                let slot = idx & ((1 << seg_shift) - 1);
                self.base
                    + self.n_procs * self.record_stride()
                    + seg * self.seg_words()
                    + (slot << self.pad_shift)
            }
        }
    }

    /// Address of the ownership word guarding cell `idx`.
    ///
    /// Strictly increasing in `idx` for both geometries, so a data set
    /// sorted by cell index is acquired in ascending address order.
    #[inline]
    pub fn ownership(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        match self.geom {
            Geom::Fixed => self.base + ((self.n_cells + idx) << self.pad_shift),
            Geom::Arena { seg_shift, .. } => {
                let seg = idx >> seg_shift;
                let slot = idx & ((1 << seg_shift) - 1);
                self.base
                    + self.n_procs * self.record_stride()
                    + seg * self.seg_words()
                    + (((1 << seg_shift) + slot) << self.pad_shift)
            }
        }
    }

    /// Base address of processor `proc`'s record.
    #[inline]
    pub fn record(&self, proc: usize) -> Addr {
        debug_assert!(proc < self.n_procs, "processor id {proc} out of range");
        match self.geom {
            Geom::Fixed => {
                self.base + ((2 * self.n_cells) << self.pad_shift) + proc * self.record_stride()
            }
            Geom::Arena { .. } => self.base + proc * self.record_stride(),
        }
    }

    /// Address of `proc`'s status word.
    #[inline]
    pub fn status(&self, proc: usize) -> Addr {
        self.record(proc) + rec::STATUS
    }

    /// Address of `proc`'s data-set size word.
    #[inline]
    pub fn size(&self, proc: usize) -> Addr {
        self.record(proc) + rec::SIZE
    }

    /// Address of `proc`'s opcode word.
    #[inline]
    pub fn opcode(&self, proc: usize) -> Addr {
        self.record(proc) + rec::OPCODE
    }

    /// Address of `proc`'s parameter-count word.
    #[inline]
    pub fn nparams(&self, proc: usize) -> Addr {
        self.record(proc) + rec::NPARAMS
    }

    /// Address of `proc`'s `i`-th parameter word.
    #[inline]
    pub fn param(&self, proc: usize, i: usize) -> Addr {
        debug_assert!(i < MAX_PARAMS, "parameter index {i} out of range");
        self.record(proc) + rec::PARAMS + i
    }

    /// Address of `proc`'s `j`-th data-set address word.
    #[inline]
    pub fn addr_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + j
    }

    /// Address of `proc`'s `j`-th old-value agreement entry.
    #[inline]
    pub fn oldval_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + self.max_locs + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_addrs(l: &StmLayout) -> Vec<Addr> {
        let mut v = Vec::new();
        for i in 0..l.n_cells() {
            v.push(l.cell(i));
        }
        for i in 0..l.n_cells() {
            v.push(l.ownership(i));
        }
        for p in 0..l.n_procs() {
            v.push(l.status(p));
            v.push(l.size(p));
            v.push(l.opcode(p));
            v.push(l.nparams(p));
            for i in 0..MAX_PARAMS {
                v.push(l.param(p, i));
            }
            for j in 0..l.max_locs() {
                v.push(l.addr_slot(p, j));
                v.push(l.oldval_slot(p, j));
            }
        }
        v
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = StmLayout::new(10, 100, 8, 16);
        let addrs = all_addrs(&l);
        let seen: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
        assert_eq!(seen.len(), addrs.len(), "duplicate addresses");
        // Dense layout wastes no words.
        assert_eq!(seen.len(), l.words_needed());
        assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
    }

    #[test]
    fn padded_regions_do_not_overlap() {
        for shift in [1u8, 3, 6] {
            let l = StmLayout::with_pad_shift(10, 100, 8, 16, shift);
            let addrs = all_addrs(&l);
            let seen: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
            assert_eq!(seen.len(), addrs.len(), "duplicate addresses at shift {shift}");
            // Padded layout leaves gaps, but never escapes its region.
            assert!(seen.len() <= l.words_needed());
            assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
        }
    }

    #[test]
    fn pad_shift_separates_cache_lines() {
        // With pad_shift = 3 (64-byte lines of 8-byte words), every cell,
        // every ownership word, and every record lives on its own line.
        let l = StmLayout::with_pad_shift(0, 32, 4, 8, 3);
        let line = |a: Addr| a / 8;
        let mut lines = std::collections::HashSet::new();
        for i in 0..l.n_cells() {
            assert!(lines.insert(line(l.cell(i))), "cell {i} shares a line");
        }
        for i in 0..l.n_cells() {
            assert!(lines.insert(line(l.ownership(i))), "ownership {i} shares a line");
        }
        for p in 0..l.n_procs() {
            // Records are multi-word; only their *bases* must start fresh
            // lines so two processors' status words never share one.
            assert!(lines.insert(line(l.record(p))), "record {p} shares a line");
            assert_eq!(l.record(p) % 8, 0, "record {p} not line-aligned");
        }
    }

    #[test]
    fn dense_layout_is_address_faithful() {
        // The simulator's bus/mesh cost models rely on the dense layout the
        // paper assumes: consecutive cells at consecutive addresses.
        let l = StmLayout::new(0, 16, 2, 4);
        assert_eq!(l.pad_shift(), 0);
        for i in 0..16 {
            assert_eq!(l.cell(i), i);
            assert_eq!(l.ownership(i), 16 + i);
        }
    }

    #[test]
    fn words_needed_matches_stride() {
        let l = StmLayout::new(0, 10, 3, 4);
        assert_eq!(l.record_stride(), super::rec::ADDRS + 8);
        assert_eq!(l.words_needed(), 20 + 3 * l.record_stride());
    }

    #[test]
    #[should_panic(expected = "max_locs out of range")]
    fn zero_max_locs_panics() {
        let _ = StmLayout::new(0, 1, 1, 0);
    }

    #[test]
    fn arena_regions_do_not_overlap() {
        for shift in [0u8, 1, 3] {
            let l = StmLayout::arena(10, 3, 8, shift, 4, 16, 8);
            assert!(l.is_arena());
            assert_eq!(l.n_cells(), 128);
            let addrs = all_addrs(&l);
            let seen: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
            assert_eq!(seen.len(), addrs.len(), "duplicate addresses at shift {shift}");
            assert!(seen.len() <= l.words_needed());
            assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
            if shift == 0 {
                // Dense arena wastes no words either.
                assert_eq!(seen.len(), l.words_needed());
            }
        }
    }

    #[test]
    fn arena_ownership_addresses_strictly_ascend() {
        // The lock-freedom argument needs: sorting by CellIdx sorts by
        // ownership address, across segment boundaries included.
        for shift in [0u8, 2] {
            let l = StmLayout::arena(0, 2, 8, shift, 2, 8, 6);
            for i in 1..l.n_cells() {
                assert!(l.ownership(i) > l.ownership(i - 1), "ownership not ascending at {i}");
                assert!(l.cell(i) > l.cell(i - 1), "cell not ascending at {i}");
            }
        }
    }

    #[test]
    fn arena_shard_mapping_round_trips() {
        let l = StmLayout::arena(100, 2, 8, 1, 4, 16, 12);
        let geom = l.shard_geometry().expect("arena has a shard geometry");
        assert_eq!(l.n_shards(), 4);
        assert_eq!(l.max_segments(), 12);
        for idx in 0..l.n_cells() {
            let seg = l.segment_of(idx);
            let slot = idx % l.seg_cells();
            assert_eq!(l.cell_index(seg, slot), idx);
            assert_eq!(l.shard_of(idx), seg % 4);
            // The address-level mapping used by the cost models agrees with
            // the index-level mapping, for cells and ownership words alike.
            assert_eq!(geom.shard_of(l.cell(idx)), Some(l.shard_of(idx)));
            assert_eq!(geom.shard_of(l.ownership(idx)), Some(l.shard_of(idx)));
        }
        // Record words belong to no shard.
        assert_eq!(geom.shard_of(l.record(0)), None);
        assert_eq!(geom.shard_of(l.end()), None);
    }

    #[test]
    fn fixed_geometry_formulas_are_unchanged() {
        // The arena refactor must not perturb a single fixed-layout address:
        // bench_gate pins simulated schedules bit-exactly.
        let l = StmLayout::with_pad_shift(7, 33, 5, 9, 2);
        let unit = 1 << 2;
        for i in 0..33 {
            assert_eq!(l.cell(i), 7 + i * unit);
            assert_eq!(l.ownership(i), 7 + (33 + i) * unit);
        }
        for p in 0..5 {
            assert_eq!(l.record(p), 7 + 66 * unit + p * l.record_stride());
        }
        assert_eq!(l.shard_of(32), 0);
        assert_eq!(l.seg_cells(), 33);
        assert!(l.shard_geometry().is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn arena_non_pow2_seg_cells_panics() {
        let _ = StmLayout::arena(0, 1, 1, 0, 2, 12, 4);
    }
}
