//! Address-space layout of one STM instance inside a machine.
//!
//! Mirroring the paper's data structures, an STM instance occupies a
//! contiguous region of the machine's shared memory holding
//!
//! * `Memory[0..n_cells]` — the transactional cells (packed `stamp|value`),
//! * `Ownerships[0..n_cells]` — one ownership word per cell,
//! * `Records[0..n_procs]` — one transaction record per processor, reused
//!   across that processor's transactions (versioned), containing the status
//!   word, the declared data set (size + sorted cell indices), the
//!   transaction's code reference (opcode + parameters), and the old-value
//!   agreement entries.

use crate::word::{Addr, CellIdx, MAX_DATASET, MAX_PROCS};

/// Maximum number of parameter words a transaction program may take.
pub const MAX_PARAMS: usize = 8;

/// Offsets of the fixed fields inside a record (in words, relative to the
/// record base).
pub(crate) mod rec {
    /// Status word (version | code | fail index).
    pub const STATUS: usize = 0;
    /// Data-set size.
    pub const SIZE: usize = 1;
    /// Opcode: index into the process-wide program table.
    pub const OPCODE: usize = 2;
    /// Number of live parameter words.
    pub const NPARAMS: usize = 3;
    /// First parameter word.
    pub const PARAMS: usize = 4;
    /// First data-set address word (cell indices, ascending).
    pub const ADDRS: usize = PARAMS + super::MAX_PARAMS;
}

/// Computes the addresses of every STM protocol word inside a machine's
/// address space.
///
/// # Examples
///
/// ```
/// use stm_core::layout::StmLayout;
///
/// let layout = StmLayout::new(0, 128, 4, 8);
/// assert!(layout.words_needed() > 128 * 2);
/// assert_eq!(layout.cell(0), 0);
/// assert_eq!(layout.ownership(0), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmLayout {
    base: Addr,
    n_cells: usize,
    n_procs: usize,
    max_locs: usize,
}

impl StmLayout {
    /// Lay out an STM instance at `base` with `n_cells` transactional cells
    /// for `n_procs` processors, allowing data sets of up to `max_locs`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics if `max_locs` is 0 or exceeds [`MAX_DATASET`], or if `n_procs`
    /// is 0 or exceeds [`MAX_PROCS`].
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, max_locs: usize) -> Self {
        assert!(max_locs > 0 && max_locs <= MAX_DATASET, "max_locs out of range");
        assert!(n_procs > 0 && n_procs <= MAX_PROCS, "n_procs out of range");
        StmLayout { base, n_cells, n_procs, max_locs }
    }

    /// Number of transactional cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of per-processor records.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Maximum data-set size per transaction.
    pub fn max_locs(&self) -> usize {
        self.max_locs
    }

    /// Words occupied by one record.
    pub fn record_stride(&self) -> usize {
        rec::ADDRS + 2 * self.max_locs
    }

    /// Total words this instance occupies starting at its base address.
    pub fn words_needed(&self) -> usize {
        2 * self.n_cells + self.n_procs * self.record_stride()
    }

    /// One-past-the-end address of the region.
    pub fn end(&self) -> Addr {
        self.base + self.words_needed()
    }

    /// Address of transactional cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` is out of range.
    #[inline]
    pub fn cell(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        self.base + idx
    }

    /// Address of the ownership word guarding cell `idx`.
    #[inline]
    pub fn ownership(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        self.base + self.n_cells + idx
    }

    /// Base address of processor `proc`'s record.
    #[inline]
    pub fn record(&self, proc: usize) -> Addr {
        debug_assert!(proc < self.n_procs, "processor id {proc} out of range");
        self.base + 2 * self.n_cells + proc * self.record_stride()
    }

    /// Address of `proc`'s status word.
    #[inline]
    pub fn status(&self, proc: usize) -> Addr {
        self.record(proc) + rec::STATUS
    }

    /// Address of `proc`'s data-set size word.
    #[inline]
    pub fn size(&self, proc: usize) -> Addr {
        self.record(proc) + rec::SIZE
    }

    /// Address of `proc`'s opcode word.
    #[inline]
    pub fn opcode(&self, proc: usize) -> Addr {
        self.record(proc) + rec::OPCODE
    }

    /// Address of `proc`'s parameter-count word.
    #[inline]
    pub fn nparams(&self, proc: usize) -> Addr {
        self.record(proc) + rec::NPARAMS
    }

    /// Address of `proc`'s `i`-th parameter word.
    #[inline]
    pub fn param(&self, proc: usize, i: usize) -> Addr {
        debug_assert!(i < MAX_PARAMS, "parameter index {i} out of range");
        self.record(proc) + rec::PARAMS + i
    }

    /// Address of `proc`'s `j`-th data-set address word.
    #[inline]
    pub fn addr_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + j
    }

    /// Address of `proc`'s `j`-th old-value agreement entry.
    #[inline]
    pub fn oldval_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + self.max_locs + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = StmLayout::new(10, 100, 8, 16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..l.n_cells() {
            assert!(seen.insert(l.cell(i)));
        }
        for i in 0..l.n_cells() {
            assert!(seen.insert(l.ownership(i)));
        }
        for p in 0..l.n_procs() {
            assert!(seen.insert(l.status(p)));
            assert!(seen.insert(l.size(p)));
            assert!(seen.insert(l.opcode(p)));
            assert!(seen.insert(l.nparams(p)));
            for i in 0..MAX_PARAMS {
                assert!(seen.insert(l.param(p, i)));
            }
            for j in 0..l.max_locs() {
                assert!(seen.insert(l.addr_slot(p, j)));
                assert!(seen.insert(l.oldval_slot(p, j)));
            }
        }
        assert_eq!(seen.len(), l.words_needed());
        assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
    }

    #[test]
    fn words_needed_matches_stride() {
        let l = StmLayout::new(0, 10, 3, 4);
        assert_eq!(l.record_stride(), super::rec::ADDRS + 8);
        assert_eq!(l.words_needed(), 20 + 3 * l.record_stride());
    }

    #[test]
    #[should_panic(expected = "max_locs out of range")]
    fn zero_max_locs_panics() {
        let _ = StmLayout::new(0, 1, 1, 0);
    }
}
