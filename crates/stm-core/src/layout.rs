//! Address-space layout of one STM instance inside a machine.
//!
//! Mirroring the paper's data structures, an STM instance occupies a
//! contiguous region of the machine's shared memory holding
//!
//! * `Memory[0..n_cells]` — the transactional cells (packed `stamp|value`),
//! * `Ownerships[0..n_cells]` — one ownership word per cell,
//! * `Records[0..n_procs]` — one transaction record per processor, reused
//!   across that processor's transactions (versioned), containing the status
//!   word, the declared data set (size + sorted cell indices), the
//!   transaction's code reference (opcode + parameters), and the old-value
//!   agreement entries.
//!
//! # Cache alignment
//!
//! The layout supports an optional `pad_shift`: with `pad_shift = s`, cells
//! and ownership words are spread one per `1 << s` words, and each record
//! base is rounded up to a `1 << s`-word boundary. On a real machine with
//! 64-byte cache lines (8 × 8-byte words), `pad_shift = 3` puts every cell,
//! every ownership word, and every record on its own cache line, eliminating
//! false sharing between processors hammering adjacent protocol words. The
//! default (`pad_shift = 0`) is the dense, address-faithful layout that the
//! `stm-sim` bus/mesh cost models assume — simulated figures stay comparable
//! to the paper's.

use crate::word::{Addr, CellIdx, MAX_DATASET, MAX_PROCS};

/// Maximum number of parameter words a transaction program may take.
pub const MAX_PARAMS: usize = 8;

/// Offsets of the fixed fields inside a record (in words, relative to the
/// record base).
pub(crate) mod rec {
    /// Status word (version | code | fail index).
    pub const STATUS: usize = 0;
    /// Data-set size.
    pub const SIZE: usize = 1;
    /// Opcode: index into the process-wide program table.
    pub const OPCODE: usize = 2;
    /// Number of live parameter words.
    pub const NPARAMS: usize = 3;
    /// First parameter word.
    pub const PARAMS: usize = 4;
    /// First data-set address word (cell indices, ascending).
    pub const ADDRS: usize = PARAMS + super::MAX_PARAMS;
}

/// Computes the addresses of every STM protocol word inside a machine's
/// address space.
///
/// # Examples
///
/// ```
/// use stm_core::layout::StmLayout;
///
/// let layout = StmLayout::new(0, 128, 4, 8);
/// assert!(layout.words_needed() > 128 * 2);
/// assert_eq!(layout.cell(0), 0);
/// assert_eq!(layout.ownership(0), 128);
///
/// // Cache-aligned: one word per 64-byte line (8 words) on the host.
/// let padded = StmLayout::with_pad_shift(0, 128, 4, 8, 3);
/// assert_eq!(padded.cell(1) - padded.cell(0), 8);
/// assert_eq!(padded.record(0) % 8, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmLayout {
    base: Addr,
    n_cells: usize,
    n_procs: usize,
    max_locs: usize,
    pad_shift: u8,
}

impl StmLayout {
    /// Lay out an STM instance at `base` with `n_cells` transactional cells
    /// for `n_procs` processors, allowing data sets of up to `max_locs`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics if `max_locs` is 0 or exceeds [`MAX_DATASET`], or if `n_procs`
    /// is 0 or exceeds [`MAX_PROCS`].
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, max_locs: usize) -> Self {
        Self::with_pad_shift(base, n_cells, n_procs, max_locs, 0)
    }

    /// Like [`StmLayout::new`], but spreading protocol words so that each
    /// cell, each ownership word, and each record starts on a
    /// `1 << pad_shift`-word boundary (its own cache line for
    /// `pad_shift = 3` on 64-byte-line hosts).
    ///
    /// # Panics
    ///
    /// Panics on the same out-of-range arguments as [`StmLayout::new`], or
    /// if `pad_shift` exceeds 6 (128 words per line is already absurd).
    pub fn with_pad_shift(
        base: Addr,
        n_cells: usize,
        n_procs: usize,
        max_locs: usize,
        pad_shift: u8,
    ) -> Self {
        assert!(max_locs > 0 && max_locs <= MAX_DATASET, "max_locs out of range");
        assert!(n_procs > 0 && n_procs <= MAX_PROCS, "n_procs out of range");
        assert!(pad_shift <= 6, "pad_shift out of range");
        StmLayout { base, n_cells, n_procs, max_locs, pad_shift }
    }

    /// The configured padding shift (0 = dense, address-faithful layout).
    pub fn pad_shift(&self) -> u8 {
        self.pad_shift
    }

    /// Words per padding unit (`1 << pad_shift`); consecutive cells,
    /// ownership words, and record bases are this many words apart.
    #[inline]
    pub fn pad_unit(&self) -> usize {
        1 << self.pad_shift
    }

    /// Number of transactional cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of per-processor records.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Maximum data-set size per transaction.
    pub fn max_locs(&self) -> usize {
        self.max_locs
    }

    /// Words occupied by one record, including any trailing padding needed
    /// to keep consecutive record bases on distinct padding units.
    pub fn record_stride(&self) -> usize {
        let dense = rec::ADDRS + 2 * self.max_locs;
        let unit = self.pad_unit();
        dense.div_ceil(unit) * unit
    }

    /// Total words this instance occupies starting at its base address.
    pub fn words_needed(&self) -> usize {
        2 * self.n_cells * self.pad_unit() + self.n_procs * self.record_stride()
    }

    /// One-past-the-end address of the region.
    pub fn end(&self) -> Addr {
        self.base + self.words_needed()
    }

    /// Address of transactional cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` is out of range.
    #[inline]
    pub fn cell(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        self.base + (idx << self.pad_shift)
    }

    /// Address of the ownership word guarding cell `idx`.
    #[inline]
    pub fn ownership(&self, idx: CellIdx) -> Addr {
        debug_assert!(idx < self.n_cells, "cell index {idx} out of range");
        self.base + ((self.n_cells + idx) << self.pad_shift)
    }

    /// Base address of processor `proc`'s record.
    #[inline]
    pub fn record(&self, proc: usize) -> Addr {
        debug_assert!(proc < self.n_procs, "processor id {proc} out of range");
        self.base + ((2 * self.n_cells) << self.pad_shift) + proc * self.record_stride()
    }

    /// Address of `proc`'s status word.
    #[inline]
    pub fn status(&self, proc: usize) -> Addr {
        self.record(proc) + rec::STATUS
    }

    /// Address of `proc`'s data-set size word.
    #[inline]
    pub fn size(&self, proc: usize) -> Addr {
        self.record(proc) + rec::SIZE
    }

    /// Address of `proc`'s opcode word.
    #[inline]
    pub fn opcode(&self, proc: usize) -> Addr {
        self.record(proc) + rec::OPCODE
    }

    /// Address of `proc`'s parameter-count word.
    #[inline]
    pub fn nparams(&self, proc: usize) -> Addr {
        self.record(proc) + rec::NPARAMS
    }

    /// Address of `proc`'s `i`-th parameter word.
    #[inline]
    pub fn param(&self, proc: usize, i: usize) -> Addr {
        debug_assert!(i < MAX_PARAMS, "parameter index {i} out of range");
        self.record(proc) + rec::PARAMS + i
    }

    /// Address of `proc`'s `j`-th data-set address word.
    #[inline]
    pub fn addr_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + j
    }

    /// Address of `proc`'s `j`-th old-value agreement entry.
    #[inline]
    pub fn oldval_slot(&self, proc: usize, j: usize) -> Addr {
        debug_assert!(j < self.max_locs, "data-set position {j} out of range");
        self.record(proc) + rec::ADDRS + self.max_locs + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_addrs(l: &StmLayout) -> Vec<Addr> {
        let mut v = Vec::new();
        for i in 0..l.n_cells() {
            v.push(l.cell(i));
        }
        for i in 0..l.n_cells() {
            v.push(l.ownership(i));
        }
        for p in 0..l.n_procs() {
            v.push(l.status(p));
            v.push(l.size(p));
            v.push(l.opcode(p));
            v.push(l.nparams(p));
            for i in 0..MAX_PARAMS {
                v.push(l.param(p, i));
            }
            for j in 0..l.max_locs() {
                v.push(l.addr_slot(p, j));
                v.push(l.oldval_slot(p, j));
            }
        }
        v
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = StmLayout::new(10, 100, 8, 16);
        let addrs = all_addrs(&l);
        let seen: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
        assert_eq!(seen.len(), addrs.len(), "duplicate addresses");
        // Dense layout wastes no words.
        assert_eq!(seen.len(), l.words_needed());
        assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
    }

    #[test]
    fn padded_regions_do_not_overlap() {
        for shift in [1u8, 3, 6] {
            let l = StmLayout::with_pad_shift(10, 100, 8, 16, shift);
            let addrs = all_addrs(&l);
            let seen: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
            assert_eq!(seen.len(), addrs.len(), "duplicate addresses at shift {shift}");
            // Padded layout leaves gaps, but never escapes its region.
            assert!(seen.len() <= l.words_needed());
            assert!(seen.iter().all(|&a| a >= 10 && a < l.end()));
        }
    }

    #[test]
    fn pad_shift_separates_cache_lines() {
        // With pad_shift = 3 (64-byte lines of 8-byte words), every cell,
        // every ownership word, and every record lives on its own line.
        let l = StmLayout::with_pad_shift(0, 32, 4, 8, 3);
        let line = |a: Addr| a / 8;
        let mut lines = std::collections::HashSet::new();
        for i in 0..l.n_cells() {
            assert!(lines.insert(line(l.cell(i))), "cell {i} shares a line");
        }
        for i in 0..l.n_cells() {
            assert!(lines.insert(line(l.ownership(i))), "ownership {i} shares a line");
        }
        for p in 0..l.n_procs() {
            // Records are multi-word; only their *bases* must start fresh
            // lines so two processors' status words never share one.
            assert!(lines.insert(line(l.record(p))), "record {p} shares a line");
            assert_eq!(l.record(p) % 8, 0, "record {p} not line-aligned");
        }
    }

    #[test]
    fn dense_layout_is_address_faithful() {
        // The simulator's bus/mesh cost models rely on the dense layout the
        // paper assumes: consecutive cells at consecutive addresses.
        let l = StmLayout::new(0, 16, 2, 4);
        assert_eq!(l.pad_shift(), 0);
        for i in 0..16 {
            assert_eq!(l.cell(i), i);
            assert_eq!(l.ownership(i), 16 + i);
        }
    }

    #[test]
    fn words_needed_matches_stride() {
        let l = StmLayout::new(0, 10, 3, 4);
        assert_eq!(l.record_stride(), super::rec::ADDRS + 8);
        assert_eq!(l.words_needed(), 20 + 3 * l.record_stride());
    }

    #[test]
    #[should_panic(expected = "max_locs out of range")]
    fn zero_max_locs_panics() {
        let _ = StmLayout::new(0, 1, 1, 0);
    }
}
