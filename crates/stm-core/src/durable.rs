//! Crash durability: write-ahead redo journaling and recovery.
//!
//! The paper's protocol is non-blocking across process *stalls* — helpers
//! finish whatever a dead processor left behind — but a full machine crash
//! still loses the heap. This module adds a durability backend behind the
//! [`Journal`] trait: every committed transaction appends one **redo
//! record** (owner, version, cell addresses, agreed pre-images, new values,
//! CRC) and flushes it to stable storage *before any participant installs a
//! value* (see `docs/protocol.md` §11 for the ordering argument). Recovery
//! ([`recover`]) scans the journal, discards a torn or unverified tail, and
//! replays decided-but-uninstalled transactions **exactly once** into a
//! rebuilt heap.
//!
//! Three implementations ship with the crate:
//!
//! * [`NoJournal`] — the default. `ACTIVE == false` compiles the entire
//!   journal path (including its step announcements) out of the protocol,
//!   so non-durable schedules are bit-identical to the pre-durability ones.
//! * [`MemJournal`] — a deterministic in-memory journal for the `stm-sim`
//!   simulator, with a configurable flush cost in virtual cycles. Its
//!   "stable storage" is a [`DurableMem`] shared across simulated
//!   processors; per-handle *pending* bytes model the un-fsynced page cache
//!   and are lost when the owning processor crashes.
//! * [`FileJournal`] — an fsync'd append-only file store for the host
//!   machine.
//!
//! # Exactly-once replay
//!
//! Replay reuses the install discipline of the live protocol
//! (`install_cell` in `stm/algo.rs`): a cell is written only if it still
//! holds the record's pre-image (value *and* stamp), and the written word is
//! the stamp-advanced successor. Installs that already happened before the
//! crash — and duplicate records flushed by helpers replaying the same
//! `(owner, version)` — fail the pre-image comparison and are skipped, so a
//! committed transaction's effect lands exactly once no matter how many
//! participants journaled it or how far installation had progressed. The
//! 16-bit stamp shares the live protocol's wrap-around caveat (§11).

use std::io::Write as _;
use std::sync::{Arc, Mutex};

use crate::machine::MemPort;
use crate::observe::TxObserver;
use crate::word::{cell_successor, cell_value, CellIdx, Word};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled: the build is offline and the
// workspace vendors no checksum crate.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the checksum guarding each journal record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// Magic number opening every journal record (`"STMJ"` little-endian).
pub const RECORD_MAGIC: u32 = 0x4A4D_5453;

/// Fixed bytes before the per-cell entries: magic, cell count, owner,
/// version.
pub const RECORD_HEADER_BYTES: usize = 4 + 4 + 4 + 8;

/// Bytes per data-set cell: cell index, packed pre-image word, new value.
pub const RECORD_CELL_BYTES: usize = 4 + 8 + 4;

/// Trailing CRC bytes.
pub const RECORD_TRAILER_BYTES: usize = 4;

/// Upper bound on a record's cell count accepted by the scanner — far above
/// any real `max_locs`, low enough to reject garbage lengths immediately.
pub const MAX_RECORD_CELLS: usize = 4096;

/// Total encoded size of a record over `k` cells.
pub fn record_len(k: usize) -> usize {
    RECORD_HEADER_BYTES + k * RECORD_CELL_BYTES + RECORD_TRAILER_BYTES
}

/// One committed transaction's redo record, borrowed from the commit path:
/// the transaction identity, its data set, the agreed pre-images (packed
/// cell words, stamp included), and the computed new values.
#[derive(Debug, Clone, Copy)]
pub struct RedoRecord<'a> {
    /// Initiating processor (the record owner).
    pub owner: usize,
    /// The owner record's version for this transaction.
    pub version: u64,
    /// Data-set cell indices, program order.
    pub cells: &'a [CellIdx],
    /// Agreed pre-image words (value + stamp), parallel to `cells`.
    pub pre: &'a [Word],
    /// Committed new values, parallel to `cells`.
    pub new: &'a [u32],
}

/// Append the encoded form of `rec` (header, cells, CRC) to `out`.
pub fn encode_record(rec: &RedoRecord<'_>, out: &mut Vec<u8>) {
    debug_assert_eq!(rec.cells.len(), rec.pre.len());
    debug_assert_eq!(rec.cells.len(), rec.new.len());
    let start = out.len();
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(rec.cells.len() as u32).to_le_bytes());
    out.extend_from_slice(&(rec.owner as u32).to_le_bytes());
    out.extend_from_slice(&rec.version.to_le_bytes());
    for j in 0..rec.cells.len() {
        out.extend_from_slice(&(rec.cells[j] as u32).to_le_bytes());
        out.extend_from_slice(&rec.pre[j].to_le_bytes());
        out.extend_from_slice(&rec.new[j].to_le_bytes());
    }
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One record decoded out of a journal scan (owned form of [`RedoRecord`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedRecord {
    /// Initiating processor.
    pub owner: usize,
    /// Owner-record version.
    pub version: u64,
    /// Data-set cell indices, program order.
    pub cells: Vec<CellIdx>,
    /// Agreed pre-image words, parallel to `cells`.
    pub pre: Vec<Word>,
    /// Committed new values, parallel to `cells`.
    pub new: Vec<u32>,
}

/// Result of scanning a journal byte stream.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Every verified record, in journal order.
    pub records: Vec<DecodedRecord>,
    /// Bytes discarded as a torn or unverified tail (truncated record, bad
    /// magic, or CRC mismatch — scanning stops at the first bad byte).
    pub tail_discarded: usize,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Scan a journal byte stream into verified records, stopping at the first
/// torn or corrupt record: the write-ahead ordering makes everything *after*
/// the first unverifiable byte unreachable by any committed-and-installed
/// transaction, so the whole tail is discarded rather than resynchronized.
pub fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut out = JournalScan::default();
    let mut off = 0;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < RECORD_HEADER_BYTES {
            break; // torn header
        }
        if read_u32(rest, 0) != RECORD_MAGIC {
            break; // corrupt framing
        }
        let k = read_u32(rest, 4) as usize;
        if k == 0 || k > MAX_RECORD_CELLS {
            break; // implausible length: treat as corruption
        }
        let total = record_len(k);
        if rest.len() < total {
            break; // torn record body
        }
        let stored_crc = read_u32(rest, total - RECORD_TRAILER_BYTES);
        if crc32(&rest[..total - RECORD_TRAILER_BYTES]) != stored_crc {
            break; // failed verification
        }
        let owner = read_u32(rest, 8) as usize;
        let version = read_u64(rest, 12);
        let mut cells = Vec::with_capacity(k);
        let mut pre = Vec::with_capacity(k);
        let mut new = Vec::with_capacity(k);
        for j in 0..k {
            let at = RECORD_HEADER_BYTES + j * RECORD_CELL_BYTES;
            cells.push(read_u32(rest, at) as CellIdx);
            pre.push(read_u64(rest, at + 4));
            new.push(read_u32(rest, at + 12));
        }
        out.records.push(DecodedRecord { owner, version, cells, pre, new });
        off += total;
    }
    out.tail_discarded = bytes.len() - off;
    out
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Summary of one recovery pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Verified records scanned from the journal.
    pub records_scanned: u64,
    /// Records that installed at least one cell (the rest were duplicates
    /// or already fully installed before the crash).
    pub records_installed: u64,
    /// Individual cell installs performed.
    pub cells_installed: u64,
    /// Bytes discarded as a torn/unverified journal tail.
    pub tail_discarded: u64,
}

/// Replay a journal into `cells` — packed cell words indexed by cell index,
/// rebuilt to the **same base image the crashed run started from** (recovery
/// is a deterministic function of base image + journal; a caller that
/// rebuilds a different base gets a different heap).
///
/// Each record replays with the live protocol's install discipline: a cell
/// is written only if it still holds the record's pre-image, and the write
/// is the stamp-advanced successor — so replay is idempotent, already
/// installed effects are skipped, and duplicate records (helpers journal the
/// transactions they complete) collapse to one application.
pub fn recover(cells: &mut [Word], bytes: &[u8]) -> RecoveryReport {
    recover_with(cells, bytes, &mut crate::observe::NoopObserver)
}

/// [`recover`] with a [`TxObserver`] receiving the
/// [`recovery_replayed`](TxObserver::recovery_replayed) lifecycle hook.
pub fn recover_with<O: TxObserver>(
    cells: &mut [Word],
    bytes: &[u8],
    obs: &mut O,
) -> RecoveryReport {
    let scan = scan_journal(bytes);
    let mut report = RecoveryReport {
        records_scanned: scan.records.len() as u64,
        tail_discarded: scan.tail_discarded as u64,
        ..Default::default()
    };
    for rec in &scan.records {
        let mut installed_here = 0u64;
        for j in 0..rec.cells.len() {
            let (cell, pre, new) = (rec.cells[j], rec.pre[j], rec.new[j]);
            if new == cell_value(pre) {
                continue; // logical read: never installed by the live run either
            }
            let Some(slot) = cells.get_mut(cell) else {
                continue; // foreign cell index: journal from a larger heap
            };
            if *slot == pre {
                *slot = cell_successor(pre, new);
                installed_here += 1;
            }
        }
        if installed_here > 0 {
            report.records_installed += 1;
            report.cells_installed += installed_here;
        }
    }
    obs.recovery_replayed(report.records_scanned, report.cells_installed, 0);
    report
}

// ---------------------------------------------------------------------------
// The Journal trait and its implementations
// ---------------------------------------------------------------------------

/// What one flush made durable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushInfo {
    /// Records published by this flush.
    pub records: u64,
    /// Bytes published by this flush.
    pub bytes: u64,
    /// Flush latency in the port's time units: virtual cycles on the
    /// simulator ([`MemJournal`]'s configured flush cost), nanoseconds of
    /// wall clock on the host ([`FileJournal`]).
    pub latency: u64,
}

/// A durability backend for the commit path.
///
/// The protocol calls [`append`](Journal::append) once per committed
/// transaction (after old-value agreement, before any install) and
/// [`flush`](Journal::flush) immediately after; only when `flush` returns is
/// any new value installed. `ACTIVE == false` ([`NoJournal`]) compiles the
/// whole sequence — including its [`StepPoint`](crate::step::StepPoint)
/// announcements — out of the monomorphized protocol, keeping non-durable
/// schedules bit-identical.
pub trait Journal {
    /// Whether this backend journals at all. The protocol gates every
    /// journal step on this associated constant, so inactive backends cost
    /// nothing.
    const ACTIVE: bool;

    /// Buffer one redo record (not yet durable).
    fn append(&mut self, rec: &RedoRecord<'_>);

    /// Make every buffered record durable, charging the port for the flush
    /// (virtual cycles on the simulator, real fsync time on the host).
    fn flush<P: MemPort>(&mut self, port: &mut P) -> FlushInfo;
}

/// A mutable reference to a journal is itself a journal, so a long-lived
/// backend can be lent per call: `TxOptions::new().journal(&mut jrn)`.
impl<J: Journal> Journal for &mut J {
    const ACTIVE: bool = J::ACTIVE;

    fn append(&mut self, rec: &RedoRecord<'_>) {
        (**self).append(rec)
    }

    fn flush<P: MemPort>(&mut self, port: &mut P) -> FlushInfo {
        (**self).flush(port)
    }
}

/// The default backend: no journaling. `ACTIVE == false` removes the journal
/// path from the compiled protocol entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoJournal;

impl Journal for NoJournal {
    const ACTIVE: bool = false;

    #[inline]
    fn append(&mut self, _rec: &RedoRecord<'_>) {}

    #[inline]
    fn flush<P: MemPort>(&mut self, _port: &mut P) -> FlushInfo {
        FlushInfo::default()
    }
}

/// Simulated stable storage shared by every [`MemJournal`] handle of one
/// run. Survives simulated crashes: a crashed processor's un-flushed
/// *pending* bytes die with its handle, but everything published here is
/// what recovery gets to see.
#[derive(Debug, Clone, Default)]
pub struct DurableMem {
    durable: Arc<Mutex<Vec<u8>>>,
}

impl DurableMem {
    /// Empty stable storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh journal handle (its own empty pending buffer) over this
    /// storage, with zero flush cost.
    pub fn handle(&self) -> MemJournal {
        MemJournal {
            durable: Arc::clone(&self.durable),
            pending: Vec::new(),
            pending_records: 0,
            flush_cost: 0,
        }
    }

    /// Snapshot of the durable byte stream (what recovery would scan).
    pub fn bytes(&self) -> Vec<u8> {
        self.durable.lock().expect("durable storage poisoned").clone()
    }
}

/// Deterministic in-memory journal for the simulator.
///
/// `append` encodes into a handle-local pending buffer; `flush` charges the
/// configured flush cost to the port's local clock (modeling fsync latency —
/// a crash during that window loses the pending bytes, exactly like power
/// failing mid-fsync) and then publishes the buffer to the shared
/// [`DurableMem`]. Publication happens while the flushing processor holds
/// the simulator's lockstep grant, so the durable byte order is a
/// deterministic function of the schedule.
#[derive(Debug)]
pub struct MemJournal {
    durable: Arc<Mutex<Vec<u8>>>,
    pending: Vec<u8>,
    pending_records: u64,
    flush_cost: u64,
}

impl MemJournal {
    /// Set the flush cost in virtual cycles (default 0).
    pub fn flush_cost(mut self, cycles: u64) -> Self {
        self.flush_cost = cycles;
        self
    }
}

impl Journal for MemJournal {
    const ACTIVE: bool = true;

    fn append(&mut self, rec: &RedoRecord<'_>) {
        encode_record(rec, &mut self.pending);
        self.pending_records += 1;
    }

    fn flush<P: MemPort>(&mut self, port: &mut P) -> FlushInfo {
        let info = FlushInfo {
            records: self.pending_records,
            bytes: self.pending.len() as u64,
            latency: self.flush_cost,
        };
        if self.flush_cost > 0 {
            // The fsync window: pending bytes are not durable yet, and a
            // crash delivered during this delay loses them.
            port.delay(self.flush_cost);
        }
        self.durable.lock().expect("durable storage poisoned").extend_from_slice(&self.pending);
        self.pending.clear();
        self.pending_records = 0;
        info
    }
}

/// Fsync'd append-only file journal for the host machine.
///
/// `append` encodes into a process-local pending buffer; `flush` appends the
/// buffer to the file and `sync_data`s it before returning, so a record is
/// durable before the commit path installs a single value. Handles created
/// by [`FileJournal::handle`] share the file (one writer at a time via the
/// internal lock) but keep independent pending buffers.
#[derive(Debug)]
pub struct FileJournal {
    file: Arc<Mutex<std::fs::File>>,
    pending: Vec<u8>,
    pending_records: u64,
}

impl FileJournal {
    /// Create (truncating any existing file) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(FileJournal { file: Arc::new(Mutex::new(file)), pending: Vec::new(), pending_records: 0 })
    }

    /// Open an existing journal at `path` for appending (recover first —
    /// see [`read_journal`]).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened.
    pub fn open_append(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileJournal { file: Arc::new(Mutex::new(file)), pending: Vec::new(), pending_records: 0 })
    }

    /// Another handle over the same file with its own pending buffer (one
    /// per thread).
    pub fn handle(&self) -> FileJournal {
        FileJournal { file: Arc::clone(&self.file), pending: Vec::new(), pending_records: 0 }
    }
}

impl Journal for FileJournal {
    const ACTIVE: bool = true;

    fn append(&mut self, rec: &RedoRecord<'_>) {
        encode_record(rec, &mut self.pending);
        self.pending_records += 1;
    }

    fn flush<P: MemPort>(&mut self, _port: &mut P) -> FlushInfo {
        let started = std::time::Instant::now();
        {
            let mut f = self.file.lock().expect("journal file poisoned");
            f.write_all(&self.pending).expect("journal write failed");
            f.sync_data().expect("journal fsync failed");
        }
        let info = FlushInfo {
            records: self.pending_records,
            bytes: self.pending.len() as u64,
            latency: started.elapsed().as_nanos() as u64,
        };
        self.pending.clear();
        self.pending_records = 0;
        info
    }
}

/// Read a journal file's byte stream for recovery ([`scan_journal`] /
/// [`recover`]).
///
/// # Errors
///
/// Propagates the I/O error; a missing file is an empty journal.
pub fn read_journal(path: impl AsRef<std::path::Path>) -> std::io::Result<Vec<u8>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::pack_cell;

    fn encode_sample(owner: usize, version: u64, out: &mut Vec<u8>) {
        let cells = [3, 7];
        let pre = [pack_cell(5, 100), pack_cell(0, 0)];
        let new = [110, 9];
        encode_record(&RedoRecord { owner, version, cells: &cells, pre: &pre, new: &new }, out);
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_through_scan() {
        let mut bytes = Vec::new();
        encode_sample(1, 42, &mut bytes);
        encode_sample(2, 7, &mut bytes);
        assert_eq!(bytes.len(), 2 * record_len(2));
        let scan = scan_journal(&bytes);
        assert_eq!(scan.tail_discarded, 0);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].owner, 1);
        assert_eq!(scan.records[0].version, 42);
        assert_eq!(scan.records[0].cells, vec![3, 7]);
        assert_eq!(scan.records[0].pre, vec![pack_cell(5, 100), pack_cell(0, 0)]);
        assert_eq!(scan.records[0].new, vec![110, 9]);
        assert_eq!(scan.records[1].owner, 2);
    }

    #[test]
    fn truncation_at_every_byte_offset_discards_only_the_tail() {
        // The torn-write oracle: whatever byte the final record is cut at,
        // recovery must replay every complete record and never a partial one.
        let mut bytes = Vec::new();
        encode_sample(0, 1, &mut bytes);
        encode_sample(1, 2, &mut bytes);
        let keep = record_len(2);
        for cut in keep..bytes.len() {
            let torn = &bytes[..cut];
            let scan = scan_journal(torn);
            let want_records = if cut == keep * 2 { 2 } else { 1 };
            assert_eq!(scan.records.len(), want_records, "cut at {cut}");
            assert_eq!(scan.tail_discarded, cut - want_records * keep, "cut at {cut}");

            let mut cells = vec![pack_cell(5, 100), 0, 0, pack_cell(5, 100), 0, 0, pack_cell(0, 0), 0];
            let report = recover(&mut cells, torn);
            assert_eq!(report.records_scanned as usize, want_records, "cut at {cut}");
            // Record 0 installs cells {3, 7}; the torn record 1 must install
            // nothing at all — not even its first cell.
            assert_eq!(cell_value(cells[3]), 110, "cut at {cut}");
            assert_eq!(cell_value(cells[7]), 9, "cut at {cut}");
        }
    }

    #[test]
    fn corrupting_any_byte_discards_the_record_and_its_tail() {
        let mut bytes = Vec::new();
        encode_sample(0, 1, &mut bytes);
        encode_sample(1, 2, &mut bytes);
        let keep = record_len(2);
        for at in keep..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x40;
            let scan = scan_journal(&corrupt);
            assert_eq!(scan.records.len(), 1, "corruption at {at} must stop the scan");
            assert_eq!(scan.tail_discarded, corrupt.len() - keep, "corruption at {at}");
        }
    }

    #[test]
    fn replay_is_idempotent_and_skips_duplicates() {
        let mut bytes = Vec::new();
        encode_sample(0, 1, &mut bytes);
        encode_sample(0, 1, &mut bytes); // a helper's duplicate of the same commit
        let base = vec![pack_cell(5, 100), 0, 0, pack_cell(5, 100), 0, 0, pack_cell(0, 0), 0];

        let mut once = base.clone();
        let report = recover(&mut once, &bytes);
        assert_eq!(report.records_scanned, 2);
        assert_eq!(report.records_installed, 1, "duplicate must not re-apply");
        assert_eq!(report.cells_installed, 2);
        assert_eq!(cell_value(once[3]), 110);
        assert_eq!(cell_value(once[7]), 9);

        // Replaying the whole journal again over the recovered heap is a
        // no-op: every pre-image comparison now fails.
        let mut twice = once.clone();
        let report2 = recover(&mut twice, &bytes);
        assert_eq!(report2.records_installed, 0);
        assert_eq!(twice, once);
    }

    #[test]
    fn logical_reads_and_already_installed_cells_are_skipped() {
        let cells = vec![0usize, 1];
        let pre = vec![pack_cell(1, 7), pack_cell(2, 9)];
        let new = vec![7, 20]; // cell 0 unchanged (logical read)
        let mut bytes = Vec::new();
        encode_record(&RedoRecord { owner: 0, version: 3, cells: &cells, pre: &pre, new: &new }, &mut bytes);

        // Cell 1 was already installed before the crash (its word advanced).
        let mut heap = vec![pack_cell(1, 7), cell_successor(pack_cell(2, 9), 20)];
        let report = recover(&mut heap, &bytes);
        assert_eq!(report.cells_installed, 0);
        assert_eq!(cell_value(heap[0]), 7, "logical read untouched");
        assert_eq!(heap[1], cell_successor(pack_cell(2, 9), 20), "no double apply");
    }

    #[test]
    fn mem_journal_publishes_only_on_flush() {
        use crate::machine::host::HostMachine;
        let m = HostMachine::new(4, 1);
        let mut port = m.port(0);
        let storage = DurableMem::new();
        let mut jrn = storage.handle().flush_cost(10);
        let (cells, pre, new) = (vec![0usize], vec![pack_cell(0, 0)], vec![5u32]);
        jrn.append(&RedoRecord { owner: 0, version: 1, cells: &cells, pre: &pre, new: &new });
        assert!(storage.bytes().is_empty(), "pending bytes are not durable");
        let info = jrn.flush(&mut port);
        assert_eq!(info.records, 1);
        assert_eq!(info.bytes as usize, record_len(1));
        assert_eq!(info.latency, 10);
        assert_eq!(storage.bytes().len(), record_len(1));
        // A dropped handle (simulated crash) loses only pending bytes.
        jrn.append(&RedoRecord { owner: 0, version: 2, cells: &cells, pre: &pre, new: &new });
        drop(jrn);
        assert_eq!(storage.bytes().len(), record_len(1));
    }

    #[test]
    fn file_journal_roundtrips_through_recovery() {
        use crate::machine::host::HostMachine;
        let path = std::env::temp_dir()
            .join(format!("stm-durable-test-{}.journal", std::process::id()));
        let m = HostMachine::new(4, 1);
        let mut port = m.port(0);
        {
            let mut jrn = FileJournal::create(&path).unwrap();
            let (cells, pre, new) = (vec![2usize], vec![pack_cell(0, 0)], vec![41u32]);
            jrn.append(&RedoRecord { owner: 0, version: 1, cells: &cells, pre: &pre, new: &new });
            let info = jrn.flush(&mut port);
            assert_eq!(info.records, 1);
        }
        {
            // Append more through a reopened handle, as a restarted process
            // would.
            let mut jrn = FileJournal::open_append(&path).unwrap();
            let (cells, pre, new) =
                (vec![2usize], vec![cell_successor(pack_cell(0, 0), 41)], vec![43u32]);
            jrn.append(&RedoRecord { owner: 0, version: 2, cells: &cells, pre: &pre, new: &new });
            jrn.flush(&mut port);
        }
        let bytes = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut heap = vec![0; 4];
        let report = recover(&mut heap, &bytes);
        assert_eq!(report.records_scanned, 2);
        assert_eq!(report.records_installed, 2);
        assert_eq!(cell_value(heap[2]), 43);
        assert_eq!(read_journal("/nonexistent/journal/path").unwrap(), Vec::<u8>::new());
    }
}
