//! High-level operations over an [`Stm`] instance: the derived primitives the
//! paper presents as corollaries of static transactions — multi-word
//! compare-and-swap, multi-word fetch-and-add, atomic swap, and atomic
//! snapshots.
//!
//! [`StmOps`] bundles an [`Stm`] with the built-in program table so common
//! operations need no program plumbing.
//!
//! [`StmOps::snapshot`] is special: it first attempts the invisible
//! double-collect read ([`Stm::try_read_only`]), which commits without a
//! single shared-memory write when no live owner intervenes, and only falls
//! back to the full acquiring protocol after the configured number of
//! validation rounds fail.
//!
//! # Examples
//!
//! ```
//! use stm_core::machine::host::HostMachine;
//! use stm_core::ops::StmOps;
//! use stm_core::stm::StmConfig;
//!
//! let ops = StmOps::new(0, 16, 1, 8, StmConfig::default());
//! let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
//! let mut port = machine.port(0);
//!
//! assert_eq!(ops.fetch_add(&mut port, 3, 10), 0);
//! assert_eq!(ops.fetch_add(&mut port, 3, 5), 10);
//! assert!(ops.mwcas(&mut port, &[(3, 15, 100), (4, 0, 200)]).is_ok());
//! assert_eq!(ops.snapshot(&mut port, &[3, 4]), vec![100, 200]);
//! ```

use std::sync::Arc;

use crate::machine::MemPort;
use crate::program::{register_builtins, Builtins, ProgramTable, ProgramTableBuilder};
use crate::stm::{Stm, StmConfig, TxError, TxOptions, TxOutcome, TxSpec};
use crate::word::{Addr, CellIdx, Word};

/// An [`Stm`] instance together with the built-in operation programs.
#[derive(Debug, Clone)]
pub struct StmOps {
    stm: Stm,
    ops: Builtins,
}

impl StmOps {
    /// Create an instance with only the built-in programs registered.
    ///
    /// Arguments are as in [`Stm::new`].
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, max_locs: usize, config: StmConfig) -> Self {
        Self::with_programs(base, n_cells, n_procs, max_locs, config, |_| ()).0
    }

    /// Create an instance, also registering application programs via
    /// `extra`; returns whatever `extra` produced (typically the opcodes).
    pub fn with_programs<X>(
        base: Addr,
        n_cells: usize,
        n_procs: usize,
        max_locs: usize,
        config: StmConfig,
        extra: impl FnOnce(&mut ProgramTableBuilder) -> X,
    ) -> (Self, X) {
        let mut builder = ProgramTable::builder();
        let ops = register_builtins(&mut builder);
        let x = extra(&mut builder);
        let table: Arc<ProgramTable> = builder.build();
        (StmOps { stm: Stm::new(base, n_cells, n_procs, max_locs, table, config), ops }, x)
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// The built-in opcodes.
    pub fn builtins(&self) -> Builtins {
        self.ops
    }

    /// Run `spec` with default options, retrying until commit.
    ///
    /// With an unlimited budget the retry loop cannot observe
    /// [`TxError::BudgetExhausted`], and built-in programs never panic, so
    /// the result is unwrapped here.
    fn run_unlimited<P: MemPort>(&self, port: &mut P, spec: &TxSpec<'_>) -> TxOutcome {
        self.stm
            .run(port, spec, &mut TxOptions::new())
            .expect("unlimited budget cannot be exhausted and builtins do not panic")
    }

    /// Atomically add `delta` (wrapping) to `cell`, returning the old value.
    pub fn fetch_add<P: MemPort>(&self, port: &mut P, cell: CellIdx, delta: u32) -> u32 {
        let out = self.run_unlimited(port, &TxSpec::new(self.ops.add, &[delta as Word], &[cell]));
        // Invariant: `TxOutcome::old` has exactly one entry per data-set
        // cell, established by the agreement phase before commit.
        debug_assert_eq!(out.old.len(), 1, "one old value per data-set cell");
        out.old[0]
    }

    /// Atomically add per-cell deltas to several cells, returning old values.
    ///
    /// # Panics
    ///
    /// Panics if `cells` and `deltas` differ in length (or on any
    /// [`Stm::run`] spec violation).
    pub fn fetch_add_many<P: MemPort>(
        &self,
        port: &mut P,
        cells: &[CellIdx],
        deltas: &[u32],
    ) -> Vec<u32> {
        assert_eq!(cells.len(), deltas.len(), "one delta per cell");
        let params: Vec<Word> = deltas.iter().map(|&d| d as Word).collect();
        self.run_unlimited(port, &TxSpec::new(self.ops.add, &params, cells)).old
    }

    /// Atomically replace `cell` with `value`, returning the old value.
    pub fn swap<P: MemPort>(&self, port: &mut P, cell: CellIdx, value: u32) -> u32 {
        let out = self.run_unlimited(port, &TxSpec::new(self.ops.swap, &[value as Word], &[cell]));
        debug_assert_eq!(out.old.len(), 1, "one old value per data-set cell");
        out.old[0]
    }

    /// Atomic multi-cell snapshot.
    ///
    /// First tries the invisible double-collect read
    /// ([`Stm::try_read_only`]): when it validates, the snapshot commits
    /// with **zero shared-memory writes**. After
    /// [`StmConfig::fast_read_rounds`] failed validation rounds (a live
    /// owner keeps intervening), falls back to the identity transaction over
    /// `cells`, which acquires ownerships and helps blockers — preserving
    /// the protocol's lock-freedom guarantee.
    ///
    /// The spec-validation rules of the acquiring path (non-empty,
    /// in-range, within `max_locs`, strictly ascending) are enforced up
    /// front so both paths accept exactly the same inputs.
    pub fn snapshot<P: MemPort>(&self, port: &mut P, cells: &[CellIdx]) -> Vec<u32> {
        let spec = TxSpec::new(self.ops.read, &[], cells);
        self.stm.validate_spec(port, &spec);
        if let Some(out) = self.stm.try_read_only(port, cells) {
            return out.old;
        }
        self.run_unlimited(port, &spec).old
    }

    /// Multi-word compare-and-swap: atomically, if every `cell` holds its
    /// `expected` value, install every `new` value.
    ///
    /// # Errors
    ///
    /// On mismatch, returns the witnessed values (an atomic snapshot taken at
    /// the linearization point).
    pub fn mwcas<P: MemPort>(
        &self,
        port: &mut P,
        entries: &[(CellIdx, u32, u32)],
    ) -> Result<(), Vec<u32>> {
        let cells: Vec<CellIdx> = entries.iter().map(|e| e.0).collect();
        let params: Vec<Word> =
            entries.iter().map(|&(_, exp, new)| ((exp as Word) << 32) | new as Word).collect();
        let out = self.run_unlimited(port, &TxSpec::new(self.ops.mwcas, &params, &cells));
        let matched = entries.iter().zip(&out.old).all(|(&(_, exp, _), &old)| old == exp);
        if matched {
            Ok(())
        } else {
            Err(out.old)
        }
    }

    /// Run an arbitrary registered program (see [`StmOps::with_programs`])
    /// under the given options.
    ///
    /// # Errors
    ///
    /// Propagates [`TxError`] from [`Stm::run`]: budget exhaustion or an
    /// op panic.
    pub fn run<P: MemPort, O, C>(
        &self,
        port: &mut P,
        spec: &TxSpec<'_>,
        opts: &mut TxOptions<O, C>,
    ) -> Result<TxOutcome, TxError>
    where
        O: crate::observe::TxObserver,
        C: crate::contention::ContentionManager,
    {
        self.stm.run(port, spec, opts)
    }

    /// Run an arbitrary registered program, retrying until commit.
    #[deprecated(since = "0.2.0", note = "use `StmOps::run` with `TxOptions::new()`")]
    #[allow(deprecated)] // wrapper delegates along the legacy chain
    pub fn execute<P: MemPort>(&self, port: &mut P, spec: &TxSpec<'_>) -> TxOutcome {
        self.stm.execute(port, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;

    fn setup(n_procs: usize) -> (StmOps, HostMachine) {
        let ops = StmOps::new(0, 32, n_procs, 8, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), n_procs);
        (ops, m)
    }

    #[test]
    fn fetch_add_many_is_atomic() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let old = ops.fetch_add_many(&mut port, &[1, 2, 3], &[10, 20, 30]);
        assert_eq!(old, vec![0, 0, 0]);
        assert_eq!(ops.snapshot(&mut port, &[1, 2, 3]), vec![10, 20, 30]);
    }

    #[test]
    fn swap_returns_old() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        assert_eq!(ops.swap(&mut port, 7, 42), 0);
        assert_eq!(ops.swap(&mut port, 7, 43), 42);
    }

    #[test]
    fn mwcas_mismatch_reports_witnessed_values() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        ops.swap(&mut port, 0, 5);
        let err = ops.mwcas(&mut port, &[(0, 4, 9)]).unwrap_err();
        assert_eq!(err, vec![5]);
        assert_eq!(ops.snapshot(&mut port, &[0]), vec![5]);
    }

    #[test]
    fn mwcas_two_thread_contention_linearizes() {
        // Two threads repeatedly MWCAS two cells from (a,a) -> (a+1,a+1); the
        // cells must advance in lockstep.
        let (ops, m) = setup(2);
        std::thread::scope(|s| {
            for p in 0..2 {
                let ops = ops.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    let mut done = 0;
                    while done < 200 {
                        let snap = ops.snapshot(&mut port, &[0, 1]);
                        assert_eq!(snap[0], snap[1], "cells advanced out of lockstep");
                        let a = snap[0];
                        if ops.mwcas(&mut port, &[(0, a, a + 1), (1, a, a + 1)]).is_ok() {
                            done += 1;
                        }
                    }
                });
            }
        });
        let mut port = m.port(0);
        let snap = ops.snapshot(&mut port, &[0, 1]);
        assert_eq!(snap[0], 400);
        assert_eq!(snap[1], 400);
    }

    #[test]
    fn snapshot_duplicate_cells_panic_even_on_fast_path() {
        // The fast path itself tolerates duplicates, but `snapshot` enforces
        // the static-spec rules so both paths accept the same inputs
        // deterministically.
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ops.snapshot(&mut port, &[3, 3])
        }));
        assert!(r.is_err(), "duplicate cells in the data set must be rejected");
    }

    #[test]
    #[should_panic(expected = "one delta per cell")]
    fn fetch_add_many_length_mismatch_panics() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let _ = ops.fetch_add_many(&mut port, &[1, 2], &[1]);
    }
}
