//! High-level operations over an [`Stm`] instance: the derived primitives the
//! paper presents as corollaries of static transactions — multi-word
//! compare-and-swap, multi-word fetch-and-add, atomic swap, and atomic
//! snapshots.
//!
//! [`StmOps`] bundles an [`Stm`] with the built-in program table so common
//! operations need no program plumbing.
//!
//! [`StmOps::snapshot`] is special: it first attempts the invisible
//! double-collect read ([`Stm::try_read_only`]), which commits without a
//! single shared-memory write when no live owner intervenes, and only falls
//! back to the full acquiring protocol after the configured number of
//! validation rounds fail.
//!
//! # Examples
//!
//! ```
//! use stm_core::machine::host::HostMachine;
//! use stm_core::ops::StmOps;
//! use stm_core::stm::StmConfig;
//!
//! let ops = StmOps::new(0, 16, 1, 8, StmConfig::default());
//! let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
//! let mut port = machine.port(0);
//!
//! assert_eq!(ops.fetch_add(&mut port, 3, 10), 0);
//! assert_eq!(ops.fetch_add(&mut port, 3, 5), 10);
//! assert!(ops.mwcas(&mut port, &[(3, 15, 100), (4, 0, 200)]).is_ok());
//! assert_eq!(ops.snapshot(&mut port, &[3, 4]), vec![100, 200]);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::machine::MemPort;
use crate::program::{register_builtins, Builtins, OpCode, ProgramTable, ProgramTableBuilder};
use crate::stm::{Stm, StmConfig, TxError, TxOptions, TxOutcome, TxPlan, TxScratch, TxSpec};
use crate::word::{Addr, CellIdx, Word};

/// Upper bound on cached compiled plans per [`StmOps`] instance. Repeated
/// static transactions (counters, queue pointers, fixed MWCAS footprints)
/// cycle through a handful of `(op, cells)` shapes, so a small
/// move-to-front list captures nearly all of them; on overflow the
/// least-recently-used plan is dropped and will simply be recompiled on
/// next use.
pub const PLAN_CACHE_CAPACITY: usize = 32;

/// Cumulative hit/miss counters of an [`StmOps`] plan cache (see
/// [`StmOps::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an already-compiled plan.
    pub hits: u64,
    /// Lookups that had to compile (including cold-start compiles).
    pub misses: u64,
}

impl PlanCacheStats {
    /// Hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded move-to-front cache of compiled plans keyed by `(op, cells)`.
///
/// The vector is ordered most-recently-used first; hits migrate the plan to
/// the front, insertions evict the tail. Plans are shared out as
/// `Arc<TxPlan>` so a lookup never holds the lock during execution.
#[derive(Debug, Default)]
struct PlanCache {
    plans: Mutex<Vec<Arc<TxPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

thread_local! {
    /// Per-thread execution arena for the cached-plan entry points: one warm
    /// scratch per OS thread means the built-in hot ops run allocation-free
    /// no matter how many `StmOps` handles the thread touches.
    static OPS_SCRATCH: RefCell<TxScratch> = RefCell::new(TxScratch::new());
}

/// An [`Stm`] instance together with the built-in operation programs.
#[derive(Debug)]
pub struct StmOps {
    stm: Stm,
    ops: Builtins,
    cache: PlanCache,
}

impl Clone for StmOps {
    /// Cloning shares the STM instance but starts a fresh (empty) plan
    /// cache: plans are cheap to recompile, and per-clone caches keep the
    /// common clone-per-thread pattern free of cross-thread lock traffic.
    fn clone(&self) -> Self {
        StmOps { stm: self.stm.clone(), ops: self.ops, cache: PlanCache::default() }
    }
}

impl StmOps {
    /// Create an instance with only the built-in programs registered.
    ///
    /// Arguments are as in [`Stm::new`].
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, max_locs: usize, config: StmConfig) -> Self {
        Self::with_programs(base, n_cells, n_procs, max_locs, config, |_| ()).0
    }

    /// Create an instance, also registering application programs via
    /// `extra`; returns whatever `extra` produced (typically the opcodes).
    pub fn with_programs<X>(
        base: Addr,
        n_cells: usize,
        n_procs: usize,
        max_locs: usize,
        config: StmConfig,
        extra: impl FnOnce(&mut ProgramTableBuilder) -> X,
    ) -> (Self, X) {
        let mut builder = ProgramTable::builder();
        let ops = register_builtins(&mut builder);
        let x = extra(&mut builder);
        let table: Arc<ProgramTable> = builder.build();
        (
            StmOps {
                stm: Stm::new(base, n_cells, n_procs, max_locs, table, config),
                ops,
                cache: PlanCache::default(),
            },
            x,
        )
    }

    /// Create an instance over a pre-built layout (see
    /// [`Stm::with_layout`]) with only the built-in programs registered —
    /// the entry point for the sharded arena geometry.
    pub fn with_layout(layout: crate::layout::StmLayout, config: StmConfig) -> Self {
        Self::with_layout_programs(layout, config, |_| ()).0
    }

    /// Like [`StmOps::with_layout`], also registering application programs
    /// via `extra`; returns whatever `extra` produced.
    pub fn with_layout_programs<X>(
        layout: crate::layout::StmLayout,
        config: StmConfig,
        extra: impl FnOnce(&mut ProgramTableBuilder) -> X,
    ) -> (Self, X) {
        let mut builder = ProgramTable::builder();
        let ops = register_builtins(&mut builder);
        let x = extra(&mut builder);
        let table: Arc<ProgramTable> = builder.build();
        (
            StmOps { stm: Stm::with_layout(layout, table, config), ops, cache: PlanCache::default() },
            x,
        )
    }

    /// Attach a shared [`PriorityBoard`](crate::contention::PriorityBoard)
    /// to the underlying instance (see
    /// [`Stm::with_priority_board`](crate::stm::Stm::with_priority_board)).
    #[must_use]
    pub fn with_priority_board(
        mut self,
        board: Arc<crate::contention::PriorityBoard>,
    ) -> Self {
        self.stm = self.stm.with_priority_board(board);
        self
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &Stm {
        &self.stm
    }

    /// The built-in opcodes.
    pub fn builtins(&self) -> Builtins {
        self.ops
    }

    /// The cumulative hit/miss counters of this handle's plan cache (the
    /// W2 ablation's measurement hook). Clones start at zero — each clone
    /// has its own cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
        }
    }

    /// Fetch (or compile and cache) the plan for `(op, cells)`.
    ///
    /// Cached plans capture no parameter words — parameters vary per call
    /// and are supplied to [`Stm::run_plan_in`] explicitly — so one plan
    /// serves every call that shares the `(op, cells)` shape. The cache is
    /// bounded (32 entries, move-to-front); evicted plans are recompiled on
    /// next use.
    ///
    /// # Panics
    ///
    /// Panics on any malformed data set, duplicate cells included —
    /// matching the spec-validating entry points' behaviour.
    pub fn plan_for(&self, op: OpCode, cells: &[CellIdx]) -> Arc<TxPlan> {
        let mut plans = self.cache.plans.lock().expect("plan cache lock");
        if let Some(at) = plans.iter().position(|p| p.matches(op, cells)) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            let plan = plans.remove(at);
            plans.insert(0, Arc::clone(&plan));
            return plan;
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(
            self.stm
                .compile(&TxSpec::new(op, &[], cells))
                .unwrap_or_else(|e| panic!("{e}")),
        );
        if plans.len() >= PLAN_CACHE_CAPACITY {
            plans.truncate(PLAN_CACHE_CAPACITY - 1);
        }
        plans.insert(0, Arc::clone(&plan));
        plan
    }

    /// Run `(op, params, cells)` through the plan cache with default options
    /// (unlimited budget — retries until commit) and the thread-local
    /// scratch, handing the committed old values to `read_out` while the
    /// scratch borrow is live.
    ///
    /// This is the allocation-free hot path for registered programs with
    /// recurring `(op, cells)` shapes: the plan is compiled at most once per
    /// shape (see [`StmOps::plan_for`]) and execution reuses a per-thread
    /// [`TxScratch`], so a warm call performs zero heap allocations. The
    /// built-in derived ops ([`StmOps::fetch_add`], [`StmOps::swap`],
    /// [`StmOps::mwcas`], …) and the `stm-structures` containers all route
    /// through here.
    ///
    /// # Panics
    ///
    /// Panics on any malformed data set (empty, over `max_locs`, duplicate
    /// or out-of-range cells, unregistered opcode) with the same messages as
    /// the spec-validating [`StmOps::run`], and if the registered program
    /// itself panics.
    pub fn run_planned<P: MemPort, R>(
        &self,
        port: &mut P,
        op: OpCode,
        params: &[Word],
        cells: &[CellIdx],
        read_out: impl FnOnce(&[u32]) -> R,
    ) -> R {
        let plan = self.plan_for(op, cells);
        OPS_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let _stats = self
                .stm
                .run_plan_in(port, &plan, params, &mut TxOptions::new(), &mut scratch)
                .expect("unlimited budget cannot be exhausted and builtins do not panic");
            read_out(scratch.old())
        })
    }

    /// Atomically add `delta` (wrapping) to `cell`, returning the old value.
    /// Runs off a cached single-cell plan ([`Kernel::K1`](crate::stm::Kernel)):
    /// allocation-free once the cache and the thread's scratch are warm.
    pub fn fetch_add<P: MemPort>(&self, port: &mut P, cell: CellIdx, delta: u32) -> u32 {
        self.run_planned(port, self.ops.add, &[delta as Word], &[cell], |old| {
            // Invariant: `TxOutcome::old` has exactly one entry per data-set
            // cell, established by the agreement phase before commit.
            debug_assert_eq!(old.len(), 1, "one old value per data-set cell");
            old[0]
        })
    }

    /// Atomically add per-cell deltas to several cells, returning old values.
    ///
    /// # Panics
    ///
    /// Panics if `cells` and `deltas` differ in length (or on any
    /// [`Stm::run`] spec violation).
    pub fn fetch_add_many<P: MemPort>(
        &self,
        port: &mut P,
        cells: &[CellIdx],
        deltas: &[u32],
    ) -> Vec<u32> {
        assert_eq!(cells.len(), deltas.len(), "one delta per cell");
        let params: Vec<Word> = deltas.iter().map(|&d| d as Word).collect();
        self.run_planned(port, self.ops.add, &params, cells, |old| old.to_vec())
    }

    /// Atomically replace `cell` with `value`, returning the old value.
    /// Runs off a cached single-cell plan, like [`StmOps::fetch_add`].
    pub fn swap<P: MemPort>(&self, port: &mut P, cell: CellIdx, value: u32) -> u32 {
        self.run_planned(port, self.ops.swap, &[value as Word], &[cell], |old| {
            debug_assert_eq!(old.len(), 1, "one old value per data-set cell");
            old[0]
        })
    }

    /// Atomic multi-cell snapshot.
    ///
    /// First tries the invisible double-collect read
    /// ([`Stm::try_read_only`]): when it validates, the snapshot commits
    /// with **zero shared-memory writes**. After
    /// [`StmConfig::fast_read_rounds`] failed validation rounds (a live
    /// owner keeps intervening), falls back to the identity transaction over
    /// `cells`, which acquires ownerships and helps blockers — preserving
    /// the protocol's lock-freedom guarantee.
    ///
    /// The spec-validation rules of the acquiring path (non-empty,
    /// in-range, within `max_locs`, strictly ascending) are enforced up
    /// front so both paths accept exactly the same inputs.
    pub fn snapshot<P: MemPort>(&self, port: &mut P, cells: &[CellIdx]) -> Vec<u32> {
        let spec = TxSpec::new(self.ops.read, &[], cells);
        self.stm.validate_spec(port, &spec);
        if let Some(out) = self.stm.try_read_only(port, cells) {
            return out.old;
        }
        self.run_planned(port, self.ops.read, &[], cells, |old| old.to_vec())
    }

    /// Multi-word compare-and-swap: atomically, if every `cell` holds its
    /// `expected` value, install every `new` value.
    ///
    /// # Errors
    ///
    /// On mismatch, returns the witnessed values (an atomic snapshot taken at
    /// the linearization point).
    pub fn mwcas<P: MemPort>(
        &self,
        port: &mut P,
        entries: &[(CellIdx, u32, u32)],
    ) -> Result<(), Vec<u32>> {
        let cells: Vec<CellIdx> = entries.iter().map(|e| e.0).collect();
        let params: Vec<Word> =
            entries.iter().map(|&(_, exp, new)| ((exp as Word) << 32) | new as Word).collect();
        self.run_planned(port, self.ops.mwcas, &params, &cells, |old| {
            let matched = entries.iter().zip(old).all(|(&(_, exp, _), &o)| o == exp);
            if matched {
                Ok(())
            } else {
                Err(old.to_vec())
            }
        })
    }

    /// Run an arbitrary registered program (see [`StmOps::with_programs`])
    /// under the given options.
    ///
    /// # Errors
    ///
    /// Propagates [`TxError`] from [`Stm::run`]: budget exhaustion or an
    /// op panic.
    pub fn run<P: MemPort, O, C, J>(
        &self,
        port: &mut P,
        spec: &TxSpec<'_>,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<TxOutcome, TxError>
    where
        O: crate::observe::TxObserver,
        C: crate::contention::ContentionManager,
        J: crate::durable::Journal,
    {
        self.stm.run(port, spec, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;

    fn setup(n_procs: usize) -> (StmOps, HostMachine) {
        let ops = StmOps::new(0, 32, n_procs, 8, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), n_procs);
        (ops, m)
    }

    #[test]
    fn fetch_add_many_is_atomic() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let old = ops.fetch_add_many(&mut port, &[1, 2, 3], &[10, 20, 30]);
        assert_eq!(old, vec![0, 0, 0]);
        assert_eq!(ops.snapshot(&mut port, &[1, 2, 3]), vec![10, 20, 30]);
    }

    #[test]
    fn swap_returns_old() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        assert_eq!(ops.swap(&mut port, 7, 42), 0);
        assert_eq!(ops.swap(&mut port, 7, 43), 42);
    }

    #[test]
    fn mwcas_mismatch_reports_witnessed_values() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        ops.swap(&mut port, 0, 5);
        let err = ops.mwcas(&mut port, &[(0, 4, 9)]).unwrap_err();
        assert_eq!(err, vec![5]);
        assert_eq!(ops.snapshot(&mut port, &[0]), vec![5]);
    }

    #[test]
    fn mwcas_two_thread_contention_linearizes() {
        // Two threads repeatedly MWCAS two cells from (a,a) -> (a+1,a+1); the
        // cells must advance in lockstep.
        let (ops, m) = setup(2);
        std::thread::scope(|s| {
            for p in 0..2 {
                let ops = ops.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    let mut done = 0;
                    while done < 200 {
                        let snap = ops.snapshot(&mut port, &[0, 1]);
                        assert_eq!(snap[0], snap[1], "cells advanced out of lockstep");
                        let a = snap[0];
                        if ops.mwcas(&mut port, &[(0, a, a + 1), (1, a, a + 1)]).is_ok() {
                            done += 1;
                        }
                    }
                });
            }
        });
        let mut port = m.port(0);
        let snap = ops.snapshot(&mut port, &[0, 1]);
        assert_eq!(snap[0], 400);
        assert_eq!(snap[1], 400);
    }

    #[test]
    fn snapshot_duplicate_cells_panic_even_on_fast_path() {
        // The fast path itself tolerates duplicates, but `snapshot` enforces
        // the static-spec rules so both paths accept the same inputs
        // deterministically.
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ops.snapshot(&mut port, &[3, 3])
        }));
        assert!(r.is_err(), "duplicate cells in the data set must be rejected");
    }

    #[test]
    #[should_panic(expected = "one delta per cell")]
    fn fetch_add_many_length_mismatch_panics() {
        let (ops, m) = setup(1);
        let mut port = m.port(0);
        let _ = ops.fetch_add_many(&mut port, &[1, 2], &[1]);
    }
}
