//! Dynamic transactions — the paper's "future work" extension.
//!
//! The 1995 STM is *static*: a transaction must declare its data set before
//! running. The paper notes (§ discussion) that dynamic transactions —
//! where the locations accessed are discovered during execution — were an
//! open problem. This module provides the classic construction layered on
//! the static machinery: run the transaction body **optimistically** against
//! a local read/write log (reads go through
//! [`Stm::read_cell`], which always returns committed
//! values), then commit the log with a single *static* validate-and-write
//! transaction that re-checks every read value and installs every write
//! atomically. If validation fails, re-run the body.
//!
//! This gives opaque-by-construction dynamic transactions: the commit is
//! one static transaction (atomic, lock-free), and a body that observed a
//! stale mix of values simply fails validation and retries. The body may
//! therefore observe *inconsistent snapshots across reads* mid-run — like
//! the original optimistic STMs — so bodies must be pure (no side effects,
//! no panics driven by impossible states; use [`DynamicTx::read`]'s values
//! only to compute).
//!
//! **Read-only transactions take a fast path**: a body that never calls
//! [`DynamicTx::write`] commits by *validating* its read set against memory
//! ([`Stm::validate_read_set`]) instead of running the acquiring commit
//! transaction — zero shared-memory writes when the validation holds. After
//! [`StmConfig::fast_read_rounds`](crate::stm::StmConfig::fast_read_rounds)
//! failed validations the commit falls back to the full acquiring protocol
//! (an identity MWCAS), which helps blockers and preserves lock-freedom.
//!
//! # Examples
//!
//! ```
//! use stm_core::dynamic::DynamicStm;
//! use stm_core::machine::host::HostMachine;
//! use stm_core::stm::{StmConfig, TxOptions};
//!
//! let dstm = DynamicStm::new(0, 16, 1, StmConfig::default());
//! let machine = HostMachine::new(dstm.stm().layout().words_needed(), 1);
//! let mut port = machine.port(0);
//!
//! // Walk a "linked list" of cells (cell value = next index) and bump a
//! // counter at its end — the data set depends on the data.
//! dstm.run(&mut port, |tx| {
//!     let mut at = 0usize;
//!     for _ in 0..3 {
//!         at = tx.read(at) as usize % 16;
//!     }
//!     let v = tx.read(at);
//!     tx.write(at, v + 1);
//! }, &mut TxOptions::new()).unwrap();
//! assert_eq!(dstm.read_cell(&mut port, 0), 1);
//! ```

use crate::contention::{AdaptiveManager, ContentionManager};
use crate::machine::MemPort;
use crate::ops::StmOps;
use crate::stm::{Stm, StmConfig, TxBudget, TxError, TxOptions, TxScratch, TxSpec, TxStats};
use crate::word::{cell_value, pack_cell, Addr, CellIdx, Word};

/// A software transactional memory supporting dynamic transactions.
///
/// Wraps the static [`Stm`] (exposed via [`DynamicStm::stm`]) and shares its
/// cells, so static and dynamic transactions interoperate on the same data.
#[derive(Debug, Clone)]
pub struct DynamicStm {
    ops: StmOps,
}

/// The per-attempt transaction context handed to the body.
///
/// The read/write logs are sorted vectors borrowed from the enclosing
/// [`DynamicStm::run`] call and reused across body retries (`clear`, not
/// reallocate), so re-running a body allocates nothing once the logs are
/// warm. Footprints are bounded by `max_locs`, so the binary-searched
/// vectors also beat tree maps on locality at these sizes.
#[derive(Debug)]
pub struct DynamicTx<'a, P: MemPort> {
    stm: &'a Stm,
    port: &'a mut P,
    /// Read set: first-observed `(cell, value, stamp)`, sorted by cell.
    reads: &'a mut Vec<(CellIdx, u32, u16)>,
    /// Write set: last value written per cell, sorted by cell.
    writes: &'a mut Vec<(CellIdx, u32)>,
}

impl<'a, P: MemPort> DynamicTx<'a, P> {
    /// Transactional read of `cell`.
    ///
    /// Returns the pending write if the transaction already wrote the cell,
    /// otherwise the committed value at first access (cached thereafter, so
    /// a transaction reads each cell at one point in time).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn read(&mut self, cell: CellIdx) -> u32 {
        if let Ok(at) = self.writes.binary_search_by_key(&cell, |e| e.0) {
            return self.writes[at].1;
        }
        match self.reads.binary_search_by_key(&cell, |e| e.0) {
            Ok(at) => self.reads[at].1,
            Err(at) => {
                let w = self.port.read(self.stm.layout().cell(cell));
                let (value, stamp) = (cell_value(w), crate::word::cell_stamp(w));
                self.reads.insert(at, (cell, value, stamp));
                value
            }
        }
    }

    /// Transactional write of `cell` (buffered until commit).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn write(&mut self, cell: CellIdx, value: u32) {
        assert!(cell < self.stm.layout().n_cells(), "cell index {cell} out of range");
        // Track the pre-image too, so validation covers blind writes.
        if let Err(at) = self.reads.binary_search_by_key(&cell, |e| e.0) {
            let w = self.port.read(self.stm.layout().cell(cell));
            self.reads.insert(at, (cell, cell_value(w), crate::word::cell_stamp(w)));
        }
        match self.writes.binary_search_by_key(&cell, |e| e.0) {
            Ok(at) => self.writes[at].1 = value,
            Err(at) => self.writes.insert(at, (cell, value)),
        }
    }

    /// Number of distinct cells in the transaction's footprint so far.
    pub fn footprint(&self) -> usize {
        self.reads.len().max(self.writes.len())
    }
}

/// Sorted-insert dedup for small cell sets (bounded by `max_locs`).
fn note_cell(set: &mut Vec<CellIdx>, cell: CellIdx) {
    if let Err(at) = set.binary_search(&cell) {
        set.insert(at, cell);
    }
}

impl DynamicStm {
    /// Create a dynamic STM with `n_cells` cells for `n_procs` processors.
    ///
    /// The underlying static instance allows data sets up to the validate-
    /// and-write commit footprint; dynamic transactions may touch at most
    /// `max_locs` = 64 distinct cells (enforced at commit).
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, config: StmConfig) -> Self {
        let max_locs = 64.min(n_cells).max(1);
        DynamicStm { ops: StmOps::new(base, n_cells, n_procs, max_locs, config) }
    }

    /// Wrap an existing operations handle, sharing its cells, config, and
    /// (if attached) priority board with static transactions. Dynamic
    /// footprints are bounded by the handle's `max_locs`.
    pub fn from_ops(ops: StmOps) -> Self {
        DynamicStm { ops }
    }

    /// The underlying static STM instance.
    pub fn stm(&self) -> &Stm {
        self.ops.stm()
    }

    /// The underlying static operations handle (built-in programs included),
    /// for mixing static transactions over the same cells.
    pub fn ops(&self) -> &StmOps {
        &self.ops
    }

    /// Read one cell's committed value outside any transaction.
    pub fn read_cell<P: MemPort>(&self, port: &mut P, cell: CellIdx) -> u32 {
        self.ops.stm().read_cell(port, cell)
    }

    /// Initialize a cell before concurrent use.
    pub fn init_cell<P: MemPort>(&self, port: &mut P, cell: CellIdx, value: u32) {
        self.ops.stm().init_cell(port, cell, value)
    }

    /// Run `body` as an atomic dynamic transaction under the given
    /// [`TxOptions`]; returns the body's result and cumulative retry
    /// statistics.
    ///
    /// `body` may run several times; it must be pure (compute only from the
    /// values [`DynamicTx::read`] returns).
    ///
    /// A body that never writes commits via the **read-only fast path**: its
    /// read set is validated in place ([`Stm::validate_read_set`]) with zero
    /// shared-memory writes. After
    /// [`StmConfig::fast_read_rounds`](crate::stm::StmConfig::fast_read_rounds)
    /// failed validations, the commit falls back to the acquiring identity
    /// transaction, which helps blockers (lock-freedom preserved).
    ///
    /// When [`StmConfig::delta_retry_cells`](crate::stm::StmConfig::delta_retry_cells)
    /// is non-zero and a validate-and-write commit fails with at most that
    /// many read cells changed, the body is **delta re-run**: the read log
    /// is refreshed in place from the failed commit's atomic snapshot and
    /// the body re-executes against that consistent cut without re-reading
    /// its footprint from memory. A commit that lands this way reports
    /// [`TxObserver::delta_committed`](crate::observe::TxObserver::delta_committed).
    /// The default (`0`) disables the path, leaving schedules identical to
    /// the classic full-retry loop.
    ///
    /// Budget semantics: `max_attempts` bounds *body executions* (the first
    /// always runs); `max_cycles`/`max_wall` bound the whole call, with the
    /// remaining allowance handed to each validate-and-write commit (so a
    /// commit cannot overrun the caller's deadline by retrying internally).
    /// The contention manager persists across body retries, so starvation
    /// pressure accumulates over the whole dynamic transaction.
    ///
    /// A panicking body is *contained*: the local read/write log is
    /// discarded (nothing was shared yet, so there is nothing to release)
    /// and [`TxError::OpPanicked`] is returned.
    ///
    /// # Errors
    ///
    /// [`TxError::BudgetExhausted`] when the budget runs out before a
    /// validated commit; [`TxError::OpPanicked`] when the body panics.
    ///
    /// # Panics
    ///
    /// Panics if the transaction's footprint exceeds the instance's
    /// `max_locs`.
    pub fn run<P, R, O, C, J>(
        &self,
        port: &mut P,
        mut body: impl FnMut(&mut DynamicTx<'_, P>) -> R,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: ContentionManager,
        J: crate::durable::Journal,
    {
        let budget = opts.budget;
        let cm = &mut opts.manager;
        let obs = &mut opts.observer;
        let jrn = &mut opts.journal;
        let mut stats = TxStats::default();
        // Per-call buffers, reused across body retries: the read/write logs,
        // the commit footprint and its packed parameters, and the static
        // commit's execution scratch. After the first attempt warms them, a
        // retry (body re-run + validate-and-write commit) allocates nothing
        // beyond what the body itself allocates.
        let mut read_log: Vec<(CellIdx, u32, u16)> = Vec::new();
        let mut write_log: Vec<(CellIdx, u32)> = Vec::new();
        let mut entries: Vec<(CellIdx, Word)> = Vec::new();
        let mut cells: Vec<CellIdx> = Vec::new();
        let mut params: Vec<Word> = Vec::new();
        let mut contended: Vec<CellIdx> = Vec::new();
        let mut scratch = TxScratch::new();
        let mut fast_fails: u64 = 0;
        // Cells changed in the last failed validation, when few enough for a
        // delta re-run (read log already refreshed in place; see below).
        let mut delta_pending: Option<u64> = None;
        let started = std::time::Instant::now();
        let cycles0 = port.now();
        loop {
            let cycles_lost = port.now().saturating_sub(cycles0);
            if stats.attempts > 0 && budget.is_exhausted(stats.attempts, cycles_lost, started) {
                return Err(TxError::BudgetExhausted {
                    attempts: stats.attempts,
                    cells_contended: contended.len() as u64,
                    cycles_lost,
                });
            }
            if delta_pending.is_none() {
                read_log.clear();
            }
            write_log.clear();
            let result = {
                let mut tx = DynamicTx {
                    stm: self.ops.stm(),
                    port: &mut *port,
                    reads: &mut read_log,
                    writes: &mut write_log,
                };
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut tx)));
                match caught {
                    Ok(result) => result,
                    Err(_payload) => {
                        // The body only touched its local log; clearing the
                        // log (next attempt, or never) is the whole abort.
                        let _ = tx;
                        stats.attempts += 1;
                        obs.op_panicked(port.proc_id(), stats.attempts, port.now());
                        return Err(TxError::OpPanicked { attempts: stats.attempts });
                    }
                }
            };
            stats.attempts += 1;

            if write_log.is_empty() && read_log.is_empty() {
                return Ok((result, stats)); // pure computation, nothing to commit
            }

            // Read-only fast commit: the cached (value, stamp) pairs are the
            // collect; validating them in place is the second collect. On
            // success the transaction linearizes at the validation point with
            // zero shared-memory writes.
            if write_log.is_empty() && fast_fails < u64::from(self.stm().config().fast_read_rounds)
            {
                entries.clear();
                entries.extend(
                    read_log.iter().map(|&(c, value, stamp)| (c, pack_cell(stamp, value))),
                );
                port.step(crate::step::StepPoint::DynCommit);
                if self.stm().validate_read_set(port, &entries) {
                    return Ok((result, stats));
                }
                // A writer or live owner intervened; re-run the body for a
                // fresh cut. After fast_read_rounds misses, fall through to
                // the acquiring commit below, which helps blockers.
                fast_fails += 1;
                stats.conflicts += 1;
                continue;
            }

            // Commit: one static validate-and-write transaction over the
            // whole footprint. Each location's parameter packs
            // (expected_old << 32 | new); the program writes only if every
            // expected value matches — exactly the builtin MWCAS, reused
            // through the ops handle's plan cache (repeated closures with a
            // stable footprint skip compilation and pick up the small-k
            // kernels).
            cells.clear();
            cells.extend(read_log.iter().map(|e| e.0));
            assert!(
                cells.len() <= self.ops.stm().layout().max_locs(),
                "dynamic transaction footprint {} exceeds max_locs {}",
                cells.len(),
                self.ops.stm().layout().max_locs()
            );
            params.clear();
            params.extend(read_log.iter().map(|&(c, expected, _)| {
                let new = write_log
                    .binary_search_by_key(&c, |e| e.0)
                    .map_or(expected, |at| write_log[at].1);
                ((expected as Word) << 32) | new as Word
            }));
            // Hand the commit whatever time remains; attempt budgeting stays
            // at this level (it counts body executions, not commit CASes).
            let commit_budget = TxBudget {
                max_attempts: None,
                max_cycles: budget
                    .max_cycles
                    .map(|m| m.saturating_sub(port.now().saturating_sub(cycles0))),
                max_wall: budget.max_wall.map(|m| m.saturating_sub(started.elapsed())),
            };
            port.step(crate::step::StepPoint::DynCommit);
            let plan = self.ops.plan_for(self.ops.builtins().mwcas, &cells);
            let mut commit_opts = TxOptions::new()
                .observer(&mut *obs)
                .manager(&mut *cm)
                .budget(commit_budget)
                .journal(&mut *jrn);
            let out = match self.ops.stm().run_plan_in(
                port,
                &plan,
                &params,
                &mut commit_opts,
                &mut scratch,
            ) {
                Ok(out) => out,
                Err(TxError::BudgetExhausted { cells_contended, .. }) => {
                    return Err(TxError::BudgetExhausted {
                        attempts: stats.attempts,
                        cells_contended: cells_contended.max(contended.len() as u64),
                        cycles_lost: port.now().saturating_sub(cycles0),
                    });
                }
                Err(TxError::OpPanicked { .. }) => {
                    return Err(TxError::OpPanicked { attempts: stats.attempts });
                }
                Err(TxError::DuplicateCell { .. }) => {
                    // The footprint is a sorted log of distinct cells.
                    unreachable!("dynamic commit footprint is deduplicated by construction")
                }
            };
            stats.helps += out.helps;
            stats.conflicts += out.conflicts;
            let mut changed: u64 = 0;
            for (i, &old) in scratch.old().iter().enumerate() {
                if old != read_log[i].1 {
                    changed += 1;
                    note_cell(&mut contended, cells[i]);
                }
            }
            if changed == 0 {
                if let Some(cells_changed) = delta_pending {
                    obs.delta_committed(port.proc_id(), cells_changed, port.now());
                }
                return Ok((result, stats));
            }
            // Validation failed: some read was stale. If only a few cells
            // moved (the tunable `delta_retry_cells`; 0 disables the path),
            // take the **delta re-run**: the failed commit executed as an
            // identity MWCAS, so `scratch` holds a consistent snapshot of the
            // whole footprint linearized at that commit. Refresh the read log
            // from it in place and re-run the body served from the log — no
            // fresh memory reads for footprint cells, so the body computes
            // against one atomic cut. This is unconditionally safe: the next
            // commit re-validates every read atomically, so a refresh gone
            // stale costs one more retry, never consistency.
            if changed as usize <= self.stm().config().delta_retry_cells {
                for ((entry, &old), &stamp) in
                    read_log.iter_mut().zip(scratch.old()).zip(scratch.old_stamps())
                {
                    entry.1 = old;
                    entry.2 = stamp;
                }
                delta_pending = Some(changed);
            } else {
                delta_pending = None; // full retry: discard the log
            }
        }
    }

    /// [`DynamicStm::run`] with a [`TxObserver`](crate::observe::TxObserver)
    /// receiving the lifecycle events of each validate-and-write commit
    /// transaction (one observed static execution per body attempt).
    ///
    /// Legacy semantics: retries forever, body panics propagate, and every
    /// commit runs the acquiring transaction (no read-only fast path).
    ///
    /// # Panics
    ///
    /// Panics if the transaction's footprint exceeds the instance's
    /// `max_locs`, or if `body` panics.
    #[deprecated(
        since = "0.2.0",
        note = "use `DynamicStm::run`, lending the observer via \
                `TxOptions::new().observer(&mut *obs)`; note it returns \
                `Result` and contains body panics as `TxError::OpPanicked`"
    )]
    #[allow(deprecated)] // wrapper delegates along the legacy chain
    pub fn run_observed<P: MemPort, R, O: crate::observe::TxObserver>(
        &self,
        port: &mut P,
        obs: &mut O,
        mut body: impl FnMut(&mut DynamicTx<'_, P>) -> R,
    ) -> (R, TxStats) {
        let mut stats = TxStats::default();
        let mut read_log: Vec<(CellIdx, u32, u16)> = Vec::new();
        let mut write_log: Vec<(CellIdx, u32)> = Vec::new();
        loop {
            read_log.clear();
            write_log.clear();
            let result = {
                let mut tx = DynamicTx {
                    stm: self.ops.stm(),
                    port,
                    reads: &mut read_log,
                    writes: &mut write_log,
                };
                body(&mut tx)
            };
            stats.attempts += 1;

            if write_log.is_empty() && read_log.is_empty() {
                return (result, stats); // pure computation, nothing to commit
            }

            // Commit: one static validate-and-write transaction over the
            // whole footprint. Each location's parameter packs
            // (expected_old << 32 | new); the program writes only if every
            // expected value matches — exactly the builtin MWCAS, reused.
            let cells: Vec<CellIdx> = read_log.iter().map(|e| e.0).collect();
            assert!(
                cells.len() <= self.ops.stm().layout().max_locs(),
                "dynamic transaction footprint {} exceeds max_locs {}",
                cells.len(),
                self.ops.stm().layout().max_locs()
            );
            let params: Vec<Word> = read_log
                .iter()
                .map(|&(c, expected, _)| {
                    let new = write_log
                        .binary_search_by_key(&c, |e| e.0)
                        .map_or(expected, |at| write_log[at].1);
                    ((expected as Word) << 32) | new as Word
                })
                .collect();
            port.step(crate::step::StepPoint::DynCommit);
            let out = self.ops.stm().execute_observed(
                port,
                &TxSpec::new(self.ops.builtins().mwcas, &params, &cells),
                obs,
            );
            // `attempts` counts body executions; fold in only the commit's
            // conflict/help counters.
            stats.helps += out.stats.helps;
            stats.conflicts += out.stats.conflicts;
            let validated =
                read_log.iter().zip(&out.old).all(|(&(_, expected, _), &old)| old == expected);
            if validated {
                return (result, stats);
            }
            // Validation failed: some read was stale; re-run the body.
        }
    }

    /// [`DynamicStm::run`] under a [`TxBudget`], with an adaptive contention
    /// manager driving the commit retries and panic containment around the
    /// body.
    ///
    /// # Errors
    ///
    /// [`TxError::BudgetExhausted`] when the budget runs out before a
    /// validated commit; [`TxError::OpPanicked`] when the body panics.
    #[deprecated(
        since = "0.2.0",
        note = "use `DynamicStm::run` with \
                `TxOptions::new().manager(AdaptiveManager::new(port.proc_id())).budget(budget)`"
    )]
    pub fn run_within<P: MemPort, R>(
        &self,
        port: &mut P,
        budget: TxBudget,
        body: impl FnMut(&mut DynamicTx<'_, P>) -> R,
    ) -> Result<(R, TxStats), TxError> {
        let cm = AdaptiveManager::new(port.proc_id());
        self.run(port, body, &mut TxOptions::new().manager(cm).budget(budget))
    }

    /// [`DynamicStm::run_within`] with an explicit [`ContentionManager`] and
    /// [`TxObserver`](crate::observe::TxObserver).
    ///
    /// # Errors
    ///
    /// See [`DynamicStm::run_within`].
    ///
    /// # Panics
    ///
    /// Panics if the transaction's footprint exceeds the instance's
    /// `max_locs`.
    #[deprecated(
        since = "0.2.0",
        note = "use `DynamicStm::run`, lending the manager and observer via \
                `TxOptions::new().manager(&mut *cm).observer(&mut *obs).budget(budget)`"
    )]
    pub fn run_within_observed<P, R, C, O>(
        &self,
        port: &mut P,
        budget: TxBudget,
        cm: &mut C,
        obs: &mut O,
        body: impl FnMut(&mut DynamicTx<'_, P>) -> R,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        C: ContentionManager,
        O: crate::observe::TxObserver,
    {
        self.run(
            port,
            body,
            &mut TxOptions::new().manager(&mut *cm).observer(&mut *obs).budget(budget),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;

    fn setup(n_cells: usize, n_procs: usize) -> (DynamicStm, HostMachine) {
        let d = DynamicStm::new(0, n_cells, n_procs, StmConfig::default());
        let m = HostMachine::new(d.stm().layout().words_needed(), n_procs);
        (d, m)
    }

    #[test]
    fn read_write_roundtrip() {
        let (d, m) = setup(8, 1);
        let mut port = m.port(0);
        let ((), stats) = d.run(&mut port, |tx| {
            assert_eq!(tx.read(3), 0);
            tx.write(3, 42);
            assert_eq!(tx.read(3), 42, "read-own-write");
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(stats.attempts, 1);
        assert_eq!(d.read_cell(&mut port, 3), 42);
    }

    #[test]
    fn data_dependent_footprint() {
        // cell 0 holds an index; the transaction follows it.
        let (d, m) = setup(8, 1);
        let mut port = m.port(0);
        d.init_cell(&mut port, 0, 5);
        d.init_cell(&mut port, 5, 100);
        let (seen, _) = d.run(&mut port, |tx| {
            let idx = tx.read(0) as usize;
            let v = tx.read(idx);
            tx.write(idx, v + 1);
            v
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(seen, 100);
        assert_eq!(d.read_cell(&mut port, 5), 101);
    }

    #[test]
    fn pure_body_commits_without_memory() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let (x, stats) = d.run(&mut port, |_tx| 7, &mut TxOptions::new()).unwrap();
        assert_eq!(x, 7);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn blind_writes_are_validated_too() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let ((), _) = d.run(&mut port, |tx| {
            tx.write(2, 9); // no prior read
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(d.read_cell(&mut port, 2), 9);
    }

    #[test]
    fn concurrent_dynamic_counters_are_exact() {
        const PROCS: usize = 4;
        const PER: u32 = 300;
        let (d, m) = setup(4, PROCS);
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let d = d.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        d.run(&mut port, |tx| {
                            let v = tx.read(1);
                            tx.write(1, v + 1);
                        }, &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(d.read_cell(&mut port, 1), PROCS as u32 * PER);
    }

    #[test]
    fn concurrent_list_walk_transfer_conserves() {
        // Cells 0..4 are a ring of "next" pointers; cells 4..8 hold money.
        // Each transaction walks one hop from its start and moves a unit to
        // the account after it — a data-dependent footprint under
        // contention.
        const PROCS: usize = 4;
        let (d, m) = setup(8, PROCS);
        {
            let mut port = m.port(0);
            for i in 0..4 {
                d.init_cell(&mut port, i, ((i + 1) % 4) as u32);
                d.init_cell(&mut port, 4 + i, 50);
            }
        }
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let d = d.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for i in 0..150 {
                        d.run(&mut port, |tx| {
                            let a = tx.read((p + i) % 4) as usize;
                            let b = (a + 1) % 4;
                            let va = tx.read(4 + a);
                            if va > 0 {
                                let vb = tx.read(4 + b);
                                tx.write(4 + a, va - 1);
                                tx.write(4 + b, vb + 1);
                            }
                        }, &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        let total: u32 = (4..8).map(|c| d.read_cell(&mut port, c)).sum();
        assert_eq!(total, 200, "money conserved through dynamic transactions");
    }

    #[test]
    fn stats_report_retries_under_contention() {
        // Not asserting a particular count — just that the plumbing reports
        // attempts >= 1 and merges static-commit stats.
        let (d, m) = setup(2, 2);
        let mut port = m.port(0);
        let ((), stats) = d.run(&mut port, |tx| {
            let v = tx.read(0);
            tx.write(0, v + 1);
        }, &mut TxOptions::new()).unwrap();
        assert!(stats.attempts >= 1);
    }
}
