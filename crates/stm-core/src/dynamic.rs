//! Dynamic transactions — the paper's "future work" extension.
//!
//! The 1995 STM is *static*: a transaction must declare its data set before
//! running. The paper notes (§ discussion) that dynamic transactions —
//! where the locations accessed are discovered during execution — were an
//! open problem. This module provides the classic construction layered on
//! the static machinery: run the transaction body **optimistically** against
//! a local read/write log (reads go through
//! [`Stm::read_cell`], which always returns committed
//! values), then commit the log with a single *static* validate-and-write
//! transaction that re-checks every read value and installs every write
//! atomically. If validation fails, re-run the body.
//!
//! This gives opaque-by-construction dynamic transactions: the commit is
//! one static transaction (atomic, lock-free), and a body that observed a
//! stale mix of values simply fails validation and retries. The body may
//! therefore observe *inconsistent snapshots across reads* mid-run — like
//! the original optimistic STMs — so bodies must be pure (no side effects,
//! no panics driven by impossible states; use [`DynamicTx::read`]'s values
//! only to compute).
//!
//! **Read-only transactions take a fast path**: a body that never calls
//! [`DynamicTx::write`] commits by *validating* its read set against memory
//! ([`Stm::validate_read_set`]) instead of running the acquiring commit
//! transaction — zero shared-memory writes when the validation holds. After
//! [`StmConfig::fast_read_rounds`](crate::stm::StmConfig::fast_read_rounds)
//! failed validations the commit falls back to the full acquiring protocol
//! (an identity MWCAS), which helps blockers and preserves lock-freedom.
//!
//! # Examples
//!
//! ```
//! use stm_core::dynamic::DynamicStm;
//! use stm_core::machine::host::HostMachine;
//! use stm_core::stm::{StmConfig, TxOptions};
//!
//! let dstm = DynamicStm::new(0, 16, 1, StmConfig::default());
//! let machine = HostMachine::new(dstm.stm().layout().words_needed(), 1);
//! let mut port = machine.port(0);
//!
//! // Walk a "linked list" of cells (cell value = next index) and bump a
//! // counter at its end — the data set depends on the data.
//! dstm.run(&mut port, |tx| {
//!     let mut at = 0usize;
//!     for _ in 0..3 {
//!         at = tx.read(at) as usize % 16;
//!     }
//!     let v = tx.read(at);
//!     tx.write(at, v + 1);
//! }, &mut TxOptions::new()).unwrap();
//! assert_eq!(dstm.read_cell(&mut port, 0), 1);
//! ```

use crate::contention::ContentionManager;
use crate::machine::MemPort;
use crate::ops::StmOps;
use crate::stm::{Stm, StmConfig, TxBudget, TxError, TxOptions, TxScratch, TxStats};
use crate::word::{cell_value, pack_cell, Addr, CellIdx, Word};

/// Witness that a transaction body chose to block ([`DynamicTx::retry`]).
///
/// Only [`DynamicTx::retry`] produces one, so a body can signal "wait until
/// my read set changes" but cannot forge the signal from outside a
/// transaction. Bodies propagate it with `?` or return it directly; the
/// enclosing [`DynamicStm::run_blocking`] call turns it into a park on the
/// read set.
#[derive(Debug)]
pub struct Retry {
    _private: (),
}

/// A software transactional memory supporting dynamic transactions.
///
/// Wraps the static [`Stm`] (exposed via [`DynamicStm::stm`]) and shares its
/// cells, so static and dynamic transactions interoperate on the same data.
#[derive(Debug, Clone)]
pub struct DynamicStm {
    ops: StmOps,
}

/// The per-attempt transaction context handed to the body.
///
/// The read/write logs are sorted vectors borrowed from the enclosing
/// [`DynamicStm::run`] call and reused across body retries (`clear`, not
/// reallocate), so re-running a body allocates nothing once the logs are
/// warm. Footprints are bounded by `max_locs`, so the binary-searched
/// vectors also beat tree maps on locality at these sizes.
#[derive(Debug)]
pub struct DynamicTx<'a, P: MemPort> {
    stm: &'a Stm,
    port: &'a mut P,
    /// Read set: first-observed `(cell, value, stamp)`, sorted by cell.
    reads: &'a mut Vec<(CellIdx, u32, u16)>,
    /// Write set: last value written per cell, sorted by cell.
    writes: &'a mut Vec<(CellIdx, u32)>,
}

impl<'a, P: MemPort> DynamicTx<'a, P> {
    /// Transactional read of `cell`.
    ///
    /// Returns the pending write if the transaction already wrote the cell,
    /// otherwise the committed value at first access (cached thereafter, so
    /// a transaction reads each cell at one point in time).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn read(&mut self, cell: CellIdx) -> u32 {
        if let Ok(at) = self.writes.binary_search_by_key(&cell, |e| e.0) {
            return self.writes[at].1;
        }
        match self.reads.binary_search_by_key(&cell, |e| e.0) {
            Ok(at) => self.reads[at].1,
            Err(at) => {
                let w = self.port.read(self.stm.layout().cell(cell));
                let (value, stamp) = (cell_value(w), crate::word::cell_stamp(w));
                self.reads.insert(at, (cell, value, stamp));
                value
            }
        }
    }

    /// Transactional write of `cell` (buffered until commit).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn write(&mut self, cell: CellIdx, value: u32) {
        assert!(cell < self.stm.layout().n_cells(), "cell index {cell} out of range");
        // Track the pre-image too, so validation covers blind writes.
        if let Err(at) = self.reads.binary_search_by_key(&cell, |e| e.0) {
            let w = self.port.read(self.stm.layout().cell(cell));
            self.reads.insert(at, (cell, cell_value(w), crate::word::cell_stamp(w)));
        }
        match self.writes.binary_search_by_key(&cell, |e| e.0) {
            Ok(at) => self.writes[at].1 = value,
            Err(at) => self.writes.insert(at, (cell, value)),
        }
    }

    /// Number of distinct cells in the transaction's footprint so far.
    pub fn footprint(&self) -> usize {
        self.reads.len().max(self.writes.len())
    }

    /// Abort this attempt and block until a cell the body has read changes.
    ///
    /// Returns `Err(`[`Retry`]`)` for the body to propagate (typically with
    /// `?` or `return tx.retry()`). The enclosing
    /// [`DynamicStm::run_blocking`] call then discards the write log,
    /// registers on every cell in the read set, parks until some watched
    /// cell's stamped word changes, and re-runs the body. Inside a
    /// non-blocking [`DynamicStm::run`] body there is no way to return it,
    /// so non-blocking schedules are unaffected.
    pub fn retry<T>(&mut self) -> Result<T, Retry> {
        Err(Retry { _private: () })
    }

    /// Haskell-style `orElse` composition: run `first`; if it retries, roll
    /// its writes back and run `second` instead.
    ///
    /// The first branch's *reads* are kept: if both branches retry, the
    /// enclosing [`DynamicStm::run_blocking`] call waits on the **union** of
    /// both read sets — a change that would unblock either branch re-runs
    /// the body. The rolled-back writes stay validated too (their pre-images
    /// were logged on first write), so a committed alternative still
    /// linearizes against the state the abandoned branch observed. Nests
    /// freely.
    pub fn or_else<T>(
        &mut self,
        first: impl FnOnce(&mut Self) -> Result<T, Retry>,
        second: impl FnOnce(&mut Self) -> Result<T, Retry>,
    ) -> Result<T, Retry> {
        let saved_writes = self.writes.clone();
        match first(self) {
            Ok(v) => Ok(v),
            Err(Retry { .. }) => {
                *self.writes = saved_writes;
                second(self)
            }
        }
    }
}

/// Sorted-insert dedup for small cell sets (bounded by `max_locs`).
fn note_cell(set: &mut Vec<CellIdx>, cell: CellIdx) {
    if let Err(at) = set.binary_search(&cell) {
        set.insert(at, cell);
    }
}

impl DynamicStm {
    /// Create a dynamic STM with `n_cells` cells for `n_procs` processors.
    ///
    /// The underlying static instance allows data sets up to the validate-
    /// and-write commit footprint; dynamic transactions may touch at most
    /// `max_locs` = 64 distinct cells (enforced at commit).
    pub fn new(base: Addr, n_cells: usize, n_procs: usize, config: StmConfig) -> Self {
        let max_locs = 64.min(n_cells).max(1);
        DynamicStm { ops: StmOps::new(base, n_cells, n_procs, max_locs, config) }
    }

    /// Wrap an existing operations handle, sharing its cells, config, and
    /// (if attached) priority board with static transactions. Dynamic
    /// footprints are bounded by the handle's `max_locs`.
    pub fn from_ops(ops: StmOps) -> Self {
        DynamicStm { ops }
    }

    /// Create a dynamic STM over a pre-built layout — the entry point for
    /// the growable sharded arena ([`crate::layout::StmLayout::arena`]).
    /// Allocate and free the cells dynamic transactions touch through a
    /// [`CellArena`](crate::arena::CellArena) built from the same layout;
    /// commits validate stamps, so a transaction racing a free/realloc
    /// fails validation and re-runs rather than observing a torn structure.
    pub fn with_layout(layout: crate::layout::StmLayout, config: StmConfig) -> Self {
        DynamicStm { ops: StmOps::with_layout(layout, config) }
    }

    /// The underlying static STM instance.
    pub fn stm(&self) -> &Stm {
        self.ops.stm()
    }

    /// The underlying static operations handle (built-in programs included),
    /// for mixing static transactions over the same cells.
    pub fn ops(&self) -> &StmOps {
        &self.ops
    }

    /// Read one cell's committed value outside any transaction.
    pub fn read_cell<P: MemPort>(&self, port: &mut P, cell: CellIdx) -> u32 {
        self.ops.stm().read_cell(port, cell)
    }

    /// Initialize a cell before concurrent use.
    pub fn init_cell<P: MemPort>(&self, port: &mut P, cell: CellIdx, value: u32) {
        self.ops.stm().init_cell(port, cell, value)
    }

    /// Run `body` as an atomic dynamic transaction under the given
    /// [`TxOptions`]; returns the body's result and cumulative retry
    /// statistics.
    ///
    /// `body` may run several times; it must be pure (compute only from the
    /// values [`DynamicTx::read`] returns).
    ///
    /// A body that never writes commits via the **read-only fast path**: its
    /// read set is validated in place ([`Stm::validate_read_set`]) with zero
    /// shared-memory writes. After
    /// [`StmConfig::fast_read_rounds`](crate::stm::StmConfig::fast_read_rounds)
    /// failed validations, the commit falls back to the acquiring identity
    /// transaction, which helps blockers (lock-freedom preserved).
    ///
    /// When [`StmConfig::delta_retry_cells`](crate::stm::StmConfig::delta_retry_cells)
    /// is non-zero and a validate-and-write commit fails with at most that
    /// many read cells changed, the body is **delta re-run**: the read log
    /// is refreshed in place from the failed commit's atomic snapshot and
    /// the body re-executes against that consistent cut without re-reading
    /// its footprint from memory. A commit that lands this way reports
    /// [`TxObserver::delta_committed`](crate::observe::TxObserver::delta_committed).
    /// The default (`0`) disables the path, leaving schedules identical to
    /// the classic full-retry loop.
    ///
    /// Budget semantics: `max_attempts` bounds *body executions* (the first
    /// always runs); `max_cycles`/`max_wall` bound the whole call, with the
    /// remaining allowance handed to each validate-and-write commit (so a
    /// commit cannot overrun the caller's deadline by retrying internally).
    /// The contention manager persists across body retries, so starvation
    /// pressure accumulates over the whole dynamic transaction.
    ///
    /// A panicking body is *contained*: the local read/write log is
    /// discarded (nothing was shared yet, so there is nothing to release)
    /// and [`TxError::OpPanicked`] is returned.
    ///
    /// # Errors
    ///
    /// [`TxError::BudgetExhausted`] when the budget runs out before a
    /// validated commit; [`TxError::OpPanicked`] when the body panics.
    ///
    /// # Panics
    ///
    /// Panics if the transaction's footprint exceeds the instance's
    /// `max_locs`.
    pub fn run<P, R, O, C, J>(
        &self,
        port: &mut P,
        mut body: impl FnMut(&mut DynamicTx<'_, P>) -> R,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: ContentionManager,
        J: crate::durable::Journal,
    {
        self.run_impl(port, |tx| Ok(body(tx)), opts, false)
    }

    /// Run `body` as a *blocking* dynamic transaction: a body that returns
    /// `Err(`[`Retry`]`)` (via [`DynamicTx::retry`]) aborts its attempt,
    /// registers on every cell of its read set, and parks until some watched
    /// cell's stamped word changes — then re-runs. On the host the OS thread
    /// parks ([`MemPort::wait_on`]): no spin CPU while idle. On the
    /// simulator the virtual processor parks without consuming scheduler
    /// steps and wakes deterministically when a committer installs into a
    /// watched cell.
    ///
    /// All [`DynamicStm::run`] semantics (fast read path, delta re-runs,
    /// budget, panic containment) apply to each attempt. Additionally
    /// [`TxBudget::max_wakeups`] bounds the park/wake rounds.
    ///
    /// # Errors
    ///
    /// Everything [`DynamicStm::run`] returns, plus [`TxError::Retry`] when
    /// the wakeup budget is exhausted while still blocked or when the body
    /// retried with an **empty read set** (nothing watched could ever wake
    /// it).
    ///
    /// # Examples
    ///
    /// ```
    /// use stm_core::dynamic::DynamicStm;
    /// use stm_core::machine::host::HostMachine;
    /// use stm_core::stm::{StmConfig, TxOptions};
    ///
    /// let dstm = DynamicStm::new(0, 4, 1, StmConfig::default());
    /// let machine = HostMachine::new(dstm.stm().layout().words_needed(), 1);
    /// let mut port = machine.port(0);
    /// dstm.init_cell(&mut port, 0, 2); // two tokens available
    ///
    /// // Take a token, waiting (not spinning) if none are available.
    /// let (left, _) = dstm
    ///     .run_blocking(
    ///         &mut port,
    ///         |tx| {
    ///             let n = tx.read(0);
    ///             if n == 0 {
    ///                 return tx.retry(); // park until cell 0 changes
    ///             }
    ///             tx.write(0, n - 1);
    ///             Ok(n - 1)
    ///         },
    ///         &mut TxOptions::new(),
    ///     )
    ///     .unwrap();
    /// assert_eq!(left, 1);
    /// ```
    pub fn run_blocking<P, R, O, C, J>(
        &self,
        port: &mut P,
        body: impl FnMut(&mut DynamicTx<'_, P>) -> Result<R, Retry>,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: ContentionManager,
        J: crate::durable::Journal,
    {
        self.run_impl(port, body, opts, true)
    }

    /// Run `first`, falling back to `second` when it retries — the
    /// top-level convenience for [`DynamicTx::or_else`]. If both branches
    /// retry, the transaction parks on the union of both read sets.
    ///
    /// # Errors
    ///
    /// Same as [`DynamicStm::run_blocking`].
    pub fn run_or_else<P, R, O, C, J>(
        &self,
        port: &mut P,
        mut first: impl FnMut(&mut DynamicTx<'_, P>) -> Result<R, Retry>,
        mut second: impl FnMut(&mut DynamicTx<'_, P>) -> Result<R, Retry>,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: ContentionManager,
        J: crate::durable::Journal,
    {
        self.run_blocking(port, |tx| tx.or_else(|tx| first(tx), |tx| second(tx)), opts)
    }

    /// The shared loop behind [`DynamicStm::run`] (where `Retry` is
    /// unconstructible) and [`DynamicStm::run_blocking`].
    fn run_impl<P, R, O, C, J>(
        &self,
        port: &mut P,
        mut body: impl FnMut(&mut DynamicTx<'_, P>) -> Result<R, Retry>,
        opts: &mut TxOptions<O, C, J>,
        blocking: bool,
    ) -> Result<(R, TxStats), TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: ContentionManager,
        J: crate::durable::Journal,
    {
        let budget = opts.budget;
        let cm = &mut opts.manager;
        let obs = &mut opts.observer;
        let jrn = &mut opts.journal;
        let mut stats = TxStats::default();
        // Per-call buffers, reused across body retries: the read/write logs,
        // the commit footprint and its packed parameters, and the static
        // commit's execution scratch. After the first attempt warms them, a
        // retry (body re-run + validate-and-write commit) allocates nothing
        // beyond what the body itself allocates.
        let mut read_log: Vec<(CellIdx, u32, u16)> = Vec::new();
        let mut write_log: Vec<(CellIdx, u32)> = Vec::new();
        let mut entries: Vec<(CellIdx, Word)> = Vec::new();
        let mut watches: Vec<(Addr, Word)> = Vec::new();
        let mut cells: Vec<CellIdx> = Vec::new();
        let mut params: Vec<Word> = Vec::new();
        let mut contended: Vec<CellIdx> = Vec::new();
        let mut scratch = TxScratch::new();
        let mut fast_fails: u64 = 0;
        // Cells changed in the last failed validation, when few enough for a
        // delta re-run (read log already refreshed in place; see below).
        let mut delta_pending: Option<u64> = None;
        let started = std::time::Instant::now();
        let cycles0 = port.now();
        loop {
            let cycles_lost = port.now().saturating_sub(cycles0);
            if stats.attempts > 0 && budget.is_exhausted(stats.attempts, cycles_lost, started) {
                return Err(TxError::BudgetExhausted {
                    attempts: stats.attempts,
                    cells_contended: contended.len() as u64,
                    cycles_lost,
                });
            }
            if delta_pending.is_none() {
                read_log.clear();
            }
            write_log.clear();
            let result = {
                let mut tx = DynamicTx {
                    stm: self.ops.stm(),
                    port: &mut *port,
                    reads: &mut read_log,
                    writes: &mut write_log,
                };
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut tx)));
                match caught {
                    Ok(result) => result,
                    Err(_payload) => {
                        // The body only touched its local log; clearing the
                        // log (next attempt, or never) is the whole abort.
                        let _ = tx;
                        stats.attempts += 1;
                        obs.op_panicked(port.proc_id(), stats.attempts, port.now());
                        return Err(TxError::OpPanicked { attempts: stats.attempts });
                    }
                }
            };
            stats.attempts += 1;

            let result = match result {
                Ok(result) => result,
                // The body chose to block: abort this attempt (the write log
                // is local, so dropping it is the whole abort), watch the
                // read set, and park. The watch words are the exact stamped
                // words the body observed — any commit into a watched cell
                // after that observation makes some watch differ, so
                // register-then-revalidate inside `wait_on` cannot miss it
                // (docs/protocol.md §14).
                Err(Retry { .. }) if blocking => {
                    if read_log.is_empty()
                        || budget.max_wakeups.is_some_and(|m| stats.wakeups >= m)
                    {
                        return Err(TxError::Retry { wakeups: stats.wakeups });
                    }
                    watches.clear();
                    watches.extend(read_log.iter().map(|&(c, value, stamp)| {
                        (self.ops.stm().layout().cell(c), pack_cell(stamp, value))
                    }));
                    obs.retry_blocked(port.proc_id(), watches.len() as u64, port.now());
                    port.step(crate::step::StepPoint::RetryPark);
                    // Cap a single park at the remaining wall budget so a
                    // deadline cannot be slept through.
                    let cap = budget
                        .max_wall
                        .map(|m| {
                            let rem = m.saturating_sub(started.elapsed());
                            u64::try_from(rem.as_micros()).unwrap_or(u64::MAX)
                        })
                        .unwrap_or(u64::MAX);
                    port.wait_on(&watches, cap);
                    port.step(crate::step::StepPoint::RetryWake);
                    stats.wakeups += 1;
                    obs.retry_woken(port.proc_id(), stats.wakeups, port.now());
                    delta_pending = None;
                    continue;
                }
                Err(Retry { .. }) => {
                    unreachable!("Retry is unconstructible outside blocking bodies")
                }
            };

            if write_log.is_empty() && read_log.is_empty() {
                return Ok((result, stats)); // pure computation, nothing to commit
            }

            // Read-only fast commit: the cached (value, stamp) pairs are the
            // collect; validating them in place is the second collect. On
            // success the transaction linearizes at the validation point with
            // zero shared-memory writes.
            if write_log.is_empty() && fast_fails < u64::from(self.stm().config().fast_read_rounds)
            {
                entries.clear();
                entries.extend(
                    read_log.iter().map(|&(c, value, stamp)| (c, pack_cell(stamp, value))),
                );
                port.step(crate::step::StepPoint::DynCommit);
                if self.stm().validate_read_set(port, &entries) {
                    return Ok((result, stats));
                }
                // A writer or live owner intervened; re-run the body for a
                // fresh cut. After fast_read_rounds misses, fall through to
                // the acquiring commit below, which helps blockers.
                fast_fails += 1;
                stats.conflicts += 1;
                continue;
            }

            // Commit: one static validate-and-write transaction over the
            // whole footprint. Each location's parameter packs
            // (expected_old << 32 | new); the program writes only if every
            // expected value matches — exactly the builtin MWCAS, reused
            // through the ops handle's plan cache (repeated closures with a
            // stable footprint skip compilation and pick up the small-k
            // kernels).
            cells.clear();
            cells.extend(read_log.iter().map(|e| e.0));
            assert!(
                cells.len() <= self.ops.stm().layout().max_locs(),
                "dynamic transaction footprint {} exceeds max_locs {}",
                cells.len(),
                self.ops.stm().layout().max_locs()
            );
            params.clear();
            params.extend(read_log.iter().map(|&(c, expected, _)| {
                let new = write_log
                    .binary_search_by_key(&c, |e| e.0)
                    .map_or(expected, |at| write_log[at].1);
                ((expected as Word) << 32) | new as Word
            }));
            // Hand the commit whatever time remains; attempt budgeting stays
            // at this level (it counts body executions, not commit CASes).
            let commit_budget = TxBudget {
                max_attempts: None,
                max_cycles: budget
                    .max_cycles
                    .map(|m| m.saturating_sub(port.now().saturating_sub(cycles0))),
                max_wall: budget.max_wall.map(|m| m.saturating_sub(started.elapsed())),
                max_wakeups: None, // commits never block
            };
            port.step(crate::step::StepPoint::DynCommit);
            let plan = self.ops.plan_for(self.ops.builtins().mwcas, &cells);
            let mut commit_opts = TxOptions::new()
                .observer(&mut *obs)
                .manager(&mut *cm)
                .budget(commit_budget)
                .journal(&mut *jrn);
            let out = match self.ops.stm().run_plan_in(
                port,
                &plan,
                &params,
                &mut commit_opts,
                &mut scratch,
            ) {
                Ok(out) => out,
                Err(TxError::BudgetExhausted { cells_contended, .. }) => {
                    return Err(TxError::BudgetExhausted {
                        attempts: stats.attempts,
                        cells_contended: cells_contended.max(contended.len() as u64),
                        cycles_lost: port.now().saturating_sub(cycles0),
                    });
                }
                Err(TxError::OpPanicked { .. }) => {
                    return Err(TxError::OpPanicked { attempts: stats.attempts });
                }
                Err(TxError::DuplicateCell { .. }) => {
                    // The footprint is a sorted log of distinct cells.
                    unreachable!("dynamic commit footprint is deduplicated by construction")
                }
                Err(TxError::Retry { .. }) => {
                    // Only the blocking loop above constructs Retry, and the
                    // commit budget carries `max_wakeups: None`.
                    unreachable!("static commit paths never block")
                }
            };
            stats.helps += out.helps;
            stats.conflicts += out.conflicts;
            let mut changed: u64 = 0;
            for (i, &old) in scratch.old().iter().enumerate() {
                if old != read_log[i].1 {
                    changed += 1;
                    note_cell(&mut contended, cells[i]);
                }
            }
            if changed == 0 {
                if let Some(cells_changed) = delta_pending {
                    obs.delta_committed(port.proc_id(), cells_changed, port.now());
                }
                return Ok((result, stats));
            }
            // Validation failed: some read was stale. If only a few cells
            // moved (the tunable `delta_retry_cells`; 0 disables the path),
            // take the **delta re-run**: the failed commit executed as an
            // identity MWCAS, so `scratch` holds a consistent snapshot of the
            // whole footprint linearized at that commit. Refresh the read log
            // from it in place and re-run the body served from the log — no
            // fresh memory reads for footprint cells, so the body computes
            // against one atomic cut. This is unconditionally safe: the next
            // commit re-validates every read atomically, so a refresh gone
            // stale costs one more retry, never consistency.
            if changed as usize <= self.stm().config().delta_retry_cells {
                for ((entry, &old), &stamp) in
                    read_log.iter_mut().zip(scratch.old()).zip(scratch.old_stamps())
                {
                    entry.1 = old;
                    entry.2 = stamp;
                }
                delta_pending = Some(changed);
            } else {
                delta_pending = None; // full retry: discard the log
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;

    fn setup(n_cells: usize, n_procs: usize) -> (DynamicStm, HostMachine) {
        let d = DynamicStm::new(0, n_cells, n_procs, StmConfig::default());
        let m = HostMachine::new(d.stm().layout().words_needed(), n_procs);
        (d, m)
    }

    #[test]
    fn read_write_roundtrip() {
        let (d, m) = setup(8, 1);
        let mut port = m.port(0);
        let ((), stats) = d.run(&mut port, |tx| {
            assert_eq!(tx.read(3), 0);
            tx.write(3, 42);
            assert_eq!(tx.read(3), 42, "read-own-write");
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(stats.attempts, 1);
        assert_eq!(d.read_cell(&mut port, 3), 42);
    }

    #[test]
    fn data_dependent_footprint() {
        // cell 0 holds an index; the transaction follows it.
        let (d, m) = setup(8, 1);
        let mut port = m.port(0);
        d.init_cell(&mut port, 0, 5);
        d.init_cell(&mut port, 5, 100);
        let (seen, _) = d.run(&mut port, |tx| {
            let idx = tx.read(0) as usize;
            let v = tx.read(idx);
            tx.write(idx, v + 1);
            v
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(seen, 100);
        assert_eq!(d.read_cell(&mut port, 5), 101);
    }

    #[test]
    fn pure_body_commits_without_memory() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let (x, stats) = d.run(&mut port, |_tx| 7, &mut TxOptions::new()).unwrap();
        assert_eq!(x, 7);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn blind_writes_are_validated_too() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let ((), _) = d.run(&mut port, |tx| {
            tx.write(2, 9); // no prior read
        }, &mut TxOptions::new()).unwrap();
        assert_eq!(d.read_cell(&mut port, 2), 9);
    }

    #[test]
    fn concurrent_dynamic_counters_are_exact() {
        const PROCS: usize = 4;
        const PER: u32 = 300;
        let (d, m) = setup(4, PROCS);
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let d = d.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        d.run(&mut port, |tx| {
                            let v = tx.read(1);
                            tx.write(1, v + 1);
                        }, &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(d.read_cell(&mut port, 1), PROCS as u32 * PER);
    }

    #[test]
    fn concurrent_list_walk_transfer_conserves() {
        // Cells 0..4 are a ring of "next" pointers; cells 4..8 hold money.
        // Each transaction walks one hop from its start and moves a unit to
        // the account after it — a data-dependent footprint under
        // contention.
        const PROCS: usize = 4;
        let (d, m) = setup(8, PROCS);
        {
            let mut port = m.port(0);
            for i in 0..4 {
                d.init_cell(&mut port, i, ((i + 1) % 4) as u32);
                d.init_cell(&mut port, 4 + i, 50);
            }
        }
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let d = d.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for i in 0..150 {
                        d.run(&mut port, |tx| {
                            let a = tx.read((p + i) % 4) as usize;
                            let b = (a + 1) % 4;
                            let va = tx.read(4 + a);
                            if va > 0 {
                                let vb = tx.read(4 + b);
                                tx.write(4 + a, va - 1);
                                tx.write(4 + b, vb + 1);
                            }
                        }, &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        let total: u32 = (4..8).map(|c| d.read_cell(&mut port, c)).sum();
        assert_eq!(total, 200, "money conserved through dynamic transactions");
    }

    #[test]
    fn blocking_pop_waits_for_a_concurrent_push() {
        let (d, m) = setup(4, 2);
        std::thread::scope(|s| {
            let d2 = d.clone();
            let m2 = m.clone();
            let consumer = s.spawn(move || {
                let mut port = m2.port(0);
                d2.run_blocking(
                    &mut port,
                    |tx| {
                        let v = tx.read(0);
                        if v == 0 {
                            return tx.retry();
                        }
                        tx.write(0, 0);
                        Ok(v)
                    },
                    &mut TxOptions::new(),
                )
                .unwrap()
                .0
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut port = m.port(1);
            d.run(&mut port, |tx| tx.write(0, 7), &mut TxOptions::new()).unwrap();
            assert_eq!(consumer.join().unwrap(), 7);
        });
    }

    #[test]
    fn wakeup_budget_zero_fails_without_parking() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let err = d
            .run_blocking(
                &mut port,
                |tx| {
                    let _ = tx.read(0);
                    tx.retry::<()>()
                },
                &mut TxOptions::new().budget(TxBudget::wakeups(0)),
            )
            .unwrap_err();
        assert_eq!(err, TxError::Retry { wakeups: 0 });
    }

    #[test]
    fn retry_with_empty_read_set_errors_instead_of_sleeping_forever() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        let err =
            d.run_blocking(&mut port, |tx| tx.retry::<()>(), &mut TxOptions::new()).unwrap_err();
        assert!(matches!(err, TxError::Retry { wakeups: 0 }));
    }

    #[test]
    fn or_else_falls_through_and_rolls_back_the_first_branch_writes() {
        let (d, m) = setup(4, 1);
        let mut port = m.port(0);
        d.init_cell(&mut port, 1, 5);
        let (v, _) = d
            .run_or_else(
                &mut port,
                |tx| {
                    tx.write(3, 99); // must be rolled back when the branch retries
                    let v = tx.read(0);
                    if v == 0 {
                        return tx.retry();
                    }
                    Ok(v)
                },
                |tx| {
                    let v = tx.read(1);
                    tx.write(1, 0);
                    Ok(v)
                },
                &mut TxOptions::new(),
            )
            .unwrap();
        assert_eq!(v, 5, "second branch committed");
        assert_eq!(d.read_cell(&mut port, 3), 0, "first branch's write rolled back");
        assert_eq!(d.read_cell(&mut port, 1), 0);
    }

    #[test]
    fn stats_report_retries_under_contention() {
        // Not asserting a particular count — just that the plumbing reports
        // attempts >= 1 and merges static-commit stats.
        let (d, m) = setup(2, 2);
        let mut port = m.port(0);
        let ((), stats) = d.run(&mut port, |tx| {
            let v = tx.read(0);
            tx.write(0, v + 1);
        }, &mut TxOptions::new()).unwrap();
        assert!(stats.attempts >= 1);
    }
}
