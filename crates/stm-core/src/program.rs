//! Transaction programs: the code a static transaction runs at commit.
//!
//! In the paper, a transaction record holds a pointer to the transaction's
//! code so that *helping* processors can execute the transaction on the
//! owner's behalf. In Rust we realize the same mechanism with a process-wide
//! [`ProgramTable`]: records store an **opcode** (table index) plus up to
//! [`MAX_PARAMS`](crate::layout::MAX_PARAMS) parameter words, and every
//! processor resolves opcodes through the same table. Programs must be
//! **pure** functions of `(params, old_values)` so that the owner and all
//! helpers compute identical new values — this is what makes the paper's
//! redundant execution idempotent.

use std::fmt;
use std::sync::Arc;

use crate::word::Word;

/// A static transaction's commit function.
///
/// Given the parameter words stored in the record and the agreed old values
/// of the data set, produce the new values. Implementations **must** be pure:
/// the same inputs must always yield the same outputs, with no side effects,
/// because the function may be executed concurrently by several helping
/// processors.
///
/// `old.len() == new.len() == ` the transaction's data-set size; `new` is
/// pre-initialized to a copy of `old`, so a program only needs to touch the
/// locations it logically writes (untouched locations behave as reads).
pub trait TxProgram: Send + Sync {
    /// Compute the new values. See the trait docs for the purity contract.
    fn compute(&self, params: &[Word], old: &[u32], new: &mut [u32]);

    /// Human-readable name, for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<F> TxProgram for F
where
    F: Fn(&[Word], &[u32], &mut [u32]) + Send + Sync,
{
    fn compute(&self, params: &[Word], old: &[u32], new: &mut [u32]) {
        self(params, old, new)
    }
}

/// Identifier of a registered program (an index into the [`ProgramTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpCode(pub(crate) u32);

impl OpCode {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// An immutable table of transaction programs, shared by every processor.
///
/// Build one with [`ProgramTableBuilder`], register the programs your
/// application needs, then freeze it. The table must be identical on every
/// processor (it is shared via `Arc`), mirroring the paper's assumption that
/// all processors run the same program image.
///
/// # Examples
///
/// ```
/// use stm_core::program::ProgramTable;
///
/// let mut builder = ProgramTable::builder();
/// let inc = builder.register("inc", |_p: &[u64], old: &[u32], new: &mut [u32]| {
///     new[0] = old[0].wrapping_add(1);
/// });
/// let table = builder.build();
/// assert_eq!(table.name(inc), "inc");
/// ```
pub struct ProgramTable {
    programs: Vec<(String, Arc<dyn TxProgram>)>,
}

impl fmt::Debug for ProgramTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgramTable")
            .field("programs", &self.programs.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .finish()
    }
}

impl ProgramTable {
    /// Start building a table.
    pub fn builder() -> ProgramTableBuilder {
        ProgramTableBuilder { programs: Vec::new() }
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The registered name of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` was not produced by this table's builder.
    pub fn name(&self, op: OpCode) -> &str {
        &self.programs[op.index()].0
    }

    /// Execute program `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range (a foreign or corrupted opcode).
    pub fn run(&self, op: OpCode, params: &[Word], old: &[u32], new: &mut [u32]) {
        self.programs[op.index()].1.compute(params, old, new)
    }

    /// Try to resolve a raw opcode word read from shared memory.
    pub fn resolve_raw(&self, raw: Word) -> Option<OpCode> {
        if (raw as usize) < self.programs.len() {
            Some(OpCode(raw as u32))
        } else {
            None
        }
    }
}

/// Builder for [`ProgramTable`].
pub struct ProgramTableBuilder {
    programs: Vec<(String, Arc<dyn TxProgram>)>,
}

impl ProgramTableBuilder {
    /// Register `program` under `name`, returning its opcode.
    pub fn register(&mut self, name: &str, program: impl TxProgram + 'static) -> OpCode {
        self.register_arc(name, Arc::new(program))
    }

    /// Register an already-shared program.
    pub fn register_arc(&mut self, name: &str, program: Arc<dyn TxProgram>) -> OpCode {
        let op = OpCode(self.programs.len() as u32);
        self.programs.push((name.to_owned(), program));
        op
    }

    /// Freeze the table.
    pub fn build(self) -> Arc<ProgramTable> {
        Arc::new(ProgramTable { programs: self.programs })
    }
}

/// Standard programs useful to most applications; register with
/// [`register_builtins`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtins {
    /// `new[j] = old[j] + params[j]` (wrapping): multi-cell fetch-and-add.
    pub add: OpCode,
    /// `new[j] = params[j]`: multi-cell swap (returns old values).
    pub swap: OpCode,
    /// Identity: a pure multi-cell atomic read.
    pub read: OpCode,
    /// Multi-word compare-and-swap: `params[j] = (expected<<32)|new_value`;
    /// writes only if *every* location matches its expected value. The first
    /// data-set location doubles as the success flag's... no flag is needed:
    /// callers detect success by comparing returned old values against the
    /// expected values.
    pub mwcas: OpCode,
}

/// Register the built-in programs into `builder`.
pub fn register_builtins(builder: &mut ProgramTableBuilder) -> Builtins {
    let add = builder.register("builtin.add", |params: &[Word], old: &[u32], new: &mut [u32]| {
        for (j, (n, o)) in new.iter_mut().zip(old).enumerate() {
            let delta = params.get(j).copied().unwrap_or(0) as u32;
            *n = o.wrapping_add(delta);
        }
    });
    let swap = builder.register("builtin.swap", |params: &[Word], _old: &[u32], new: &mut [u32]| {
        for (j, n) in new.iter_mut().enumerate() {
            *n = params.get(j).copied().unwrap_or(0) as u32;
        }
    });
    let read = builder.register("builtin.read", |_: &[Word], _: &[u32], _: &mut [u32]| {});
    let mwcas = builder.register("builtin.mwcas", |params: &[Word], old: &[u32], new: &mut [u32]| {
        let all_match =
            (0..old.len()).all(|j| old[j] == (params.get(j).copied().unwrap_or(0) >> 32) as u32);
        if all_match {
            for (j, n) in new.iter_mut().enumerate() {
                *n = params.get(j).copied().unwrap_or(0) as u32;
            }
        }
    });
    Builtins { add, swap, read, mwcas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(table: &ProgramTable, op: OpCode, params: &[Word], old: &[u32]) -> Vec<u32> {
        let mut new = old.to_vec();
        table.run(op, params, old, &mut new);
        new
    }

    #[test]
    fn builtin_add() {
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let t = b.build();
        assert_eq!(run(&t, ops.add, &[1, 2], &[10, 20]), vec![11, 22]);
        // missing params behave as +0
        assert_eq!(run(&t, ops.add, &[5], &[1, 2]), vec![6, 2]);
        // wrapping
        assert_eq!(run(&t, ops.add, &[1], &[u32::MAX]), vec![0]);
    }

    #[test]
    fn builtin_swap_and_read() {
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let t = b.build();
        assert_eq!(run(&t, ops.swap, &[7, 8], &[1, 2]), vec![7, 8]);
        assert_eq!(run(&t, ops.read, &[], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn builtin_mwcas_semantics() {
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let t = b.build();
        let pack = |exp: u32, new: u32| ((exp as u64) << 32) | new as u64;
        // all expected match -> writes
        assert_eq!(run(&t, ops.mwcas, &[pack(1, 10), pack(2, 20)], &[1, 2]), vec![10, 20]);
        // one mismatch -> no-op
        assert_eq!(run(&t, ops.mwcas, &[pack(1, 10), pack(3, 20)], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn opcodes_resolve_and_name() {
        let mut b = ProgramTable::builder();
        let op = b.register("custom", |_: &[Word], _: &[u32], _: &mut [u32]| {});
        let t = b.build();
        assert_eq!(t.name(op), "custom");
        assert_eq!(t.resolve_raw(0), Some(op));
        assert_eq!(t.resolve_raw(99), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(format!("{op}"), "op#0");
    }

    #[test]
    fn purity_of_builtins_under_repetition() {
        // Helpers may re-execute programs; results must be identical.
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let t = b.build();
        let old = [3u32, 9, 27];
        let first = run(&t, ops.add, &[1, 1, 1], &old);
        for _ in 0..10 {
            assert_eq!(run(&t, ops.add, &[1, 1, 1], &old), first);
        }
    }
}
