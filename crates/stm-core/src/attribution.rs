//! Conflict attribution: fold flight-recorder events into a blame table.
//!
//! The Shavit–Touitou protocol makes every abort *attributable*: a failing
//! acquisition names the cell it lost and (when helping is on) the owner
//! it lost to. [`Attribution`] folds a stream of [`FlightEvent`]s into
//! per-cell abort/help counts with cycles lost, and victim-op → aborter-op
//! pair counts — the "who keeps killing whom, where, and how expensive is
//! it" table that Kuznetsov–Ravi-style abort-cost analyses need. It is
//! merged into [`TxMetrics`](crate::metrics::TxMetrics) so existing
//! end-of-run reports pick it up, and exported live by
//! [`MetricsRegistry`](crate::export::MetricsRegistry).

use std::collections::BTreeMap;

use crate::flight::{FlightEvent, FlightKind, NO_OP_TAG};

/// Per-cell blame counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellBlame {
    /// Aborts in which acquiring this cell failed.
    pub aborts: u64,
    /// Help episodes triggered by conflicts on this cell.
    pub helps: u64,
    /// Total attempt cycles thrown away by those aborts (virtual cycles on
    /// the sim; 0 on hosts without a cycle source).
    pub cycles_lost: u64,
}

impl CellBlame {
    /// Mean cycles lost per abort on this cell (0 when no aborts).
    pub fn mean_cycles_lost(&self) -> f64 {
        if self.aborts == 0 {
            0.0
        } else {
            self.cycles_lost as f64 / self.aborts as f64
        }
    }
}

/// Blame table folded from flight-recorder events.
///
/// All fields are integer counters, so snapshots compare with `==` and
/// merge associatively across threads and time windows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    cells: BTreeMap<u64, CellBlame>,
    pairs: BTreeMap<(u32, u32), u64>,
    aborts: u64,
    helps: u64,
    cycles_lost: u64,
    escalations: u64,
    forced_commits: u64,
    deferrals: u64,
    delta_commits: u64,
    cell_allocs: u64,
    cell_frees: u64,
}

impl Attribution {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `events` (one recorder's drain, oldest first) and return the
    /// resulting table.
    pub fn from_events(events: &[FlightEvent]) -> Self {
        let mut a = Self::new();
        a.fold(events);
        a
    }

    /// Fold one drain worth of events into the table.
    ///
    /// `Conflict` charges the named cell (and the victim-op → aborter-op
    /// pair when the owner is known); the `Aborted` that follows on the
    /// same proc charges the attempt's lost cycles to that cell;
    /// `HelpBegin` after a conflict credits the cell with a help episode.
    /// Per-proc pending state is local to the call, so events for one
    /// abort must arrive in the same drain to be cycle-attributed — counts
    /// themselves are never lost across drains.
    pub fn fold(&mut self, events: &[FlightEvent]) {
        // proc -> cell of its most recent unresolved conflict.
        let mut pending: BTreeMap<u32, Option<u64>> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                FlightKind::Conflict => {
                    self.aborts += 1;
                    let cell = ev.conflict_cell().map(|c| c as u64);
                    if let Some(c) = cell {
                        self.cells.entry(c).or_default().aborts += 1;
                    }
                    if let Some((_, aborter_op)) = ev.conflict_owner() {
                        *self.pairs.entry((ev.op, aborter_op)).or_default() += 1;
                    }
                    pending.insert(ev.proc, cell);
                }
                FlightKind::HelpBegin => {
                    self.helps += 1;
                    if let Some(Some(c)) = pending.get(&ev.proc) {
                        self.cells.entry(*c).or_default().helps += 1;
                    }
                }
                FlightKind::Aborted => {
                    let cycles = ev.cycles();
                    self.cycles_lost += cycles;
                    if let Some(Some(c)) = pending.remove(&ev.proc) {
                        self.cells.entry(c).or_default().cycles_lost += cycles;
                    }
                }
                FlightKind::Committed => {
                    pending.remove(&ev.proc);
                }
                FlightKind::StarvationEscalated => self.escalations += 1,
                FlightKind::ForcedCommit => self.forced_commits += 1,
                FlightKind::ConflictDeferred => self.deferrals += 1,
                FlightKind::DeltaCommit => self.delta_commits += 1,
                FlightKind::CellAlloc => self.cell_allocs += 1,
                FlightKind::CellFree => self.cell_frees += 1,
                _ => {}
            }
        }
    }

    /// Merge another table into this one (associative, commutative).
    pub fn merge(&mut self, other: &Attribution) {
        for (&cell, blame) in &other.cells {
            let e = self.cells.entry(cell).or_default();
            e.aborts += blame.aborts;
            e.helps += blame.helps;
            e.cycles_lost += blame.cycles_lost;
        }
        for (&pair, &n) in &other.pairs {
            *self.pairs.entry(pair).or_default() += n;
        }
        self.aborts += other.aborts;
        self.helps += other.helps;
        self.cycles_lost += other.cycles_lost;
        self.escalations += other.escalations;
        self.forced_commits += other.forced_commits;
        self.deferrals += other.deferrals;
        self.delta_commits += other.delta_commits;
        self.cell_allocs += other.cell_allocs;
        self.cell_frees += other.cell_frees;
    }

    /// True when nothing has been attributed yet.
    pub fn is_empty(&self) -> bool {
        self.aborts == 0
            && self.helps == 0
            && self.cells.is_empty()
            && self.pairs.is_empty()
            && self.escalations == 0
            && self.forced_commits == 0
            && self.deferrals == 0
            && self.delta_commits == 0
            && self.cell_allocs == 0
            && self.cell_frees == 0
    }

    /// Total attributed aborts (conflict events folded).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Total help episodes folded.
    pub fn helps(&self) -> u64 {
        self.helps
    }

    /// Total attempt cycles lost to aborts.
    pub fn cycles_lost(&self) -> u64 {
        self.cycles_lost
    }

    /// Starvation escalations folded.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Forced-tier commits folded.
    pub fn forced_commits(&self) -> u64 {
        self.forced_commits
    }

    /// Deferred conflicts (helpers backing off an escalated owner) folded.
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }

    /// Delta-revalidation commits folded.
    pub fn delta_commits(&self) -> u64 {
        self.delta_commits
    }

    /// Arena cell-span allocations folded.
    pub fn cell_allocs(&self) -> u64 {
        self.cell_allocs
    }

    /// Arena cell-span frees folded.
    pub fn cell_frees(&self) -> u64 {
        self.cell_frees
    }

    /// Per-cell blame counters, keyed by cell index.
    pub fn cells(&self) -> &BTreeMap<u64, CellBlame> {
        &self.cells
    }

    /// Victim-op → aborter-op conflict counts ([`NO_OP_TAG`] = untagged).
    pub fn pairs(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.pairs
    }

    /// The `k` hottest cells by abort count (descending; ties by cell
    /// index for determinism).
    pub fn top_cells(&self, k: usize) -> Vec<(u64, CellBlame)> {
        let mut v: Vec<(u64, CellBlame)> = self.cells.iter().map(|(&c, &b)| (c, b)).collect();
        v.sort_by(|a, b| b.1.aborts.cmp(&a.1.aborts).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Multi-line human-readable blame summary (top `k` cells + pairs).
    pub fn summary(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "attribution: {} aborts, {} helps, {} cycles lost",
            self.aborts, self.helps, self.cycles_lost
        );
        if self.escalations + self.forced_commits + self.deferrals + self.delta_commits > 0 {
            let _ = writeln!(
                s,
                "  fairness: {} escalations, {} forced commits, {} deferrals, {} delta commits",
                self.escalations, self.forced_commits, self.deferrals, self.delta_commits
            );
        }
        if self.cell_allocs + self.cell_frees > 0 {
            let _ = writeln!(
                s,
                "  arena: {} allocs, {} frees",
                self.cell_allocs, self.cell_frees
            );
        }
        for (cell, blame) in self.top_cells(k) {
            let _ = writeln!(
                s,
                "  cell {cell:>4}: {:>6} aborts  {:>5} helps  {:>8} cyc lost  ({:.1} cyc/abort)",
                blame.aborts,
                blame.helps,
                blame.cycles_lost,
                blame.mean_cycles_lost()
            );
        }
        let mut pairs: Vec<((u32, u32), u64)> = self.pairs.iter().map(|(&p, &n)| (p, n)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for ((victim, aborter), n) in pairs.into_iter().take(k) {
            let name = |t: u32| {
                if t == NO_OP_TAG {
                    "untagged".to_string()
                } else {
                    format!("op{t}")
                }
            };
            let _ = writeln!(s, "  {} aborted-by {}: {n}", name(victim), name(aborter));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::observe::TxObserver;

    #[test]
    fn folds_conflict_help_abort_chain() {
        let mut rec = FlightRecorder::new(0, 64);
        rec.set_op(3);
        rec.attempt_begin(0, 0, 100);
        rec.conflict(0, Some(5), Some(1), 150);
        rec.help_begin(0, 1, 150);
        rec.help_end(0, 1, 160);
        rec.aborted(0, 0, 180);
        rec.attempt_begin(0, 1, 180);
        rec.committed(0, 2, 250);
        let attr = Attribution::from_events(&rec.drain());
        assert_eq!(attr.aborts(), 1);
        assert_eq!(attr.helps(), 1);
        assert_eq!(attr.cycles_lost(), 80); // 180 - 100
        let blame = attr.cells()[&5];
        assert_eq!(blame.aborts, 1);
        assert_eq!(blame.helps, 1);
        assert_eq!(blame.cycles_lost, 80);
        // Victim op 3 aborted by whatever owner proc 1 was running
        // (untagged here: no board attached).
        assert_eq!(attr.pairs()[&(3, NO_OP_TAG)], 1);
    }

    #[test]
    fn merge_is_additive_and_top_cells_rank() {
        let mut rec = FlightRecorder::new(0, 64);
        rec.attempt_begin(0, 0, 0);
        rec.conflict(0, Some(1), None, 5);
        rec.aborted(0, 0, 10);
        rec.attempt_begin(0, 1, 10);
        rec.conflict(0, Some(2), None, 12);
        rec.aborted(0, 0, 20);
        rec.attempt_begin(0, 2, 20);
        rec.conflict(0, Some(2), None, 22);
        rec.aborted(0, 0, 30);
        let one = Attribution::from_events(&rec.drain());
        let mut both = one.clone();
        both.merge(&one);
        assert_eq!(both.aborts(), 2 * one.aborts());
        let top = both.top_cells(1);
        assert_eq!(top[0].0, 2, "cell 2 has the most aborts");
        assert_eq!(top[0].1.aborts, 4);
        assert!(!both.summary(4).is_empty());
    }

    #[test]
    fn empty_and_eq() {
        assert!(Attribution::new().is_empty());
        assert_eq!(Attribution::new(), Attribution::default());
    }
}
