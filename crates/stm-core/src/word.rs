//! Packed word layouts used by the STM protocol.
//!
//! The Shavit–Touitou algorithm coordinates entirely through single-word
//! compare-and-swap. The 1995 paper assumes unbounded tags informally; this
//! implementation makes every tag explicit and bounded, packing each protocol
//! word into a single [`Word`] (64 bits) so that every protocol transition is
//! one CAS:
//!
//! * **cell** — a transactional memory cell: `stamp:16 | value:32`. The stamp
//!   advances on every committed update so a stale helper's late CAS is
//!   rejected (bounded-tag caveat: a helper stalled across exactly 2^16
//!   updates of one cell could observe an ABA; see DESIGN.md §4).
//! * **ownership** — `version:40 | owner_proc+1:16`, or `0` when free. A
//!   single read yields a consistent `(record, version)` pair for helping, and
//!   release is an exact-tag CAS so stale helpers cannot release a location
//!   that was re-acquired.
//! * **status** — `version:40 | fail_idx:12 | code:2`. The record life-cycle
//!   (`Null → Success | Failure(idx)`) is decided by version-guarded CAS.
//! * **old-value entry** — `version:15 | set:1 | stamp:16 | value:32`. The
//!   "agree on old values" step of the paper is a CAS from the unset to the
//!   set state, so every participant of a transaction observes the same
//!   pre-image (value *and* stamp) for every location.
//!
//! All version fields are truncations of a per-record monotonic `u64` counter;
//! comparisons are always performed on *packed* words produced by the same
//! packing function, never on raw counters, so truncation is applied
//! uniformly.
//!
//! # Version wraparound and the staleness bound
//!
//! The authoritative counter is itself recovered from the packed status word
//! (see `attempt` in the protocol module), so it is effectively a
//! [`VERSION_BITS`]-bit counter that wraps at `2^40`. Wrapping is *harmless*
//! per se — every comparison is between words truncated the same way, so the
//! protocol carries straight across the discontinuity (exercised by the
//! `version_counter_wraparound_is_harmless_under_contention` simulator test).
//! What truncation does bound is *helper staleness*: a helper that stalls
//! holding a stale `(owner, version)` pair can be fooled only if the victim's
//! record advances by an exact multiple of the tag modulus while the helper
//! sleeps — `2^40` transactions for status/ownership tags, `2^15` for
//! old-value entries (the binding constraint), and `2^16` cell updates for
//! the per-cell stamp. Within any window shorter than `2^15` transactions of
//! one record, every tag comparison is exact and the ABA is impossible. The
//! paper assumes unbounded tags; these widths are where that assumption is
//! cashed out, and they can be re-balanced against [`MAX_PROCS`] /
//! [`MAX_DATASET`] if a deployment needs a wider staleness window.

/// Machine word: every shared location holds one of these.
pub type Word = u64;

/// Address of a word in a machine's shared address space.
pub type Addr = usize;

/// Index of a transactional cell (dense, `0..n_cells`).
pub type CellIdx = usize;

/// Number of bits of the per-record version counter kept in ownership and
/// status words.
pub const VERSION_BITS: u32 = 40;
/// Number of version bits kept in old-value entries (they also carry the
/// 16-bit stamp, leaving less room).
pub const OLDVAL_VERSION_BITS: u32 = 15;
/// Bits of the per-cell update stamp.
pub const STAMP_BITS: u32 = 16;
/// Bits of a cell's payload value.
pub const VALUE_BITS: u32 = 32;
/// Bits of the failure-location index inside a status word.
pub const FAIL_IDX_BITS: u32 = 12;
/// Maximum number of locations in one static transaction's data set.
pub const MAX_DATASET: usize = (1 << FAIL_IDX_BITS) - 1;
/// Maximum number of processors (ownership packs `proc+1` in 16 bits).
pub const MAX_PROCS: usize = (1 << 16) - 2;

const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;
const OLDVAL_VERSION_MASK: u64 = (1 << OLDVAL_VERSION_BITS) - 1;
const STAMP_MASK: u64 = (1 << STAMP_BITS) - 1;
const VALUE_MASK: u64 = (1 << VALUE_BITS) - 1;
const FAIL_IDX_MASK: u64 = (1 << FAIL_IDX_BITS) - 1;

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// Pack a cell word from an update stamp and a 32-bit payload.
#[inline]
pub fn pack_cell(stamp: u16, value: u32) -> Word {
    ((stamp as u64) << VALUE_BITS) | value as u64
}

/// Payload value of a packed cell word.
#[inline]
pub fn cell_value(w: Word) -> u32 {
    (w & VALUE_MASK) as u32
}

/// Update stamp of a packed cell word.
#[inline]
pub fn cell_stamp(w: Word) -> u16 {
    ((w >> VALUE_BITS) & STAMP_MASK) as u16
}

/// The cell word that results from committing `new_value` over pre-image `w`
/// (advances the stamp by one, wrapping).
#[inline]
pub fn cell_successor(w: Word, new_value: u32) -> Word {
    pack_cell(cell_stamp(w).wrapping_add(1), new_value)
}

// ---------------------------------------------------------------------------
// Ownership
// ---------------------------------------------------------------------------

/// Ownership word for a free (unowned) location.
pub const OWNER_FREE: Word = 0;

/// Pack an ownership word: location owned by `proc`'s transaction `version`.
#[inline]
pub fn pack_owner(proc: usize, version: u64) -> Word {
    debug_assert!(proc <= MAX_PROCS);
    ((version & VERSION_MASK) << 16) | (proc as u64 + 1)
}

/// Decode an ownership word into `(proc, truncated_version)`; `None` if free.
#[inline]
pub fn unpack_owner(w: Word) -> Option<(usize, u64)> {
    if w == OWNER_FREE {
        None
    } else {
        Some((((w & 0xFFFF) - 1) as usize, w >> 16))
    }
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

/// Outcome state of a transaction record, as stored in its status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxStatus {
    /// Undecided: ownership acquisition still in progress.
    Null,
    /// Decided success: all locations acquired; commit will be applied.
    Success,
    /// Decided failure at data-set index `0`: a location was owned by another
    /// transaction.
    Failure(usize),
    /// The record owner is rewriting the record's fields for this version;
    /// no participant may read the data set yet. The owner publishes
    /// `Initializing` *before* touching the record body and `Null` after, so
    /// a helper whose two status validations both land in the same version
    /// with a non-`Initializing` code is guaranteed an untorn snapshot.
    Initializing,
}

const CODE_NULL: u64 = 0;
const CODE_SUCCESS: u64 = 1;
const CODE_FAILURE: u64 = 2;
const CODE_INIT: u64 = 3;

/// Pack a status word for `version` in state `status`.
#[inline]
pub fn pack_status(version: u64, status: TxStatus) -> Word {
    let (code, idx) = match status {
        TxStatus::Null => (CODE_NULL, 0),
        TxStatus::Success => (CODE_SUCCESS, 0),
        TxStatus::Failure(i) => {
            debug_assert!(i <= MAX_DATASET);
            (CODE_FAILURE, i as u64)
        }
        TxStatus::Initializing => (CODE_INIT, 0),
    };
    ((version & VERSION_MASK) << (2 + FAIL_IDX_BITS)) | (idx << 2) | code
}

/// Decode a status word into `(truncated_version, status)`.
#[inline]
pub fn unpack_status(w: Word) -> (u64, TxStatus) {
    let version = w >> (2 + FAIL_IDX_BITS);
    let status = match w & 0b11 {
        CODE_NULL => TxStatus::Null,
        CODE_SUCCESS => TxStatus::Success,
        CODE_FAILURE => TxStatus::Failure(((w >> 2) & FAIL_IDX_MASK) as usize),
        CODE_INIT => TxStatus::Initializing,
        _ => unreachable!("invalid status code"),
    };
    (version, status)
}

/// Does status word `w` belong to (the truncation of) `version`?
#[inline]
pub fn status_is_version(w: Word, version: u64) -> bool {
    (w >> (2 + FAIL_IDX_BITS)) == (version & VERSION_MASK)
}

// ---------------------------------------------------------------------------
// Old-value agreement entries
// ---------------------------------------------------------------------------

/// Pack an *unset* old-value entry for `version` (written by the record owner
/// during re-initialization).
#[inline]
pub fn pack_oldval_unset(version: u64) -> Word {
    (version & OLDVAL_VERSION_MASK) << 49
}

/// Pack a *set* old-value entry: the agreed pre-image of a location (full
/// packed cell word) for `version`.
#[inline]
pub fn pack_oldval_set(version: u64, cell_word: Word) -> Word {
    debug_assert!(cell_word >> (STAMP_BITS + VALUE_BITS) == 0);
    ((version & OLDVAL_VERSION_MASK) << 49) | (1 << 48) | cell_word
}

/// Decode an old-value entry: returns the agreed packed cell word if the
/// entry is set for `version`, `Err(true)` if still unset for `version`, and
/// `Err(false)` if the entry belongs to a different version.
#[inline]
pub fn oldval_for_version(w: Word, version: u64) -> Result<Word, bool> {
    if (w >> 49) != (version & OLDVAL_VERSION_MASK) {
        Err(false)
    } else if (w >> 48) & 1 == 1 {
        Ok(w & ((1 << 48) - 1))
    } else {
        Err(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        for (stamp, value) in [(0u16, 0u32), (1, 42), (u16::MAX, u32::MAX), (0x1234, 0xDEAD_BEEF)] {
            let w = pack_cell(stamp, value);
            assert_eq!(cell_stamp(w), stamp);
            assert_eq!(cell_value(w), value);
        }
    }

    #[test]
    fn cell_successor_advances_stamp() {
        let w = pack_cell(7, 100);
        let s = cell_successor(w, 101);
        assert_eq!(cell_value(s), 101);
        assert_eq!(cell_stamp(s), 8);
        // wrap
        let w = pack_cell(u16::MAX, 1);
        assert_eq!(cell_stamp(cell_successor(w, 2)), 0);
    }

    #[test]
    fn owner_roundtrip() {
        assert_eq!(unpack_owner(OWNER_FREE), None);
        for (proc, version) in [(0usize, 0u64), (1, 1), (63, 12345), (MAX_PROCS, u64::MAX)] {
            let w = pack_owner(proc, version);
            let (p, v) = unpack_owner(w).expect("owned");
            assert_eq!(p, proc);
            assert_eq!(v, version & ((1 << VERSION_BITS) - 1));
        }
    }

    #[test]
    fn owner_free_is_distinct_from_all_owned() {
        // proc+1 encoding guarantees an owned word is never 0.
        assert_ne!(pack_owner(0, 0), OWNER_FREE);
    }

    #[test]
    fn status_roundtrip() {
        for version in [0u64, 1, 999, u64::MAX] {
            for status in [
                TxStatus::Null,
                TxStatus::Success,
                TxStatus::Failure(0),
                TxStatus::Failure(MAX_DATASET),
                TxStatus::Initializing,
            ] {
                let w = pack_status(version, status);
                let (v, s) = unpack_status(w);
                assert_eq!(v, version & ((1 << VERSION_BITS) - 1));
                assert_eq!(s, status);
                assert!(status_is_version(w, version));
            }
        }
    }

    #[test]
    fn status_version_guard_rejects_other_versions() {
        let w = pack_status(5, TxStatus::Null);
        assert!(!status_is_version(w, 6));
        // truncation consistency: versions equal mod 2^VERSION_BITS collide by
        // design (bounded tags).
        assert!(status_is_version(w, 5 + (1 << VERSION_BITS)));
    }

    #[test]
    fn oldval_roundtrip() {
        let cell = pack_cell(3, 77);
        let unset = pack_oldval_unset(9);
        assert_eq!(oldval_for_version(unset, 9), Err(true));
        assert_eq!(oldval_for_version(unset, 10), Err(false));
        let set = pack_oldval_set(9, cell);
        assert_eq!(oldval_for_version(set, 9), Ok(cell));
        assert_eq!(oldval_for_version(set, 8), Err(false));
    }

    #[test]
    fn distinct_protocol_words_do_not_alias() {
        // A set entry can never equal an unset entry of any version.
        let cell = pack_cell(0, 0);
        for v in 0..100u64 {
            assert_ne!(pack_oldval_set(v, cell) >> 48 & 1, 0);
            assert_eq!(pack_oldval_unset(v) >> 48 & 1, 0);
        }
    }
}
