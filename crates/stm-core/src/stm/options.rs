//! Per-call execution options for the unified transaction entry points
//! ([`Stm::run`](crate::stm::Stm::run) /
//! [`DynamicStm::run`](crate::dynamic::DynamicStm::run)).
//!
//! Historically the observer × budget × contention-manager combinatorics grew
//! one entry point per combination (`execute`, `execute_observed`,
//! `try_execute_within`, …). [`TxOptions`] collapses them: one builder value
//! carries all three knobs, and the defaults — [`NoopObserver`] +
//! [`ImmediateRetry`] + [`TxBudget::unlimited`] — monomorphize to exactly the
//! classic unobserved retry loop.

use crate::contention::{ContentionManager, ImmediateRetry};
use crate::observe::{NoopObserver, TxObserver};

use super::TxBudget;

/// Options for one transaction call: observer, contention manager, and
/// retry budget.
///
/// The defaults cost nothing: [`NoopObserver`] compiles to the unobserved
/// path, [`ImmediateRetry`] is the paper's retry-immediately policy, and an
/// unlimited [`TxBudget`] retries until commit. Builder methods swap each
/// knob, changing the type parameters as needed; both `observer` and
/// `manager` are held **by value**, and `&mut O` / `&mut C` implement the
/// traits too, so a long-lived observer or manager can be lent per call.
///
/// # Examples
///
/// ```
/// use stm_core::contention::AdaptiveManager;
/// use stm_core::observe::RecordingObserver;
/// use stm_core::stm::{TxBudget, TxOptions};
///
/// // Everything default: the classic lock-free retry loop.
/// let _plain = TxOptions::new();
///
/// // Bounded, adaptively managed, observed — lending the observer.
/// let mut rec = RecordingObserver::new();
/// let _opts = TxOptions::new()
///     .observer(&mut rec)
///     .manager(AdaptiveManager::new(0))
///     .budget(TxBudget::attempts(64));
/// ```
#[derive(Debug, Clone)]
pub struct TxOptions<O = NoopObserver, C = ImmediateRetry> {
    /// Receiver of the transaction's lifecycle events.
    pub observer: O,
    /// Policy consulted between failed attempts.
    pub manager: C,
    /// Retry budget; the first limit hit ends the call with
    /// [`TxError::BudgetExhausted`](crate::stm::TxError::BudgetExhausted).
    pub budget: TxBudget,
}

impl TxOptions {
    /// The default options: unobserved, immediate retry, unlimited budget.
    pub fn new() -> Self {
        TxOptions { observer: NoopObserver, manager: ImmediateRetry, budget: TxBudget::unlimited() }
    }
}

impl Default for TxOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: TxObserver, C: ContentionManager> TxOptions<O, C> {
    /// Replace the observer (pass `&mut obs` to lend a long-lived one).
    pub fn observer<O2: TxObserver>(self, observer: O2) -> TxOptions<O2, C> {
        TxOptions { observer, manager: self.manager, budget: self.budget }
    }

    /// Replace the contention manager (pass `&mut cm` to lend one whose
    /// starvation pressure should accumulate across calls).
    pub fn manager<C2: ContentionManager>(self, manager: C2) -> TxOptions<O, C2> {
        TxOptions { observer: self.observer, manager, budget: self.budget }
    }

    /// Replace the retry budget.
    pub fn budget(mut self, budget: TxBudget) -> Self {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::AdaptiveManager;
    use crate::observe::RecordingObserver;

    #[test]
    fn builder_threads_every_knob() {
        let mut rec = RecordingObserver::new();
        let opts = TxOptions::new()
            .budget(TxBudget::attempts(3))
            .observer(&mut rec)
            .manager(AdaptiveManager::new(1));
        assert_eq!(opts.budget.max_attempts, Some(3));
        assert!(!opts.manager.is_escalated());
    }

    #[test]
    fn default_is_unlimited() {
        let opts = TxOptions::default();
        assert_eq!(opts.budget, TxBudget::unlimited());
    }
}
