//! Per-call execution options for the unified transaction entry points
//! ([`Stm::run`](crate::stm::Stm::run) /
//! [`DynamicStm::run`](crate::dynamic::DynamicStm::run)).
//!
//! Historically the observer × budget × contention-manager combinatorics grew
//! one entry point per combination (`execute`, `execute_observed`,
//! `try_execute_within`, …). [`TxOptions`] collapses them: one builder value
//! carries all three knobs, and the defaults — [`NoopObserver`] +
//! [`ImmediateRetry`] + [`TxBudget::unlimited`] — monomorphize to exactly the
//! classic unobserved retry loop.

use crate::contention::{ContentionManager, ImmediateRetry};
use crate::durable::{Journal, NoJournal};
use crate::observe::{NoopObserver, TxObserver};

use super::TxBudget;

/// Options for one transaction call: observer, contention manager, retry
/// budget, and durability backend.
///
/// The defaults cost nothing: [`NoopObserver`] compiles to the unobserved
/// path, [`ImmediateRetry`] is the paper's retry-immediately policy, an
/// unlimited [`TxBudget`] retries until commit, and [`NoJournal`] compiles
/// the durability path out entirely. Builder methods swap each knob,
/// changing the type parameters as needed; `observer`, `manager`, and
/// `journal` are held **by value**, and `&mut O` / `&mut C` / `&mut J`
/// implement the traits too, so a long-lived observer, manager, or journal
/// can be lent per call.
///
/// # Examples
///
/// ```
/// use stm_core::contention::AdaptiveManager;
/// use stm_core::durable::DurableMem;
/// use stm_core::observe::RecordingObserver;
/// use stm_core::stm::{TxBudget, TxOptions};
///
/// // Everything default: the classic lock-free retry loop.
/// let _plain = TxOptions::new();
///
/// // Bounded, adaptively managed, observed — lending the observer.
/// let mut rec = RecordingObserver::new();
/// let _opts = TxOptions::new()
///     .observer(&mut rec)
///     .manager(AdaptiveManager::new(0))
///     .budget(TxBudget::attempts(64));
///
/// // Durable: every commit writes an fsync-ordered redo record.
/// let storage = DurableMem::new();
/// let _durable = TxOptions::new().journal(storage.handle());
/// ```
#[derive(Debug, Clone)]
pub struct TxOptions<O = NoopObserver, C = ImmediateRetry, J = NoJournal> {
    /// Receiver of the transaction's lifecycle events.
    pub observer: O,
    /// Policy consulted between failed attempts.
    pub manager: C,
    /// Retry budget; the first limit hit ends the call with
    /// [`TxError::BudgetExhausted`](crate::stm::TxError::BudgetExhausted).
    pub budget: TxBudget,
    /// Durability backend: redo records are appended and flushed here before
    /// any new value is installed.
    pub journal: J,
}

impl TxOptions {
    /// The default options: unobserved, immediate retry, unlimited budget,
    /// no durability.
    pub fn new() -> Self {
        TxOptions {
            observer: NoopObserver,
            manager: ImmediateRetry,
            budget: TxBudget::unlimited(),
            journal: NoJournal,
        }
    }
}

impl Default for TxOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: TxObserver, C: ContentionManager, J: Journal> TxOptions<O, C, J> {
    /// Replace the observer (pass `&mut obs` to lend a long-lived one).
    pub fn observer<O2: TxObserver>(self, observer: O2) -> TxOptions<O2, C, J> {
        TxOptions { observer, manager: self.manager, budget: self.budget, journal: self.journal }
    }

    /// Replace the contention manager (pass `&mut cm` to lend one whose
    /// starvation pressure should accumulate across calls).
    pub fn manager<C2: ContentionManager>(self, manager: C2) -> TxOptions<O, C2, J> {
        TxOptions { observer: self.observer, manager, budget: self.budget, journal: self.journal }
    }

    /// Replace the retry budget.
    pub fn budget(mut self, budget: TxBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the durability backend (pass `&mut jrn` to lend a long-lived
    /// journal handle).
    pub fn journal<J2: Journal>(self, journal: J2) -> TxOptions<O, C, J2> {
        TxOptions { observer: self.observer, manager: self.manager, budget: self.budget, journal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::AdaptiveManager;
    use crate::observe::RecordingObserver;

    #[test]
    fn builder_threads_every_knob() {
        let mut rec = RecordingObserver::new();
        let opts = TxOptions::new()
            .budget(TxBudget::attempts(3))
            .observer(&mut rec)
            .manager(AdaptiveManager::new(1))
            .journal(crate::durable::DurableMem::new().handle());
        assert_eq!(opts.budget.max_attempts, Some(3));
        assert!(!opts.manager.is_escalated());
        const { assert!(<crate::durable::MemJournal as crate::durable::Journal>::ACTIVE) };
    }

    #[test]
    fn default_is_unlimited() {
        let opts = TxOptions::default();
        assert_eq!(opts.budget, TxBudget::unlimited());
    }
}
