//! The transaction protocol itself — the paper's `startTransaction` /
//! `transaction` / `acquireOwnerships` / `agreeOldValues` / `updateMemory` /
//! `releaseOwnerships` procedures.
//!
//! Every participant of a transaction (the initiating owner plus any helping
//! processors) runs [`run_transaction`] for the same `(owner, version)` pair;
//! all steps are idempotent under the version-tagged CAS discipline described
//! in [`crate::word`], so redundant execution is harmless — exactly the
//! paper's design.
//!
//! The protocol executes off a borrowed [`ViewRef`] (compiled plan or
//! per-call view) plus reusable [`TxScratch`] buffers, so the retry loop and
//! the helping path allocate nothing per attempt. The per-cell protocol
//! steps live in `*_cell` functions shared by the general slice-driven
//! sweeps and the monomorphized small-k kernels ([`Kernel::K1`]/[`K2`]/
//! [`K4`](Kernel::K4)), which guarantees every kernel issues the identical
//! sequence of shared-memory operations and [`StepPoint`] hooks.

use std::any::Any;

use crate::contention::{ConflictInfo, ContentionManager, PriorityLevel, WaitAction};
use crate::durable::{Journal, RedoRecord};
use crate::machine::MemPort;
use crate::observe::{NoopObserver, TxObserver};
use crate::program::OpCode;
use crate::step::StepPoint;
use crate::word::{
    cell_successor, cell_value, oldval_for_version, pack_oldval_set, pack_oldval_unset,
    pack_owner, pack_status, status_is_version, unpack_owner, unpack_status, Addr, CellIdx,
    TxStatus, Word, OWNER_FREE,
};

use super::plan::{Kernel, ProtoBuf, TxScratch, ViewBuf, ViewRef};
use super::{Stm, TxBudget, TxError, TxSpec, TxStats};

/// A contained panic payload from a user commit program (re-raised or
/// surfaced as [`TxError::OpPanicked`] by the caller, after cleanup).
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Why one [`attempt`] did not commit.
enum AttemptError {
    /// The attempt was decided `Failure` at data-set position `at`.
    Conflict {
        at: usize,
    },
    /// The attempt was decided `Success` but the commit program panicked;
    /// nothing was installed, every ownership was released, and the machine
    /// is clean. Carries the payload for re-raising.
    Panicked(PanicPayload),
}

/// What an acquisition sweep does when it meets a live conflicting owner.
///
/// [`SweepMode::Classic`] is the paper's protocol and the only mode reachable
/// without a [`PriorityBoard`](crate::contention::PriorityBoard) attached —
/// the other two exist solely for the fairness ladder and add no port
/// operations to default-config schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepMode {
    /// Fail the swept transaction at the conflicting position (the paper).
    Classic,
    /// Helping a record whose owner outranks this actor on the board: leave
    /// the record *undecided* on a live conflict instead of failing it, so
    /// the escalated owner keeps its progress.
    Defer,
    /// The owner's own forced sweep: never self-fail. A live conflict
    /// reports the blocked position so the caller can help the obstructor to
    /// completion and resume the sweep (held prefix kept). Newly claimed
    /// locations are announced via [`StepPoint::ForcedAcquired`] for the
    /// ascending-order checker.
    Forced,
}

/// Result of [`acquire_cell`] for one location.
enum CellAcquire {
    /// The location is held by the swept transaction; `newly` iff this
    /// call's CAS claimed it (as opposed to finding it already claimed).
    Acquired { newly: bool },
    /// The sweep must stop: the status moved, or a live conflict failed the
    /// transaction (Classic mode).
    Stop,
    /// Live conflict under [`SweepMode::Defer`]/[`SweepMode::Forced`]: the
    /// record was left undecided and still holds its ascending prefix.
    Blocked,
}

/// Result of one [`run_transaction_general`] sweep.
enum SweepOutcome {
    /// The transaction ran to a decided status and this participant's
    /// release sweep ran; carries the contained panic payload if this
    /// participant's own update panicked.
    Completed(Option<PanicPayload>),
    /// Non-Classic modes only: the sweep stopped *undecided* at data-set
    /// position `at`. Nothing was released — the record keeps every
    /// ownership it holds, by design.
    Blocked { at: usize },
}

/// Fault injection for tests: initialize the record and acquire ownerships
/// for `spec`, then abandon the transaction undecided (as a processor that
/// crashed mid-protocol would). The paper's liveness claim is that other
/// processors *complete* such a transaction via helping.
pub(super) fn start_and_abandon<P: MemPort>(stm: &Stm, port: &mut P, spec: &TxSpec<'_>) {
    let me = port.proc_id();
    let l = *stm.layout();
    let (prev_version, _) = unpack_status(port.read(l.status(me)));
    let version = prev_version.wrapping_add(1);
    port.write(l.status(me), pack_status(version, TxStatus::Initializing));
    port.write(l.size(me), spec.cells.len() as Word);
    port.write(l.opcode(me), spec.op.index() as Word);
    port.write(l.nparams(me), spec.params.len() as Word);
    for (i, &p) in spec.params.iter().enumerate() {
        port.write(l.param(me, i), p);
    }
    for (j, &c) in spec.cells.iter().enumerate() {
        port.write(l.addr_slot(me, j), c as Word);
        port.write(l.oldval_slot(me, j), pack_oldval_unset(version));
    }
    port.write(l.status(me), pack_status(version, TxStatus::Null));
    let mut vb = ViewBuf::default();
    vb.fill_from_spec(&l, spec);
    let _ = acquire_general(stm, port, me, version, vb.view(spec.op), &mut NoopObserver, SweepMode::Classic);
    // ... and vanish: no decision handling, no release, no retry.
}

/// The retry loop behind every budgeted/managed entry point
/// ([`Stm::run`](crate::stm::Stm::run) and
/// [`Stm::run_plan_in`](crate::stm::Stm::run_plan_in)): run `view` under a
/// [`TxBudget`], consulting a [`ContentionManager`] between attempts.
///
/// On commit the data set's old values are left in `scratch`
/// ([`TxScratch::old`]/[`TxScratch::old_stamps`]) — with a warm scratch the
/// whole loop, helping included, performs **zero heap allocations per
/// attempt**.
///
/// While the manager reports help-first mode, attempts run with helping
/// forced on regardless of [`StmConfig::helping`](crate::stm::StmConfig) —
/// the starvation escape hatch. Panicking commit programs surface as
/// [`TxError::OpPanicked`] instead of unwinding.
#[allow(clippy::too_many_arguments)] // the one hot loop behind every entry point
pub(super) fn execute_loop<P: MemPort, C: ContentionManager, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    view: ViewRef<'_>,
    kernel: Kernel,
    budget: TxBudget,
    cm: &mut C,
    obs: &mut O,
    jrn: &mut J,
    scratch: &mut TxScratch,
) -> Result<TxStats, TxError> {
    let mut stats = TxStats::default();
    scratch.contended.clear();
    let started = std::time::Instant::now();
    let cycles0 = port.now();
    loop {
        let help = stm.config.helping || cm.help_first();
        // The level the manager secured before this attempt. The default
        // implementation returns `Normal`, which compiles the forced branch
        // away entirely — no port traffic, no schedule change.
        let level = cm.priority();
        match attempt(stm, port, view, kernel, &mut stats, obs, &mut *jrn, help, level, scratch) {
            Ok(()) => {
                cm.on_commit();
                return Ok(stats);
            }
            Err(AttemptError::Panicked(_payload)) => {
                // The attempt already released everything; drop the payload
                // and surface the typed error.
                return Err(TxError::OpPanicked { attempts: stats.attempts });
            }
            Err(AttemptError::Conflict { at }) => {
                let me = port.proc_id();
                let cell = view.cells.get(at).copied();
                if let Some(c) = cell {
                    scratch.note_contended(c);
                }
                let cycles_lost = port.now().saturating_sub(cycles0);
                if budget.is_exhausted(stats.attempts, cycles_lost, started) {
                    return Err(TxError::BudgetExhausted {
                        attempts: stats.attempts,
                        cells_contended: scratch.contended.len() as u64,
                        cycles_lost,
                    });
                }
                // Best-effort re-inspection of the obstructing owner (it may
                // already have moved on) — the starvation detector's input.
                // Skipped (one shared read saved per conflict) for managers
                // that ignore the owner, so the default options' retry loop
                // issues exactly the classic loop's memory operations.
                let owner = if cm.wants_conflict_owner() {
                    view.own_addrs.get(at).and_then(|&own_addr| {
                        unpack_owner(port.read(own_addr))
                            .map(|(p2, _)| p2)
                            .filter(|&p2| p2 != me)
                    })
                } else {
                    None
                };
                let info = ConflictInfo { proc: me, attempt: stats.attempts, cell, owner };
                let decision = cm.on_conflict(&info);
                if decision.newly_escalated {
                    obs.starvation_escalated(me, owner, stats.attempts, port.now());
                }
                match decision.wait {
                    WaitAction::None => {
                        // Preserve the instance's static back-off policy when
                        // the manager declines to wait (the default
                        // `ImmediateRetry` + `BackoffPolicy::None` combination
                        // does nothing here), so `Stm::run` with default
                        // options retries exactly like the classic loop.
                        let wait = stm.config.backoff.wait_cycles(me, stats.attempts);
                        if wait > 0 {
                            port.delay(wait);
                        }
                    }
                    WaitAction::Spin(cycles) => {
                        obs.backoff_wait(me, stats.attempts, cycles, port.now());
                        port.delay(cycles);
                    }
                    WaitAction::Yield => {
                        obs.backoff_wait(me, stats.attempts, 0, port.now());
                        port.yield_now();
                    }
                    WaitAction::Park { micros } => {
                        obs.backoff_wait(me, stats.attempts, micros, port.now());
                        port.park_micros(micros);
                    }
                }
            }
        }
    }
}

/// One attempt by the record owner: initialize the record, run the
/// transaction, and on failure help the obstructing transaction once
/// (non-redundant helping) when `help` is set. On commit, leaves the old
/// values in `scratch`; otherwise returns an [`AttemptError`].
///
/// `help_on_conflict` is [`StmConfig::helping`](crate::stm::StmConfig) on
/// the classic paths; the managed path forces it on in help-first mode.
///
/// `level` is the priority the contention manager secured for this attempt.
/// At [`PriorityLevel::Forced`] the attempt runs the never-self-fail general
/// sweep: a live conflict blocks, the obstructor is helped to completion
/// (the same one-level excursion as classic helping), and the sweep resumes
/// with its held ascending prefix intact — repeated until the transaction is
/// decided. [`PriorityLevel::Normal`]/[`Escalated`](PriorityLevel::Escalated)
/// take the classic path, so default-config schedules are untouched.
#[allow(clippy::too_many_arguments)] // internal: one call site per entry point
fn attempt<P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    view: ViewRef<'_>,
    kernel: Kernel,
    stats: &mut TxStats,
    obs: &mut O,
    mut jrn: J,
    help_on_conflict: bool,
    level: PriorityLevel,
    scratch: &mut TxScratch,
) -> Result<(), AttemptError> {
    stats.attempts += 1;
    let me = port.proc_id();
    obs.attempt_begin(me, stats.attempts, port.now());
    let l = *stm.layout();

    // New version: successor of whatever version the record last carried.
    let (prev_version, _) = unpack_status(port.read(l.status(me)));
    let version = prev_version.wrapping_add(1);

    // (1) Fence: helpers that land mid-rewrite see `Initializing` and bail.
    port.write(l.status(me), pack_status(version, TxStatus::Initializing));
    // (2) Record body: code reference + data set + fresh agreement entries.
    port.write(l.size(me), view.cells.len() as Word);
    port.write(l.opcode(me), view.op.index() as Word);
    port.write(l.nparams(me), view.params.len() as Word);
    for (i, &p) in view.params.iter().enumerate() {
        port.write(l.param(me, i), p);
    }
    for (j, &c) in view.cells.iter().enumerate() {
        port.write(l.addr_slot(me, j), c as Word);
        port.write(l.oldval_slot(me, j), pack_oldval_unset(version));
    }
    // (3) Publish: the transaction is now live and helpable.
    port.write(l.status(me), pack_status(version, TxStatus::Null));
    port.step(StepPoint::TxPublished);

    let panicked = if level == PriorityLevel::Forced {
        // The forced sweep never self-fails: on a live conflict it helps the
        // obstructor to completion (one level, like classic helping) and
        // resumes — held cells short-circuit on the re-walk, so the
        // ascending prefix is kept and acquisition order is preserved.
        // Always the general kernel: the blocked-resume loop has no
        // monomorphized counterpart.
        loop {
            match run_transaction_general(
                stm,
                port,
                me,
                version,
                view,
                &mut scratch.proto,
                obs,
                &mut jrn,
                SweepMode::Forced,
            ) {
                SweepOutcome::Completed(p) => break p,
                SweepOutcome::Blocked { at } => {
                    let mut obstructor: Option<(usize, u64)> = None;
                    if let Some(&own_addr) = view.own_addrs.get(at) {
                        if let Some((p2, v2)) = unpack_owner(port.read(own_addr)) {
                            if p2 != me {
                                obstructor = Some((p2, v2));
                            }
                        }
                    }
                    if let Some((p2, v2)) = obstructor {
                        stats.helps += 1;
                        port.step(StepPoint::HelpBegin { owner: p2 });
                        obs.help_begin(me, p2, port.now());
                        help(stm, port, p2, v2, scratch, obs, &mut jrn);
                        obs.help_end(me, p2, port.now());
                    }
                    // The obstructor is decided (or was already gone — the
                    // re-read raced its release): re-run the sweep; the
                    // blocked cell is now failable-or-free.
                }
            }
        }
    } else {
        run_transaction(stm, port, me, version, view, kernel, &mut scratch.proto, obs, &mut jrn)
    };

    // Only the owner advances its record's version, so the status read below
    // necessarily still belongs to `version`, and is decided.
    let stw = port.read(l.status(me));
    debug_assert!(status_is_version(stw, version), "own status moved without owner");
    match unpack_status(stw).1 {
        TxStatus::Success => {
            if let Some(payload) = panicked {
                // The commit program panicked in our own `update_memory` call:
                // nothing was installed and `run_transaction` already released
                // every ownership, so memory is untouched and the machine is
                // helpable. Surface the containment instead of the old values.
                obs.op_panicked(me, stats.attempts, port.now());
                return Err(AttemptError::Panicked(payload));
            }
            scratch.out_old.clear();
            scratch.out_stamps.clear();
            for j in 0..view.cells.len() {
                let entry = port.read(l.oldval_slot(me, j));
                // Invariant, not an error path: `Success` is only decided once
                // every location is owned, and release requires the agreement
                // phase to have fixed every pre-image for this version first.
                let cw = oldval_for_version(entry, version)
                    .expect("committed transaction must have agreed old values");
                scratch.out_old.push(cell_value(cw));
                scratch.out_stamps.push(crate::word::cell_stamp(cw));
            }
            obs.committed(me, stats.attempts, port.now());
            if level == PriorityLevel::Forced {
                obs.forced_commit(me, stats.attempts, port.now());
            }
            Ok(())
        }
        TxStatus::Failure(j) => {
            stats.conflicts += 1;
            // When helping is on, the obstructing ownership word is re-read
            // *before* the conflict callback so the observer learns who won
            // the cell (conflict attribution). The port-op sequence is
            // identical to the pre-attribution code — the read always
            // happened here on helping paths, only the callback moved after
            // it — so simulated schedules stay bit-identical. Pure-backoff
            // paths still pay no extra read and report `owner: None`.
            let mut obstructor: Option<(usize, u64)> = None;
            if help_on_conflict {
                if let (Some(&_cell), Some(&own_addr)) =
                    (view.cells.get(j), view.own_addrs.get(j))
                {
                    if let Some((p2, v2)) = unpack_owner(port.read(own_addr)) {
                        if p2 != me {
                            obstructor = Some((p2, v2));
                        }
                    }
                }
            }
            obs.conflict(
                me,
                view.cells.get(j).copied(),
                obstructor.map(|(p2, _)| p2),
                port.now(),
            );
            if let Some((p2, v2)) = obstructor {
                stats.helps += 1;
                port.step(StepPoint::HelpBegin { owner: p2 });
                obs.help_begin(me, p2, port.now());
                help(stm, port, p2, v2, scratch, obs, &mut jrn);
                obs.help_end(me, p2, port.now());
            }
            obs.aborted(me, j, port.now());
            Err(AttemptError::Conflict { at: j })
        }
        TxStatus::Null | TxStatus::Initializing => {
            unreachable!("initiator returned with undecided status")
        }
    }
}

/// Help another processor's transaction `(owner, version)` to completion —
/// the paper's non-redundant helping (helpers never recurse into further
/// helping).
///
/// The snapshot and the replay run out of the scratch's dedicated `help_*`
/// buffers: the helper's own plan view stays borrowed while it replays the
/// victim's commit, so the two transactions must never share storage.
///
/// If the helped commit program panics, the payload is swallowed here: the
/// helper's own transaction is unaffected, and the *owner* observes the same
/// panic from its own `run_transaction` call (commit programs are pure
/// functions of the agreed pre-images, so every participant panics alike).
fn help<P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    scratch: &mut TxScratch,
    obs: &mut O,
    jrn: &mut J,
) {
    let TxScratch { help_view, help_proto, .. } = scratch;
    if let Some(op) = snapshot_into(stm, port, owner, version, help_view) {
        // Escalation: when the helped record's owner outranks this actor on
        // the board, a live conflict defers (leaves the record undecided)
        // instead of failing it. The level comparison is strict, so a
        // Forced actor may still fail an Escalated record — no priority
        // inversion — and without a board the mode is always Classic.
        let me = port.proc_id();
        let mode = match stm.priority_board() {
            Some(board) if board.level(owner) > board.level(me) => SweepMode::Defer,
            _ => SweepMode::Classic,
        };
        // Helped data sets have dynamic size; the general sweep handles any
        // k. The helper journals with its *own* backend: if the owner died
        // before its flush, the helper's record is the one recovery replays
        // (duplicates collapse at replay via the pre-image CAS discipline).
        match run_transaction_general(
            stm,
            port,
            owner,
            version,
            help_view.view(op),
            help_proto,
            obs,
            jrn,
            mode,
        ) {
            SweepOutcome::Completed(_swallowed) => {}
            SweepOutcome::Blocked { .. } => {
                // The record is live and keeps its holdings; report the
                // deferral and leave the escalated owner to finish.
                obs.conflict_deferred(me, owner, port.now());
            }
        }
    }
}

/// The paper's `transaction` procedure, executed identically by the owner
/// and by helpers, dispatched to the plan's commit kernel.
///
/// Every kernel issues the identical shared-memory operation and step
/// sequence (they share the `*_cell` building blocks); the small-k variants
/// only replace the slice-driven sweeps with fully unrolled, stack-resident
/// ones.
///
/// Returns the contained panic payload if the commit program panicked in
/// *this* participant's update sweep (`None` otherwise). Whatever happens,
/// every path performs exactly one release sweep for the ownerships this
/// `(owner, version)` pair may hold — a panicking program can never strand
/// (or double-free) an ownership record.
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn run_transaction<P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    kernel: Kernel,
    proto: &mut ProtoBuf,
    obs: &mut O,
    jrn: &mut J,
) -> Option<PanicPayload> {
    match kernel {
        Kernel::K1 => run_transaction_k::<1, P, O, J>(stm, port, owner, version, view, obs, jrn),
        Kernel::K2 => run_transaction_k::<2, P, O, J>(stm, port, owner, version, view, obs, jrn),
        Kernel::K4 => run_transaction_k::<4, P, O, J>(stm, port, owner, version, view, obs, jrn),
        Kernel::General => {
            match run_transaction_general(
                stm,
                port,
                owner,
                version,
                view,
                proto,
                obs,
                jrn,
                SweepMode::Classic,
            ) {
                SweepOutcome::Completed(p) => p,
                SweepOutcome::Blocked { .. } => unreachable!("classic sweep never blocks"),
            }
        }
    }
}

/// The general slice-driven `transaction` body (any data-set size; also the
/// helping path's kernel).
///
/// Non-Classic modes may return [`SweepOutcome::Blocked`]: the record is
/// still *undecided and live*, keeps every ownership of its ascending
/// prefix, and **nothing is released** — releasing here would free a live
/// transaction's holdings out from under it.
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn run_transaction_general<P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    proto: &mut ProtoBuf,
    obs: &mut O,
    jrn: &mut J,
    mode: SweepMode,
) -> SweepOutcome {
    let l = *stm.layout();
    if let Some(at) = acquire_general(stm, port, owner, version, view, obs, mode) {
        return SweepOutcome::Blocked { at };
    }

    let stw = port.read(l.status(owner));
    if !status_is_version(stw, version) {
        // The transaction finished while we worked; free anything we may
        // still hold for it (exact-tag CAS makes this safe).
        release_general(port, owner, version, view, obs);
        return SweepOutcome::Completed(None);
    }
    match unpack_status(stw).1 {
        TxStatus::Success => {
            // Agreement entries are contiguous per record; resolve the base
            // once and index by data-set position.
            let oldval_base = l.oldval_slot(owner, 0);
            let ProtoBuf { olds, old_values, new_values } = proto;
            if stm.config.sabotage == crate::stm::Sabotage::ReleaseBeforeUpdate {
                // Deliberately broken ordering for harness validation: free
                // the locations first, then install. See [`crate::stm::Sabotage`].
                // The sweep already happened — return the payload directly so
                // the unwind cleanup cannot release a second time.
                release_general(port, owner, version, view, obs);
                if agree_general(port, oldval_base, version, view)
                    && read_agreed_general(port, oldval_base, version, view.cells.len(), olds)
                {
                    return SweepOutcome::Completed(update_general(
                        stm, port, owner, version, view, olds, old_values, new_values, obs, jrn,
                    ));
                }
                return SweepOutcome::Completed(None);
            }
            let mut panicked = None;
            if agree_general(port, oldval_base, version, view)
                && read_agreed_general(port, oldval_base, version, view.cells.len(), olds)
            {
                panicked = update_general(
                    stm, port, owner, version, view, olds, old_values, new_values, obs, jrn,
                );
            }
            release_general(port, owner, version, view, obs);
            SweepOutcome::Completed(panicked)
        }
        TxStatus::Failure(_) => {
            release_general(port, owner, version, view, obs);
            SweepOutcome::Completed(None)
        }
        TxStatus::Null | TxStatus::Initializing => {
            // `acquire_general` always decides the status before returning
            // `None` while the version matches; defensively release and
            // leave. (A `Blocked` sweep returned above, before this read.)
            debug_assert!(false, "undecided status after acquisition");
            release_general(port, owner, version, view, obs);
            SweepOutcome::Completed(None)
        }
    }
}

/// The monomorphized `transaction` body for a data set of exactly `K` cells:
/// every buffer is a stack array and every sweep bound is a compile-time
/// constant, so the compiler fully unrolls the k-word CAS.
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn run_transaction_k<const K: usize, P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    obs: &mut O,
    jrn: &mut J,
) -> Option<PanicPayload> {
    debug_assert_eq!(view.cells.len(), K, "kernel width must match the data set");
    let l = *stm.layout();
    let mut cells = [0 as CellIdx; K];
    cells.copy_from_slice(view.cells);
    let mut order = [0usize; K];
    order.copy_from_slice(view.order);
    let mut cell_addrs = [0 as Addr; K];
    cell_addrs.copy_from_slice(view.cell_addrs);
    let mut own_addrs = [0 as Addr; K];
    own_addrs.copy_from_slice(view.own_addrs);

    let mine = pack_owner(owner, version);
    let status_addr = l.status(owner);
    let live = pack_status(version, TxStatus::Null);

    // acquireOwnerships, unrolled. Kernels only ever run the owner's own
    // non-forced attempts (helping and forced sweeps take the general path),
    // so the mode is always Classic and `Blocked` is unreachable.
    let mut all_acquired = true;
    for &j in &order {
        let got = acquire_cell(
            &l, port, status_addr, live, mine, version, j, cells[j], own_addrs[j], obs,
            SweepMode::Classic,
        );
        if !matches!(got, CellAcquire::Acquired { .. }) {
            all_acquired = false;
            break;
        }
    }
    if all_acquired {
        port.step(StepPoint::BeforeDecisionCas);
        if port.compare_exchange(status_addr, live, pack_status(version, TxStatus::Success)).is_ok()
        {
            port.step(StepPoint::Decided { committed: true });
        }
    }

    let stw = port.read(status_addr);
    if !status_is_version(stw, version) {
        release_k::<K, P, O>(port, &cells, &own_addrs, mine, obs);
        return None;
    }
    match unpack_status(stw).1 {
        TxStatus::Success => {
            let oldval_base = l.oldval_slot(owner, 0);
            let mut olds = [0 as Word; K];
            if stm.config.sabotage == crate::stm::Sabotage::ReleaseBeforeUpdate {
                release_k::<K, P, O>(port, &cells, &own_addrs, mine, obs);
                if agree_k::<K, P>(port, oldval_base, version, &cell_addrs)
                    && read_agreed_k::<K, P>(port, oldval_base, version, &mut olds)
                {
                    return update_k::<K, P, O, J>(
                        stm, port, owner, version, view.op, view.params, &cells, &cell_addrs,
                        &olds, obs, jrn,
                    );
                }
                return None;
            }
            let mut panicked = None;
            if agree_k::<K, P>(port, oldval_base, version, &cell_addrs)
                && read_agreed_k::<K, P>(port, oldval_base, version, &mut olds)
            {
                panicked = update_k::<K, P, O, J>(
                    stm, port, owner, version, view.op, view.params, &cells, &cell_addrs, &olds,
                    obs, jrn,
                );
            }
            release_k::<K, P, O>(port, &cells, &own_addrs, mine, obs);
            panicked
        }
        TxStatus::Failure(_) => {
            release_k::<K, P, O>(port, &cells, &own_addrs, mine, obs);
            None
        }
        TxStatus::Null | TxStatus::Initializing => {
            debug_assert!(false, "undecided status after acquisition");
            release_k::<K, P, O>(port, &cells, &own_addrs, mine, obs);
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Per-cell protocol steps (shared by the general sweeps and the kernels)
// ---------------------------------------------------------------------------

/// Claim one data-set location for `(owner, version)` — the body of the
/// paper's `acquireOwnerships` loop for position `j`. Returns
/// [`CellAcquire::Stop`] when the sweep must stop (the status moved, or a
/// live conflict failed the transaction at `j` in [`SweepMode::Classic`]),
/// and [`CellAcquire::Blocked`] when a live conflict was met under a
/// non-failing mode (the record stays undecided).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn acquire_cell<P: MemPort, O: TxObserver>(
    l: &crate::layout::StmLayout,
    port: &mut P,
    status_addr: Addr,
    live: Word,
    mine: Word,
    version: u64,
    j: usize,
    cell: CellIdx,
    own_addr: Addr,
    obs: &mut O,
    mode: SweepMode,
) -> CellAcquire {
    let newly;
    loop {
        port.step(StepPoint::AcquireAttempt { j });
        // Another participant may have decided the outcome already.
        if port.read(status_addr) != live {
            return CellAcquire::Stop;
        }
        let cur = port.read(own_addr);
        if cur == mine {
            newly = false;
            break; // already claimed (by us or a co-participant)
        }
        if cur == OWNER_FREE {
            match port.compare_exchange(own_addr, OWNER_FREE, mine) {
                Ok(()) => {
                    newly = true;
                    break;
                }
                Err(_) => continue,
            }
        }
        // Invariant: `cur != OWNER_FREE` was checked just above, and every
        // non-free ownership word is a packed `(proc, version)` pair.
        let (p2, v2) = unpack_owner(cur).expect("non-free ownership");
        if !status_is_version(port.read(l.status(p2)), v2) {
            // The owning transaction already finished: this ownership is
            // a stale leftover (e.g. installed by a slow helper after the
            // fact). Reclaim it; all of that transaction's effects are
            // tag-guarded, so freeing early is safe.
            let _ = port.compare_exchange(own_addr, cur, OWNER_FREE);
            continue;
        }
        if mode != SweepMode::Classic {
            // Fairness ladder: leave the record undecided (prefix kept) and
            // let the caller decide how to clear the obstruction.
            return CellAcquire::Blocked;
        }
        // Live conflict: fail this transaction at data-set position `j`.
        if port
            .compare_exchange(status_addr, live, pack_status(version, TxStatus::Failure(j)))
            .is_ok()
        {
            port.step(StepPoint::Decided { committed: false });
        }
        return CellAcquire::Stop;
    }
    port.step(StepPoint::Acquired { j });
    obs.cell_acquired(port.proc_id(), cell, port.now());
    CellAcquire::Acquired { newly }
}

/// Fix the pre-image of one location exactly once per version — the body of
/// the paper's `agreeOldValues` loop. Returns `false` if the record moved to
/// another version.
#[inline(always)]
fn agree_cell<P: MemPort>(port: &mut P, slot: Addr, cell_addr: Addr, version: u64) -> bool {
    loop {
        let entry = port.read(slot);
        match oldval_for_version(entry, version) {
            Ok(_) => return true,
            Err(false) => return false,
            Err(true) => {
                // Entry still unset for our version: the location is
                // still owned (release requires full agreement first), so
                // the cell word is the frozen pre-image.
                let cw = port.read(cell_addr);
                if port.compare_exchange(slot, entry, pack_oldval_set(version, cw)).is_ok() {
                    return true;
                }
                // Lost the race; re-inspect the slot.
            }
        }
    }
}

/// Read back one agreed pre-image; `None` if the record moved versions.
#[inline(always)]
fn read_agreed_cell<P: MemPort>(port: &mut P, slot: Addr, version: u64) -> Option<Word> {
    oldval_for_version(port.read(slot), version).ok()
}

/// Install one location's new value — the body of the paper's `updateMemory`
/// loop. A CAS from the agreed pre-image (stamp included) rejects replays by
/// other participants or stale helpers.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn install_cell<P: MemPort, O: TxObserver>(
    port: &mut P,
    j: usize,
    cell: CellIdx,
    cell_addr: Addr,
    old: Word,
    old_value: u32,
    new_value: u32,
    obs: &mut O,
) {
    port.step(StepPoint::UpdateWrite { j });
    if new_value == old_value {
        return; // logical read: leave the cell (and its stamp) untouched
    }
    obs.write_back(port.proc_id(), cell, port.now());
    let _ = port.compare_exchange(cell_addr, old, cell_successor(old, new_value));
    // Wake transactions blocked on this cell. Announced even when the CAS
    // lost (another participant of the same transaction installed first):
    // the value changed either way, and notify after the install's SeqCst
    // point is what rules out the sleep/commit race (docs/protocol.md §14).
    // Helpers completing a crashed writer's commit pass through here too, so
    // parked waiters survive crash-while-committing interleavings.
    port.notify(cell_addr);
}

/// Free one location iff it is still held by `(owner, version)` — the body
/// of the paper's `releaseOwnerships` loop (an exact-tag CAS).
#[inline(always)]
fn release_cell<P: MemPort, O: TxObserver>(
    port: &mut P,
    j: usize,
    cell: CellIdx,
    own_addr: Addr,
    mine: Word,
    obs: &mut O,
) {
    port.step(StepPoint::BeforeRelease { j });
    obs.released(port.proc_id(), cell, port.now());
    let _ = port.compare_exchange(own_addr, mine, OWNER_FREE);
}

// ---------------------------------------------------------------------------
// General (slice-driven) sweeps
// ---------------------------------------------------------------------------

/// The paper's `acquireOwnerships`: claim every data-set location in
/// ascending cell order, failing the transaction on a live conflict
/// ([`SweepMode::Classic`]). Non-Classic modes return `Some(j)` — the
/// data-set position of a live conflict — with the record undecided and its
/// ascending prefix still held; Classic always returns `None`.
fn acquire_general<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    obs: &mut O,
    mode: SweepMode,
) -> Option<usize> {
    let l = stm.layout();
    let mine = pack_owner(owner, version);
    let status_addr = l.status(owner);
    let live = pack_status(version, TxStatus::Null);

    for &j in view.order {
        match acquire_cell(
            l, port, status_addr, live, mine, version, j, view.cells[j], view.own_addrs[j], obs,
            mode,
        ) {
            CellAcquire::Acquired { newly } => {
                if newly && mode == SweepMode::Forced {
                    // Announce the claim for the sim's ascending-order
                    // checker. A resumed sweep re-walks the whole order but
                    // held cells short-circuit (`newly == false`), so across
                    // the entire forced episode the announced cell indices
                    // are strictly increasing.
                    let cell = if stm.config.sabotage == crate::stm::Sabotage::ForcedOutOfOrder {
                        0
                    } else {
                        view.cells[j]
                    };
                    port.step(StepPoint::ForcedAcquired { cell });
                }
            }
            CellAcquire::Stop => return None,
            CellAcquire::Blocked => return Some(j),
        }
    }
    // Every location is held by `(owner, version)`: decide success. If the
    // CAS fails, another participant decided first — equally final.
    port.step(StepPoint::BeforeDecisionCas);
    if port.compare_exchange(status_addr, live, pack_status(version, TxStatus::Success)).is_ok() {
        port.step(StepPoint::Decided { committed: true });
    }
    None
}

/// The paper's `agreeOldValues` over the whole data set. Returns `false` if
/// the record moved to another version mid-way.
fn agree_general<P: MemPort>(
    port: &mut P,
    oldval_base: Addr,
    version: u64,
    view: ViewRef<'_>,
) -> bool {
    for j in 0..view.cells.len() {
        if !agree_cell(port, oldval_base + j, view.cell_addrs[j], version) {
            return false;
        }
        port.step(StepPoint::OldValAgreed { j });
    }
    true
}

/// Read back the agreed pre-images (packed cell words) in program order into
/// `olds`; `false` if the record moved to another version.
fn read_agreed_general<P: MemPort>(
    port: &mut P,
    oldval_base: Addr,
    version: u64,
    k: usize,
    olds: &mut Vec<Word>,
) -> bool {
    olds.clear();
    for j in 0..k {
        match read_agreed_cell(port, oldval_base + j, version) {
            Some(w) => olds.push(w),
            None => return false,
        }
    }
    true
}

/// The paper's `updateMemory`: apply the commit function and install the new
/// values.
///
/// The commit program is the only user code the protocol ever runs, so this
/// is the one containment point: it executes under `catch_unwind`, and a
/// panic installs *nothing* (an identity commit — the `new == old` skip in
/// [`install_cell`] means untouched cells keep their stamps). Since commit
/// programs are pure functions of `(params, old_values)`, every participant
/// replaying this version panics identically, so no participant can install
/// a torn subset. The payload is returned for the caller to surface after
/// release.
///
/// With an active [`Journal`], the redo record is appended and flushed
/// *between* the commit computation and the first install — the write-ahead
/// invariant recovery relies on (`docs/protocol.md` §11).
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn update_general<P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    olds: &[Word],
    old_values: &mut Vec<u32>,
    new_values: &mut Vec<u32>,
    obs: &mut O,
    jrn: &mut J,
) -> Option<PanicPayload> {
    old_values.clear();
    old_values.extend(olds.iter().map(|&w| cell_value(w)));
    new_values.clear();
    new_values.extend_from_slice(old_values);
    let (op, params) = (view.op, view.params);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.table().run(op, params, old_values, new_values);
    }));
    if let Err(payload) = run {
        return Some(payload);
    }
    let journal_late =
        J::ACTIVE && stm.config.sabotage == crate::stm::Sabotage::JournalAfterInstall;
    if J::ACTIVE && !journal_late {
        journal_commit(port, owner, version, view.cells, olds, new_values, obs, jrn);
    }
    for j in 0..view.cells.len() {
        install_cell(port, j, view.cells[j], view.cell_addrs[j], olds[j], old_values[j], new_values[j], obs);
    }
    if journal_late {
        journal_commit(port, owner, version, view.cells, olds, new_values, obs, jrn);
    }
    None
}

/// Make a decided-`Success` transaction durable *before* any install: append
/// its redo record (identity of the transaction, agreed pre-images, new
/// values) and flush. Every participant that reaches the update sweep
/// journals — owner and helpers alike — so the record survives whichever of
/// them lives long enough to flush; duplicates collapse at replay.
///
/// Identity commits (every new value equals its pre-image) install nothing,
/// so there is nothing to redo; the skip is deterministic across
/// participants because commit programs are pure.
///
/// Callers gate on [`Journal::ACTIVE`], so the inactive path compiles to
/// nothing — including the three `Journal*` step announcements, keeping
/// non-durable schedules bit-identical.
#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn journal_commit<P: MemPort, O: TxObserver, J: Journal>(
    port: &mut P,
    owner: usize,
    version: u64,
    cells: &[CellIdx],
    pre: &[Word],
    new: &[u32],
    obs: &mut O,
    jrn: &mut J,
) {
    if pre.iter().zip(new).all(|(&p, &n)| cell_value(p) == n) {
        return;
    }
    port.step(StepPoint::JournalAppend);
    jrn.append(&RedoRecord { owner, version, cells, pre, new });
    port.step(StepPoint::JournalFlush);
    let info = jrn.flush(port);
    obs.journal_flush(port.proc_id(), info.records, info.bytes, info.latency, port.now());
    port.step(StepPoint::JournalDurable);
}

/// The paper's `releaseOwnerships`: free exactly the locations held by
/// `(owner, version)`.
fn release_general<P: MemPort, O: TxObserver>(
    port: &mut P,
    owner: usize,
    version: u64,
    view: ViewRef<'_>,
    obs: &mut O,
) {
    let mine = pack_owner(owner, version);
    for (j, &c) in view.cells.iter().enumerate() {
        release_cell(port, j, c, view.own_addrs[j], mine, obs);
    }
}

// ---------------------------------------------------------------------------
// Monomorphized small-k sweeps
// ---------------------------------------------------------------------------

fn agree_k<const K: usize, P: MemPort>(
    port: &mut P,
    oldval_base: Addr,
    version: u64,
    cell_addrs: &[Addr; K],
) -> bool {
    for (j, &cell_addr) in cell_addrs.iter().enumerate() {
        if !agree_cell(port, oldval_base + j, cell_addr, version) {
            return false;
        }
        port.step(StepPoint::OldValAgreed { j });
    }
    true
}

fn read_agreed_k<const K: usize, P: MemPort>(
    port: &mut P,
    oldval_base: Addr,
    version: u64,
    olds: &mut [Word; K],
) -> bool {
    for (j, old) in olds.iter_mut().enumerate() {
        match read_agreed_cell(port, oldval_base + j, version) {
            Some(w) => *old = w,
            None => return false,
        }
    }
    true
}

#[allow(clippy::too_many_arguments)] // flattened hot-loop state
fn update_k<const K: usize, P: MemPort, O: TxObserver, J: Journal>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    op: OpCode,
    params: &[Word],
    cells: &[CellIdx; K],
    cell_addrs: &[Addr; K],
    olds: &[Word; K],
    obs: &mut O,
    jrn: &mut J,
) -> Option<PanicPayload> {
    let mut old_values = [0u32; K];
    for j in 0..K {
        old_values[j] = cell_value(olds[j]);
    }
    let mut new_values = old_values;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.table().run(op, params, &old_values, &mut new_values);
    }));
    if let Err(payload) = run {
        return Some(payload);
    }
    let journal_late =
        J::ACTIVE && stm.config.sabotage == crate::stm::Sabotage::JournalAfterInstall;
    if J::ACTIVE && !journal_late {
        journal_commit(port, owner, version, cells, olds, &new_values, obs, jrn);
    }
    for j in 0..K {
        install_cell(port, j, cells[j], cell_addrs[j], olds[j], old_values[j], new_values[j], obs);
    }
    if journal_late {
        journal_commit(port, owner, version, cells, olds, &new_values, obs, jrn);
    }
    None
}

fn release_k<const K: usize, P: MemPort, O: TxObserver>(
    port: &mut P,
    cells: &[CellIdx; K],
    own_addrs: &[Addr; K],
    mine: Word,
    obs: &mut O,
) {
    for j in 0..K {
        release_cell(port, j, cells[j], own_addrs[j], mine, obs);
    }
}

// ---------------------------------------------------------------------------
// Read-only fast path & helping snapshot
// ---------------------------------------------------------------------------

/// The read-only fast path: a validated double-collect of the cells' packed
/// words, without acquiring anything — the *invisible read* the acquiring
/// protocol forgoes (see `docs/protocol.md` §8 for the full argument).
///
/// Each round: collect every cell word, check that every guarding ownership
/// is **free or dead** (held by a transaction whose status word has moved on
/// from the owning version), then re-collect and require every word
/// unchanged (value *and* stamp). A round that passes returns a consistent
/// cut of committed values, linearized at the validation point:
///
/// * a *live* owner still mid-install must hold its ownership until after
///   its last install, so the ownership check catches it;
/// * a *dead* ownership implies the owning transaction's `run_transaction`
///   completed — every install of that version is already in memory, and any
///   straggling helper's install CAS fails against the advanced pre-image;
/// * an install that raced between the two collects changes the cell's
///   stamp, so the re-collect catches it.
///
/// Performs **zero shared-memory writes**. Returns the packed cell words and
/// the number of rounds used, or `None` after `max_rounds` failed
/// validations — the caller's cue to fall back to the acquiring protocol
/// (which helps, preserving lock-freedom under writer storms).
pub(super) fn try_read_only<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    cells: &[CellIdx],
    max_rounds: u32,
) -> Option<(Vec<Word>, u64)> {
    let l = *stm.layout();
    let mut words: Vec<Word> = Vec::with_capacity(cells.len());
    for round in 1..=u64::from(max_rounds) {
        words.clear();
        for &c in cells {
            words.push(port.read(l.cell(c)));
        }
        let entries: Vec<(CellIdx, Word)> =
            cells.iter().copied().zip(words.iter().copied()).collect();
        if validate_read_set(stm, port, &entries) {
            return Some((words, round));
        }
    }
    None
}

/// Validate that `entries` — `(cell, packed word)` pairs observed earlier —
/// still form a consistent cut *now*: every guarding ownership is free or
/// dead, and every cell still holds exactly the observed word. Zero
/// shared-memory writes; this is the second collect of the double-collect
/// (the dynamic layer reuses it with the body's read log as first collect).
pub(super) fn validate_read_set<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    entries: &[(CellIdx, Word)],
) -> bool {
    let l = *stm.layout();
    for &(c, _) in entries {
        let ow = port.read(l.ownership(c));
        if ow == OWNER_FREE {
            continue;
        }
        // Invariant: every non-free ownership word is a packed pair.
        let (p2, v2) = unpack_owner(ow).expect("non-free ownership");
        if status_is_version(port.read(l.status(p2)), v2) {
            // Live owner (undecided, mid-commit, or a crashed transaction a
            // helper must finish): conservatively fail validation.
            return false;
        }
        // Dead ownership: the owning transaction completed; its installs are
        // all in memory and the word comparison below is decisive.
    }
    for &(c, w) in entries {
        if port.read(l.cell(c)) != w {
            return false;
        }
    }
    true
}

/// Snapshot the record of `(owner, version)` into `buf` for helping,
/// returning the resolved opcode. The two status validations bracket the
/// body reads; the owner publishes `Initializing` before rewriting the body
/// for a new version, so a bracketed snapshot is never torn. Allocation-free
/// once `buf` is warm.
fn snapshot_into<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    buf: &mut ViewBuf,
) -> Option<OpCode> {
    let l = *stm.layout();
    let ok = |w: Word| status_is_version(w, version) && unpack_status(w).1 != TxStatus::Initializing;

    if !ok(port.read(l.status(owner))) {
        return None;
    }
    let size = port.read(l.size(owner)) as usize;
    if size == 0 || size > l.max_locs() {
        return None;
    }
    let op_raw = port.read(l.opcode(owner));
    let nparams = (port.read(l.nparams(owner)) as usize).min(crate::layout::MAX_PARAMS);
    buf.params.clear();
    for i in 0..nparams {
        buf.params.push(port.read(l.param(owner, i)));
    }
    buf.cells.clear();
    for j in 0..size {
        buf.cells.push(port.read(l.addr_slot(owner, j)) as CellIdx);
    }
    if !ok(port.read(l.status(owner))) {
        return None;
    }
    // The snapshot is consistent; validate it came from a well-formed spec.
    let op = stm.table().resolve_raw(op_raw)?;
    if buf.cells.iter().any(|&c| c >= l.n_cells()) {
        return None;
    }
    buf.finish(&l);
    Some(op)
}
