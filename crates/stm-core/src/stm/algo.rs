//! The transaction protocol itself — the paper's `startTransaction` /
//! `transaction` / `acquireOwnerships` / `agreeOldValues` / `updateMemory` /
//! `releaseOwnerships` procedures.
//!
//! Every participant of a transaction (the initiating owner plus any helping
//! processors) runs [`run_transaction`] for the same `(owner, version)` pair;
//! all steps are idempotent under the version-tagged CAS discipline described
//! in [`crate::word`], so redundant execution is harmless — exactly the
//! paper's design.

use std::any::Any;

use crate::contention::{ConflictInfo, ContentionManager, WaitAction};
use crate::layout::MAX_PARAMS;
use crate::machine::MemPort;
use crate::observe::{NoopObserver, TxObserver};
use crate::program::OpCode;
use crate::step::StepPoint;
use crate::word::{
    cell_successor, cell_value, oldval_for_version, pack_oldval_set, pack_oldval_unset,
    pack_owner, pack_status, status_is_version, unpack_owner, unpack_status, CellIdx, TxStatus,
    Word, OWNER_FREE,
};

use super::{Stm, TxBudget, TxConflict, TxError, TxOutcome, TxSpec, TxStats};

/// A contained panic payload from a user commit program (re-raised or
/// surfaced as [`TxError::OpPanicked`] by the caller, after cleanup).
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Why one [`attempt`] did not commit.
enum AttemptError {
    /// The attempt was decided `Failure` at data-set position `at`.
    Conflict {
        at: usize,
    },
    /// The attempt was decided `Success` but the commit program panicked;
    /// nothing was installed, every ownership was released, and the machine
    /// is clean. Carries the payload for re-raising.
    Panicked(PanicPayload),
}

/// A participant's view of one transaction: the commit program and the data
/// set, in program order, plus the ascending acquisition order.
struct TxView {
    op: OpCode,
    params: Vec<Word>,
    cells: Vec<CellIdx>,
    /// Permutation of `0..cells.len()` sorting positions by ascending cell
    /// index — the paper's global acquisition order.
    order: Vec<usize>,
}

impl TxView {
    fn from_spec(spec: &TxSpec<'_>) -> Self {
        let cells = spec.cells.to_vec();
        let order = ascending_order(&cells);
        TxView { op: spec.op, params: spec.params.to_vec(), cells, order }
    }
}

fn ascending_order(cells: &[CellIdx]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by_key(|&j| cells[j]);
    order
}

/// Fault injection for tests: initialize the record and acquire ownerships
/// for `spec`, then abandon the transaction undecided (as a processor that
/// crashed mid-protocol would). The paper's liveness claim is that other
/// processors *complete* such a transaction via helping.
pub(super) fn start_and_abandon<P: MemPort>(stm: &Stm, port: &mut P, spec: &TxSpec<'_>) {
    let me = port.proc_id();
    let l = *stm.layout();
    let (prev_version, _) = unpack_status(port.read(l.status(me)));
    let version = prev_version.wrapping_add(1);
    port.write(l.status(me), pack_status(version, TxStatus::Initializing));
    port.write(l.size(me), spec.cells.len() as Word);
    port.write(l.opcode(me), spec.op.index() as Word);
    port.write(l.nparams(me), spec.params.len() as Word);
    for (i, &p) in spec.params.iter().enumerate() {
        port.write(l.param(me, i), p);
    }
    for (j, &c) in spec.cells.iter().enumerate() {
        port.write(l.addr_slot(me, j), c as Word);
        port.write(l.oldval_slot(me, j), pack_oldval_unset(version));
    }
    port.write(l.status(me), pack_status(version, TxStatus::Null));
    let view = TxView::from_spec(spec);
    acquire_ownerships(stm, port, me, version, &view, &mut NoopObserver);
    // ... and vanish: no decision handling, no release, no retry.
}

/// Run `spec` to completion (the paper's retry loop with helping).
///
/// A panicking commit program is contained while ownerships are held (see
/// [`update_memory`]) and re-raised here, after the machine is clean.
pub(super) fn execute<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    spec: &TxSpec<'_>,
    obs: &mut O,
) -> TxOutcome {
    let mut stats = TxStats::default();
    loop {
        match attempt(stm, port, spec, &mut stats, obs, stm.config.helping) {
            Ok((old, old_stamps)) => return TxOutcome { old, old_stamps, stats },
            Err(AttemptError::Conflict { .. }) => {
                let wait = stm.config.backoff.wait_cycles(port.proc_id(), stats.attempts);
                if wait > 0 {
                    port.delay(wait);
                }
            }
            Err(AttemptError::Panicked(payload)) => std::panic::resume_unwind(payload),
        }
    }
}

/// Run `spec` once.
pub(super) fn try_execute<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    spec: &TxSpec<'_>,
    obs: &mut O,
) -> Result<TxOutcome, TxConflict> {
    let mut stats = TxStats::default();
    match attempt(stm, port, spec, &mut stats, obs, stm.config.helping) {
        Ok((old, old_stamps)) => Ok(TxOutcome { old, old_stamps, stats }),
        Err(AttemptError::Conflict { at }) => Err(TxConflict { at }),
        Err(AttemptError::Panicked(payload)) => std::panic::resume_unwind(payload),
    }
}

/// Run `spec` under a [`TxBudget`], consulting a [`ContentionManager`]
/// between attempts — the hardened retry loop behind
/// [`Stm::execute_for`](crate::stm::Stm::execute_for) and
/// [`Stm::try_execute_within`](crate::stm::Stm::try_execute_within).
///
/// While the manager reports help-first mode, attempts run with helping
/// forced on regardless of [`StmConfig::helping`](crate::stm::StmConfig) —
/// the starvation escape hatch. Panicking commit programs surface as
/// [`TxError::OpPanicked`] instead of unwinding.
pub(super) fn execute_within<P: MemPort, C: ContentionManager, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    spec: &TxSpec<'_>,
    budget: TxBudget,
    cm: &mut C,
    obs: &mut O,
) -> Result<TxOutcome, TxError> {
    let mut stats = TxStats::default();
    let mut contended = std::collections::BTreeSet::new();
    let started = std::time::Instant::now();
    let cycles0 = port.now();
    loop {
        let help = stm.config.helping || cm.help_first();
        match attempt(stm, port, spec, &mut stats, obs, help) {
            Ok((old, old_stamps)) => {
                cm.on_commit();
                return Ok(TxOutcome { old, old_stamps, stats });
            }
            Err(AttemptError::Panicked(_payload)) => {
                // The attempt already released everything; drop the payload
                // and surface the typed error.
                return Err(TxError::OpPanicked { attempts: stats.attempts });
            }
            Err(AttemptError::Conflict { at }) => {
                let me = port.proc_id();
                let cell = spec.cells.get(at).copied();
                if let Some(c) = cell {
                    contended.insert(c);
                }
                if budget.is_exhausted(stats.attempts, port.now().saturating_sub(cycles0), started)
                {
                    return Err(TxError::BudgetExhausted {
                        attempts: stats.attempts,
                        cells_contended: contended.len() as u64,
                    });
                }
                // Best-effort re-inspection of the obstructing owner (it may
                // already have moved on) — the starvation detector's input.
                // Skipped (one shared read saved per conflict) for managers
                // that ignore the owner, so the default options' retry loop
                // issues exactly the classic loop's memory operations.
                let owner = if cm.wants_conflict_owner() {
                    cell.and_then(|c| {
                        unpack_owner(port.read(stm.layout().ownership(c)))
                            .map(|(p2, _)| p2)
                            .filter(|&p2| p2 != me)
                    })
                } else {
                    None
                };
                let info = ConflictInfo { proc: me, attempt: stats.attempts, cell, owner };
                let decision = cm.on_conflict(&info);
                if decision.newly_escalated {
                    obs.starvation_escalated(me, owner, stats.attempts, port.now());
                }
                match decision.wait {
                    WaitAction::None => {
                        // Preserve the instance's static back-off policy when
                        // the manager declines to wait (the default
                        // `ImmediateRetry` + `BackoffPolicy::None` combination
                        // does nothing here), so `Stm::run` with default
                        // options retries exactly like the classic loop.
                        let wait = stm.config.backoff.wait_cycles(me, stats.attempts);
                        if wait > 0 {
                            port.delay(wait);
                        }
                    }
                    WaitAction::Spin(cycles) => {
                        obs.backoff_wait(me, stats.attempts, cycles, port.now());
                        port.delay(cycles);
                    }
                    WaitAction::Yield => {
                        obs.backoff_wait(me, stats.attempts, 0, port.now());
                        port.yield_now();
                    }
                    WaitAction::Park { micros } => {
                        obs.backoff_wait(me, stats.attempts, micros, port.now());
                        port.park_micros(micros);
                    }
                }
            }
        }
    }
}

/// One attempt by the record owner: initialize the record, run the
/// transaction, and on failure help the obstructing transaction once
/// (non-redundant helping) when `help` is set. Returns the old values on
/// commit, or an [`AttemptError`].
///
/// `help` is [`StmConfig::helping`](crate::stm::StmConfig) on the classic
/// paths; the managed path forces it on in help-first mode.
fn attempt<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    spec: &TxSpec<'_>,
    stats: &mut TxStats,
    obs: &mut O,
    help_on_conflict: bool,
) -> Result<(Vec<u32>, Vec<u16>), AttemptError> {
    stats.attempts += 1;
    let me = port.proc_id();
    obs.attempt_begin(me, stats.attempts, port.now());
    let l = *stm.layout();

    // New version: successor of whatever version the record last carried.
    let (prev_version, _) = unpack_status(port.read(l.status(me)));
    let version = prev_version.wrapping_add(1);

    // (1) Fence: helpers that land mid-rewrite see `Initializing` and bail.
    port.write(l.status(me), pack_status(version, TxStatus::Initializing));
    // (2) Record body: code reference + data set + fresh agreement entries.
    port.write(l.size(me), spec.cells.len() as Word);
    port.write(l.opcode(me), spec.op.index() as Word);
    port.write(l.nparams(me), spec.params.len() as Word);
    for (i, &p) in spec.params.iter().enumerate() {
        port.write(l.param(me, i), p);
    }
    for (j, &c) in spec.cells.iter().enumerate() {
        port.write(l.addr_slot(me, j), c as Word);
        port.write(l.oldval_slot(me, j), pack_oldval_unset(version));
    }
    // (3) Publish: the transaction is now live and helpable.
    port.write(l.status(me), pack_status(version, TxStatus::Null));
    port.step(StepPoint::TxPublished);

    let view = TxView::from_spec(spec);
    let panicked = run_transaction(stm, port, me, version, &view, obs);

    // Only the owner advances its record's version, so the status read below
    // necessarily still belongs to `version`, and is decided.
    let stw = port.read(l.status(me));
    debug_assert!(status_is_version(stw, version), "own status moved without owner");
    match unpack_status(stw).1 {
        TxStatus::Success => {
            if let Some(payload) = panicked {
                // The commit program panicked in our own `update_memory` call:
                // nothing was installed and `run_transaction` already released
                // every ownership, so memory is untouched and the machine is
                // helpable. Surface the containment instead of the old values.
                obs.op_panicked(me, stats.attempts, port.now());
                return Err(AttemptError::Panicked(payload));
            }
            let mut old = Vec::with_capacity(view.cells.len());
            let mut old_stamps = Vec::with_capacity(view.cells.len());
            for j in 0..view.cells.len() {
                let entry = port.read(l.oldval_slot(me, j));
                // Invariant, not an error path: `Success` is only decided once
                // every location is owned, and release requires the agreement
                // phase to have fixed every pre-image for this version first.
                let cw = oldval_for_version(entry, version)
                    .expect("committed transaction must have agreed old values");
                old.push(cell_value(cw));
                old_stamps.push(crate::word::cell_stamp(cw));
            }
            obs.committed(me, stats.attempts, port.now());
            Ok((old, old_stamps))
        }
        TxStatus::Failure(j) => {
            stats.conflicts += 1;
            obs.conflict(me, view.cells.get(j).copied(), port.now());
            if help_on_conflict {
                if let Some(&cell) = view.cells.get(j) {
                    if let Some((p2, v2)) = unpack_owner(port.read(l.ownership(cell))) {
                        if p2 != me {
                            stats.helps += 1;
                            port.step(StepPoint::HelpBegin { owner: p2 });
                            obs.help_begin(me, p2, port.now());
                            help(stm, port, p2, v2, obs);
                            obs.help_end(me, p2, port.now());
                        }
                    }
                }
            }
            obs.aborted(me, j, port.now());
            Err(AttemptError::Conflict { at: j })
        }
        TxStatus::Null | TxStatus::Initializing => {
            unreachable!("initiator returned with undecided status")
        }
    }
}

/// Help another processor's transaction `(owner, version)` to completion —
/// the paper's non-redundant helping (helpers never recurse into further
/// helping).
///
/// If the helped commit program panics, the payload is swallowed here: the
/// helper's own transaction is unaffected, and the *owner* observes the same
/// panic from its own `run_transaction` call (commit programs are pure
/// functions of the agreed pre-images, so every participant panics alike).
fn help<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    obs: &mut O,
) {
    if let Some(view) = snapshot_view(stm, port, owner, version) {
        let _swallowed = run_transaction(stm, port, owner, version, &view, obs);
    }
}

/// The paper's `transaction` procedure, executed identically by the owner
/// and by helpers.
///
/// Returns the contained panic payload if the commit program panicked in
/// *this* participant's [`update_memory`] call (`None` otherwise). Whatever
/// happens, every path performs exactly one release sweep for the ownerships
/// this `(owner, version)` pair may hold — a panicking program can never
/// strand (or double-free) an ownership record.
fn run_transaction<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: &TxView,
    obs: &mut O,
) -> Option<PanicPayload> {
    let l = *stm.layout();
    acquire_ownerships(stm, port, owner, version, view, obs);

    let stw = port.read(l.status(owner));
    if !status_is_version(stw, version) {
        // The transaction finished while we worked; free anything we may
        // still hold for it (exact-tag CAS makes this safe).
        release_ownerships(stm, port, owner, version, view, obs);
        return None;
    }
    match unpack_status(stw).1 {
        TxStatus::Success => {
            if stm.config.sabotage == crate::stm::Sabotage::ReleaseBeforeUpdate {
                // Deliberately broken ordering for harness validation: free
                // the locations first, then install. See [`crate::stm::Sabotage`].
                // The sweep already happened — return the payload directly so
                // the unwind cleanup cannot release a second time.
                release_ownerships(stm, port, owner, version, view, obs);
                if agree_old_values(stm, port, owner, version, view) {
                    if let Some(olds) = read_agreed(stm, port, owner, version, view) {
                        return update_memory(stm, port, version, view, &olds, obs);
                    }
                }
                return None;
            }
            let mut panicked = None;
            if agree_old_values(stm, port, owner, version, view) {
                if let Some(olds) = read_agreed(stm, port, owner, version, view) {
                    panicked = update_memory(stm, port, version, view, &olds, obs);
                }
            }
            release_ownerships(stm, port, owner, version, view, obs);
            panicked
        }
        TxStatus::Failure(_) => {
            release_ownerships(stm, port, owner, version, view, obs);
            None
        }
        TxStatus::Null | TxStatus::Initializing => {
            // `acquire_ownerships` always decides the status before returning
            // while the version matches; defensively release and leave.
            debug_assert!(false, "undecided status after acquisition");
            release_ownerships(stm, port, owner, version, view, obs);
            None
        }
    }
}

/// The paper's `acquireOwnerships`: claim every data-set location in
/// ascending cell order, failing the transaction on a live conflict.
fn acquire_ownerships<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: &TxView,
    obs: &mut O,
) {
    let l = *stm.layout();
    let mine = pack_owner(owner, version);
    let status_addr = l.status(owner);
    let live = pack_status(version, TxStatus::Null);

    for &j in &view.order {
        let own_addr = l.ownership(view.cells[j]);
        loop {
            port.step(StepPoint::AcquireAttempt { j });
            // Another participant may have decided the outcome already.
            if port.read(status_addr) != live {
                return;
            }
            let cur = port.read(own_addr);
            if cur == mine {
                break; // already claimed (by us or a co-participant)
            }
            if cur == OWNER_FREE {
                match port.compare_exchange(own_addr, OWNER_FREE, mine) {
                    Ok(()) => break,
                    Err(_) => continue,
                }
            }
            // Invariant: `cur != OWNER_FREE` was checked just above, and every
            // non-free ownership word is a packed `(proc, version)` pair.
            let (p2, v2) = unpack_owner(cur).expect("non-free ownership");
            if !status_is_version(port.read(l.status(p2)), v2) {
                // The owning transaction already finished: this ownership is
                // a stale leftover (e.g. installed by a slow helper after the
                // fact). Reclaim it; all of that transaction's effects are
                // tag-guarded, so freeing early is safe.
                let _ = port.compare_exchange(own_addr, cur, OWNER_FREE);
                continue;
            }
            // Live conflict: fail this transaction at data-set position `j`.
            if port
                .compare_exchange(status_addr, live, pack_status(version, TxStatus::Failure(j)))
                .is_ok()
            {
                port.step(StepPoint::Decided { committed: false });
            }
            return;
        }
        port.step(StepPoint::Acquired { j });
        obs.cell_acquired(port.proc_id(), view.cells[j], port.now());
    }
    // Every location is held by `(owner, version)`: decide success. If the
    // CAS fails, another participant decided first — equally final.
    port.step(StepPoint::BeforeDecisionCas);
    if port.compare_exchange(status_addr, live, pack_status(version, TxStatus::Success)).is_ok() {
        port.step(StepPoint::Decided { committed: true });
    }
}

/// The paper's `agreeOldValues`: fix the pre-image of every location exactly
/// once per version via CAS from the unset entry. Returns `false` if the
/// record moved to another version mid-way.
fn agree_old_values<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: &TxView,
) -> bool {
    let l = *stm.layout();
    for j in 0..view.cells.len() {
        let slot = l.oldval_slot(owner, j);
        loop {
            let entry = port.read(slot);
            match oldval_for_version(entry, version) {
                Ok(_) => break,
                Err(false) => return false,
                Err(true) => {
                    // Entry still unset for our version: the location is
                    // still owned (release requires full agreement first), so
                    // the cell word is the frozen pre-image.
                    let cw = port.read(l.cell(view.cells[j]));
                    if port.compare_exchange(slot, entry, pack_oldval_set(version, cw)).is_ok() {
                        break;
                    }
                    // Lost the race; re-inspect the slot.
                }
            }
        }
        port.step(StepPoint::OldValAgreed { j });
    }
    true
}

/// Read back the agreed pre-images (packed cell words) in program order;
/// `None` if the record moved to another version.
fn read_agreed<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: &TxView,
) -> Option<Vec<Word>> {
    let l = *stm.layout();
    let mut olds = Vec::with_capacity(view.cells.len());
    for j in 0..view.cells.len() {
        let entry = port.read(l.oldval_slot(owner, j));
        olds.push(oldval_for_version(entry, version).ok()?);
    }
    Some(olds)
}

/// The paper's `updateMemory`: apply the commit function and install the new
/// values. Each install is a CAS from the agreed pre-image (stamp included),
/// so replays by other participants — or stale helpers — are rejected.
///
/// The commit program is the only user code the protocol ever runs, so this
/// is the one containment point: it executes under `catch_unwind`, and a
/// panic installs *nothing* (an identity commit — the `new == old` skip below
/// means untouched cells keep their stamps). Since commit programs are pure
/// functions of `(params, old_values)`, every participant replaying this
/// version panics identically, so no participant can install a torn subset.
/// The payload is returned for the caller to surface after release.
fn update_memory<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    _version: u64,
    view: &TxView,
    olds: &[Word],
    obs: &mut O,
) -> Option<PanicPayload> {
    let l = *stm.layout();
    let old_values: Vec<u32> = olds.iter().map(|&w| cell_value(w)).collect();
    let mut new_values = old_values.clone();
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.table().run(view.op, &view.params, &old_values, &mut new_values);
    }));
    if let Err(payload) = run {
        return Some(payload);
    }
    for j in 0..view.cells.len() {
        port.step(StepPoint::UpdateWrite { j });
        if new_values[j] == old_values[j] {
            continue; // logical read: leave the cell (and its stamp) untouched
        }
        obs.write_back(port.proc_id(), view.cells[j], port.now());
        let _ = port.compare_exchange(
            l.cell(view.cells[j]),
            olds[j],
            cell_successor(olds[j], new_values[j]),
        );
    }
    None
}

/// The paper's `releaseOwnerships`: free exactly the locations held by
/// `(owner, version)` — an exact-tag CAS per location.
fn release_ownerships<P: MemPort, O: TxObserver>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
    view: &TxView,
    obs: &mut O,
) {
    let l = *stm.layout();
    let mine = pack_owner(owner, version);
    for (j, &c) in view.cells.iter().enumerate() {
        port.step(StepPoint::BeforeRelease { j });
        obs.released(port.proc_id(), c, port.now());
        let _ = port.compare_exchange(l.ownership(c), mine, OWNER_FREE);
    }
}

/// The read-only fast path: a validated double-collect of the cells' packed
/// words, without acquiring anything — the *invisible read* the acquiring
/// protocol forgoes (see `docs/protocol.md` §8 for the full argument).
///
/// Each round: collect every cell word, check that every guarding ownership
/// is **free or dead** (held by a transaction whose status word has moved on
/// from the owning version), then re-collect and require every word
/// unchanged (value *and* stamp). A round that passes returns a consistent
/// cut of committed values, linearized at the validation point:
///
/// * a *live* owner still mid-install must hold its ownership until after
///   its last install, so the ownership check catches it;
/// * a *dead* ownership implies the owning transaction's `run_transaction`
///   completed — every install of that version is already in memory, and any
///   straggling helper's install CAS fails against the advanced pre-image;
/// * an install that raced between the two collects changes the cell's
///   stamp, so the re-collect catches it.
///
/// Performs **zero shared-memory writes**. Returns the packed cell words and
/// the number of rounds used, or `None` after `max_rounds` failed
/// validations — the caller's cue to fall back to the acquiring protocol
/// (which helps, preserving lock-freedom under writer storms).
pub(super) fn try_read_only<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    cells: &[CellIdx],
    max_rounds: u32,
) -> Option<(Vec<Word>, u64)> {
    let l = *stm.layout();
    let mut words: Vec<Word> = Vec::with_capacity(cells.len());
    for round in 1..=u64::from(max_rounds) {
        words.clear();
        for &c in cells {
            words.push(port.read(l.cell(c)));
        }
        let entries: Vec<(CellIdx, Word)> =
            cells.iter().copied().zip(words.iter().copied()).collect();
        if validate_read_set(stm, port, &entries) {
            return Some((words, round));
        }
    }
    None
}

/// Validate that `entries` — `(cell, packed word)` pairs observed earlier —
/// still form a consistent cut *now*: every guarding ownership is free or
/// dead, and every cell still holds exactly the observed word. Zero
/// shared-memory writes; this is the second collect of the double-collect
/// (the dynamic layer reuses it with the body's read log as first collect).
pub(super) fn validate_read_set<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    entries: &[(CellIdx, Word)],
) -> bool {
    let l = *stm.layout();
    for &(c, _) in entries {
        let ow = port.read(l.ownership(c));
        if ow == OWNER_FREE {
            continue;
        }
        // Invariant: every non-free ownership word is a packed pair.
        let (p2, v2) = unpack_owner(ow).expect("non-free ownership");
        if status_is_version(port.read(l.status(p2)), v2) {
            // Live owner (undecided, mid-commit, or a crashed transaction a
            // helper must finish): conservatively fail validation.
            return false;
        }
        // Dead ownership: the owning transaction completed; its installs are
        // all in memory and the word comparison below is decisive.
    }
    for &(c, w) in entries {
        if port.read(l.cell(c)) != w {
            return false;
        }
    }
    true
}

/// Snapshot the record of `(owner, version)` for helping. The two status
/// validations bracket the body reads; the owner publishes `Initializing`
/// before rewriting the body for a new version, so a bracketed snapshot is
/// never torn.
fn snapshot_view<P: MemPort>(
    stm: &Stm,
    port: &mut P,
    owner: usize,
    version: u64,
) -> Option<TxView> {
    let l = *stm.layout();
    let ok = |w: Word| status_is_version(w, version) && unpack_status(w).1 != TxStatus::Initializing;

    if !ok(port.read(l.status(owner))) {
        return None;
    }
    let size = port.read(l.size(owner)) as usize;
    if size == 0 || size > l.max_locs() {
        return None;
    }
    let op_raw = port.read(l.opcode(owner));
    let nparams = (port.read(l.nparams(owner)) as usize).min(MAX_PARAMS);
    let mut params = Vec::with_capacity(nparams);
    for i in 0..nparams {
        params.push(port.read(l.param(owner, i)));
    }
    let mut cells = Vec::with_capacity(size);
    for j in 0..size {
        cells.push(port.read(l.addr_slot(owner, j)) as CellIdx);
    }
    if !ok(port.read(l.status(owner))) {
        return None;
    }
    // The snapshot is consistent; validate it came from a well-formed spec.
    let op = stm.table().resolve_raw(op_raw)?;
    if cells.iter().any(|&c| c >= l.n_cells()) {
        return None;
    }
    let order = ascending_order(&cells);
    Some(TxView { op, params, cells, order })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_order_permutes_by_cell() {
        assert_eq!(ascending_order(&[9, 1, 5]), vec![1, 2, 0]);
        assert_eq!(ascending_order(&[1]), vec![0]);
        assert_eq!(ascending_order(&[2, 3, 4]), vec![0, 1, 2]);
    }
}
