//! Compiled transaction plans and reusable execution scratch.
//!
//! The paper's transactions are *static*: the data set is declared before the
//! transaction runs. That means every piece of per-transaction planning —
//! duplicate detection, the ascending acquisition order, the cell/ownership
//! address resolution, the small-k kernel choice — is a pure function of the
//! [`TxSpec`](crate::stm::TxSpec) and can be computed **once**, not once per
//! attempt. A [`TxPlan`] is exactly that precomputation, and a [`TxScratch`]
//! is the reusable buffer arena that lets the retry loop, the helping path,
//! and the dynamic layer's commit run with **zero heap allocations per
//! attempt** (see `docs/protocol.md` §9).
//!
//! Plans are immutable and machine-agnostic (they bake in the
//! [`StmLayout`](crate::layout::StmLayout), not a port), so one plan can be
//! shared across threads (`Arc<TxPlan>`) and executed on any port of the
//! same instance.

use crate::layout::{StmLayout, MAX_PARAMS};
use crate::program::OpCode;
use crate::word::{Addr, CellIdx, Word};

use super::{Stm, TxError, TxSpec};

/// The commit-sweep kernel a plan executes with.
///
/// Small data sets (the common case: counters, queue pointers, small MWCAS)
/// get fully monomorphized acquisition/agreement/update/release sweeps whose
/// loop bounds are compile-time constants — the paper's k-word
/// compare-and-swap specialization. Every kernel issues the **identical**
/// sequence of shared-memory operations and step hooks as
/// [`Kernel::General`]; the kernels differ only in local code shape
/// (stack arrays instead of scratch vectors, unrolled loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Monomorphized single-cell sweep (`k = 1`).
    K1,
    /// Monomorphized two-cell sweep (`k = 2`).
    K2,
    /// Monomorphized four-cell sweep (`k = 4`).
    K4,
    /// The general slice-driven sweep, for any `k` (also the interpreted
    /// baseline the spec-driven entry points use).
    General,
}

impl Kernel {
    /// The kernel selected for a data set of `k` cells.
    pub fn for_k(k: usize) -> Self {
        match k {
            1 => Kernel::K1,
            2 => Kernel::K2,
            4 => Kernel::K4,
            _ => Kernel::General,
        }
    }

    /// The specialized width, if this is a small-k kernel.
    pub fn k(self) -> Option<usize> {
        match self {
            Kernel::K1 => Some(1),
            Kernel::K2 => Some(2),
            Kernel::K4 => Some(4),
            Kernel::General => None,
        }
    }
}

/// A transaction spec compiled once: deduplication-checked cells, the
/// ascending acquisition order, resolved cell/ownership addresses, the
/// captured parameter words, and the selected [`Kernel`].
///
/// Build one with [`Stm::compile`]; run it with [`Stm::run_plan`] (allocates
/// only the returned [`TxOutcome`](crate::stm::TxOutcome)) or
/// [`Stm::run_plan_in`] (fully allocation-free per call once the
/// [`TxScratch`] is warm). The captured `params` are the default for
/// [`Stm::run_plan`]; the `_in` entry point takes the parameter words
/// explicitly, so one plan serves every call that shares `(op, cells)` —
/// the plan-cache key used by [`StmOps`](crate::ops::StmOps).
#[derive(Debug, Clone)]
pub struct TxPlan {
    op: OpCode,
    params: Box<[Word]>,
    /// Data set in program order (validated duplicate-free).
    cells: Box<[CellIdx]>,
    /// Permutation of `0..cells.len()` sorting positions by ascending cell
    /// index — the paper's global acquisition order.
    order: Box<[usize]>,
    /// Resolved cell addresses, in program order.
    cell_addrs: Box<[Addr]>,
    /// Resolved ownership-word addresses, in program order.
    own_addrs: Box<[Addr]>,
    kernel: Kernel,
    /// The layout this plan was resolved against; checked at run time so a
    /// plan can never be replayed on a differently laid-out instance.
    layout: StmLayout,
}

impl TxPlan {
    pub(super) fn compile(stm: &Stm, spec: &TxSpec<'_>) -> Result<TxPlan, TxError> {
        let l = *stm.layout();
        assert!(!spec.cells.is_empty(), "empty data set");
        assert!(
            spec.cells.len() <= l.max_locs(),
            "data set of {} exceeds max_locs {}",
            spec.cells.len(),
            l.max_locs()
        );
        assert!(spec.params.len() <= MAX_PARAMS, "too many parameter words");
        assert!(
            stm.table().resolve_raw(spec.op.index() as Word).is_some(),
            "opcode not registered in this instance's table"
        );
        for &c in spec.cells {
            assert!(c < l.n_cells(), "cell index {c} out of range");
        }
        let order = ascending_order(spec.cells);
        // Sorted adjacency makes duplicate detection O(k log k) instead of
        // the validator's O(k^2) scan.
        for w in order.windows(2) {
            if spec.cells[w[0]] == spec.cells[w[1]] {
                return Err(TxError::DuplicateCell { cell: spec.cells[w[1]] });
            }
        }
        let cell_addrs: Box<[Addr]> = spec.cells.iter().map(|&c| l.cell(c)).collect();
        let own_addrs: Box<[Addr]> = spec.cells.iter().map(|&c| l.ownership(c)).collect();
        Ok(TxPlan {
            op: spec.op,
            params: spec.params.into(),
            cells: spec.cells.into(),
            order: order.into_boxed_slice(),
            cell_addrs,
            own_addrs,
            kernel: Kernel::for_k(spec.cells.len()),
            layout: l,
        })
    }

    /// The commit program this plan runs.
    pub fn op(&self) -> OpCode {
        self.op
    }

    /// The parameter words captured at compile time (the default for
    /// [`Stm::run_plan`]).
    pub fn params(&self) -> &[Word] {
        &self.params
    }

    /// The data set, in program order.
    pub fn cells(&self) -> &[CellIdx] {
        &self.cells
    }

    /// The selected commit kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Whether this plan was compiled for `(op, cells)` — the plan-cache key.
    pub fn matches(&self, op: OpCode, cells: &[CellIdx]) -> bool {
        self.op == op && *self.cells == *cells
    }

    pub(super) fn layout(&self) -> &StmLayout {
        &self.layout
    }

    /// Borrow this plan as the protocol's execution view, with explicit
    /// parameter words.
    pub(crate) fn view<'a>(&'a self, params: &'a [Word]) -> ViewRef<'a> {
        ViewRef {
            op: self.op,
            params,
            cells: &self.cells,
            order: &self.order,
            cell_addrs: &self.cell_addrs,
            own_addrs: &self.own_addrs,
        }
    }
}

pub(crate) fn ascending_order(cells: &[CellIdx]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cells.len()).collect();
    // Unstable sort never allocates; for the distinct keys of a valid data
    // set it yields the same permutation as a stable sort.
    order.sort_unstable_by_key(|&j| cells[j]);
    order
}

/// A borrowed, fully resolved view of one transaction: the commit program,
/// its parameters, and the data set with its acquisition order and resolved
/// addresses. Both [`TxPlan`]s and per-call [`ViewBuf`]s lower to this; the
/// whole protocol in `algo.rs` runs off it.
#[derive(Clone, Copy)]
pub(crate) struct ViewRef<'a> {
    pub op: OpCode,
    pub params: &'a [Word],
    pub cells: &'a [CellIdx],
    pub order: &'a [usize],
    pub cell_addrs: &'a [Addr],
    pub own_addrs: &'a [Addr],
}

/// Reusable owned backing for a [`ViewRef`]: the spec-driven entry points
/// fill one per *call* (hoisting the old per-attempt `TxView` rebuild), and
/// the helping path refills one per helped transaction — `clear` + `extend`
/// only, so a warm buffer never reallocates.
#[derive(Debug, Default)]
pub(crate) struct ViewBuf {
    pub params: Vec<Word>,
    pub cells: Vec<CellIdx>,
    pub order: Vec<usize>,
    pub cell_addrs: Vec<Addr>,
    pub own_addrs: Vec<Addr>,
}

/// Grow `v` to an absolute capacity of at least `want` elements.
///
/// `Vec::reserve` reserves *beyond the current length*, so calling it on a
/// buffer still holding the previous run's results would creep the capacity
/// up run after run; this keeps re-reservation a true no-op once warm.
fn ensure_capacity<T>(v: &mut Vec<T>, want: usize) {
    if v.capacity() < want {
        v.reserve(want - v.len());
    }
}

impl ViewBuf {
    pub(crate) fn reserve_for(&mut self, layout: &StmLayout) {
        let k = layout.max_locs();
        ensure_capacity(&mut self.params, MAX_PARAMS);
        ensure_capacity(&mut self.cells, k);
        ensure_capacity(&mut self.order, k);
        ensure_capacity(&mut self.cell_addrs, k);
        ensure_capacity(&mut self.own_addrs, k);
    }

    /// Fill from an already-validated spec (cells in range, no duplicates).
    pub(crate) fn fill_from_spec(&mut self, layout: &StmLayout, spec: &TxSpec<'_>) {
        self.fill(layout, spec.params.iter().copied(), spec.cells.iter().copied());
    }

    /// Fill the view from raw parameter/cell iterators, recomputing the
    /// acquisition order and resolved addresses. Cells must be in range.
    pub(crate) fn fill(
        &mut self,
        layout: &StmLayout,
        params: impl Iterator<Item = Word>,
        cells: impl Iterator<Item = CellIdx>,
    ) {
        self.params.clear();
        self.params.extend(params);
        self.cells.clear();
        self.cells.extend(cells);
        self.finish(layout);
    }

    /// Recompute the acquisition order and resolved addresses from the
    /// already-filled `params`/`cells` (the helping snapshot fills those
    /// directly from port reads, then validates, then calls this).
    pub(crate) fn finish(&mut self, layout: &StmLayout) {
        self.order.clear();
        self.order.extend(0..self.cells.len());
        let cells = &self.cells;
        self.order.sort_unstable_by_key(|&j| cells[j]);
        self.cell_addrs.clear();
        self.cell_addrs.extend(self.cells.iter().map(|&c| layout.cell(c)));
        self.own_addrs.clear();
        self.own_addrs.extend(self.cells.iter().map(|&c| layout.ownership(c)));
    }

    pub(crate) fn view(&self, op: OpCode) -> ViewRef<'_> {
        ViewRef {
            op,
            params: &self.params,
            cells: &self.cells,
            order: &self.order,
            cell_addrs: &self.cell_addrs,
            own_addrs: &self.own_addrs,
        }
    }
}

/// Reusable protocol-phase buffers: the agreed pre-images and the commit
/// program's old/new value slices.
#[derive(Debug, Default)]
pub(crate) struct ProtoBuf {
    pub olds: Vec<Word>,
    pub old_values: Vec<u32>,
    pub new_values: Vec<u32>,
}

impl ProtoBuf {
    fn reserve_for(&mut self, layout: &StmLayout) {
        let k = layout.max_locs();
        ensure_capacity(&mut self.olds, k);
        ensure_capacity(&mut self.old_values, k);
        ensure_capacity(&mut self.new_values, k);
    }
}

/// The reusable per-thread execution arena for [`Stm::run_plan_in`].
///
/// Holds every buffer the retry loop, the commit sweeps, and the one-level
/// helping path need, so that a warm scratch executes an entire attempt —
/// including helping another processor's transaction — without touching the
/// heap. The helping path has its **own** view and phase buffers
/// (`help_*`): a helper snapshots the victim's record and replays its
/// commit while the helper's own plan view is still borrowed, so the two
/// must not share storage.
///
/// After a committed [`Stm::run_plan_in`], the data set's old values are
/// left in the scratch ([`TxScratch::old`] / [`TxScratch::old_stamps`]) —
/// returning them by value would force an allocation per call.
#[derive(Debug, Default)]
pub struct TxScratch {
    /// Phase buffers for the caller's own transaction.
    pub(crate) proto: ProtoBuf,
    /// Committed old values (program order), valid after a successful run.
    pub(crate) out_old: Vec<u32>,
    /// Committed old stamps (program order), parallel to `out_old`.
    pub(crate) out_stamps: Vec<u16>,
    /// Distinct cells this call lost an acquisition on (sorted).
    pub(crate) contended: Vec<CellIdx>,
    /// Snapshot view of a transaction being helped.
    pub(crate) help_view: ViewBuf,
    /// Phase buffers for the helping path.
    pub(crate) help_proto: ProtoBuf,
}

impl TxScratch {
    /// An empty scratch. Buffers grow on first use and are reused
    /// thereafter; call [`Stm::run_plan_in`] once to warm it, or rely on
    /// the entry point's up-front `reserve` (capacities are bounded by the
    /// instance's `max_locs`, so warm-up is one-time and small).
    pub fn new() -> Self {
        Self::default()
    }

    /// The old values (program order) of the last committed run, matching
    /// [`TxOutcome::old`](crate::stm::TxOutcome::old).
    pub fn old(&self) -> &[u32] {
        &self.out_old
    }

    /// The old stamps of the last committed run, matching
    /// [`TxOutcome::old_stamps`](crate::stm::TxOutcome::old_stamps).
    pub fn old_stamps(&self) -> &[u16] {
        &self.out_stamps
    }

    /// Reserve every buffer to the instance's bounds so the attempt loop
    /// (helping included) never allocates. Constant-time no-op when warm.
    pub(crate) fn reserve_for(&mut self, layout: &StmLayout) {
        let k = layout.max_locs();
        self.proto.reserve_for(layout);
        ensure_capacity(&mut self.out_old, k);
        ensure_capacity(&mut self.out_stamps, k);
        ensure_capacity(&mut self.contended, k);
        self.help_view.reserve_for(layout);
        self.help_proto.reserve_for(layout);
    }

    /// Record a lost acquisition on `cell` (sorted-insert dedup; the cell
    /// set is bounded by the data set, so a reserved buffer never grows).
    pub(crate) fn note_contended(&mut self, cell: CellIdx) {
        if let Err(at) = self.contended.binary_search(&cell) {
            self.contended.insert(at, cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_selection_matches_k() {
        assert_eq!(Kernel::for_k(1), Kernel::K1);
        assert_eq!(Kernel::for_k(2), Kernel::K2);
        assert_eq!(Kernel::for_k(3), Kernel::General);
        assert_eq!(Kernel::for_k(4), Kernel::K4);
        assert_eq!(Kernel::for_k(5), Kernel::General);
        assert_eq!(Kernel::K2.k(), Some(2));
        assert_eq!(Kernel::General.k(), None);
    }

    #[test]
    fn ascending_order_permutes_by_cell() {
        assert_eq!(ascending_order(&[9, 1, 5]), vec![1, 2, 0]);
        assert_eq!(ascending_order(&[1]), vec![0]);
        assert_eq!(ascending_order(&[2, 3, 4]), vec![0, 1, 2]);
    }

    #[test]
    fn view_buf_matches_plan_resolution() {
        let layout = StmLayout::new(0, 16, 2, 8);
        let mut buf = ViewBuf::default();
        buf.fill(&layout, [7u64].into_iter(), [9usize, 1, 5].into_iter());
        assert_eq!(buf.order, vec![1, 2, 0]);
        assert_eq!(buf.cell_addrs, vec![layout.cell(9), layout.cell(1), layout.cell(5)]);
        assert_eq!(buf.own_addrs, vec![layout.ownership(9), layout.ownership(1), layout.ownership(5)]);
        // Refill reuses the buffers and fully replaces the contents.
        buf.fill(&layout, [].into_iter(), [3usize].into_iter());
        assert_eq!(buf.cells, vec![3]);
        assert_eq!(buf.order, vec![0]);
    }

    #[test]
    fn contended_set_is_sorted_and_deduped() {
        let mut s = TxScratch::new();
        for c in [5usize, 1, 5, 3, 1] {
            s.note_contended(c);
        }
        assert_eq!(s.contended, vec![1, 3, 5]);
    }
}
