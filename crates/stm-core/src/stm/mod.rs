//! The Shavit–Touitou software transactional memory.
//!
//! [`Stm`] implements the paper's non-blocking static-transaction protocol:
//! a transaction declares its data set up front, acquires per-location
//! ownership in ascending address order, agrees on the old values, applies a
//! pure commit function, and releases. On conflict it fails itself and
//! *helps* the transaction that owns the contended location (one level of
//! non-redundant helping), which is what makes the construction lock-free.
//!
//! The API is machine-agnostic: the same [`Stm`] instance drives transactions
//! on the host machine and on the `stm-sim` simulated multiprocessor.
//!
//! # Examples
//!
//! ```
//! use stm_core::machine::host::HostMachine;
//! use stm_core::program::{register_builtins, ProgramTable};
//! use stm_core::stm::{Stm, StmConfig, TxOptions, TxSpec};
//!
//! let mut builder = ProgramTable::builder();
//! let ops = register_builtins(&mut builder);
//! let table = builder.build();
//!
//! let stm = Stm::new(0, 8, 1, 4, table, StmConfig::default());
//! let machine = HostMachine::new(stm.layout().words_needed(), 1);
//! let mut port = machine.port(0);
//!
//! // Atomically add 5 to cell 2 and 7 to cell 3. Default options: the
//! // classic unobserved, unbudgeted lock-free retry loop.
//! let outcome =
//!     stm.run(&mut port, &TxSpec::new(ops.add, &[5, 7], &[2, 3]), &mut TxOptions::new()).unwrap();
//! assert_eq!(outcome.old, vec![0, 0]);
//! assert_eq!(stm.read_cell(&mut port, 2), 5);
//! assert_eq!(stm.read_cell(&mut port, 3), 7);
//! ```

mod algo;
mod options;
mod plan;

pub use options::TxOptions;
pub use plan::{Kernel, TxPlan, TxScratch};

use std::fmt;
use std::sync::Arc;

use crate::layout::{StmLayout, MAX_PARAMS};
use crate::machine::MemPort;
use crate::program::{OpCode, ProgramTable};
use crate::word::{cell_value, Addr, CellIdx, Word};

/// Back-off policy applied between retries of a failed transaction.
///
/// The paper's STM relies on helping rather than back-off, so the default is
/// [`BackoffPolicy::None`]; exponential back-off is provided for ablations
/// and for the Herlihy baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffPolicy {
    /// Retry immediately (the paper's configuration).
    None,
    /// Exponential back-off: retry `k` (1-based) waits from a window of
    /// `base << min(k - 1, 16)` cycles, capped at `max` — so the *first*
    /// retry draws from `1..=base`, the initial back-off (randomization is
    /// deterministic per processor/attempt).
    Exponential {
        /// Initial back-off in cycles.
        base: u64,
        /// Cap in cycles.
        max: u64,
    },
}

impl BackoffPolicy {
    /// Cycles to wait before retry number `attempt` (1-based) on `proc`.
    pub fn wait_cycles(&self, proc: usize, attempt: u64) -> u64 {
        match *self {
            BackoffPolicy::None => 0,
            BackoffPolicy::Exponential { base, max } => {
                // 1-based attempts: the first retry keeps the initial window
                // (shift 0), doubling from there.
                let shift = attempt.saturating_sub(1).min(16) as u32;
                let window = (base.saturating_mul(1 << shift)).min(max).max(1);
                // Cheap deterministic jitter: hash proc and attempt.
                let h = (proc as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
                (h % window) + 1
            }
        }
    }
}

/// Deliberately broken protocol variants, used only to validate that the
/// fault-injection harness in `stm-sim` actually catches protocol bugs (a
/// checker that never fires is indistinguishable from a vacuous one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// The correct protocol (the only setting for real use).
    #[default]
    None,
    /// Release ownerships *before* installing the new values on commit.
    /// This breaks atomicity: between release and update another transaction
    /// can acquire the cells and read pre-commit values, or a crash between
    /// the two phases strands a committed-but-never-applied transaction that
    /// no helper can finish (helpers need the ownerships to be obliged to
    /// run the update).
    ReleaseBeforeUpdate,
    /// Journal the redo record *after* installing the new values instead of
    /// before. This breaks the write-ahead invariant durability relies on: a
    /// crash between the installs and the flush leaves a committed
    /// transaction visible in live memory but absent from the journal, so
    /// recovery rebuilds a heap that silently lost it. Exists to prove the
    /// recovery-equivalence checker in the sim has teeth. No effect without
    /// an active [`Journal`](crate::durable::Journal).
    JournalAfterInstall,
    /// Report every forced-mode acquisition as cell 0 instead of the real
    /// cell index, so any forced sweep that newly claims two or more
    /// locations announces a non-increasing
    /// [`StepPoint::ForcedAcquired`](crate::step::StepPoint) sequence. This
    /// breaks nothing in the protocol itself — it exists to prove the
    /// ascending-order checker in `stm-sim` has teeth. No effect unless a
    /// transaction actually runs at
    /// [`PriorityLevel::Forced`](crate::contention::PriorityLevel).
    ForcedOutOfOrder,
}

/// Configuration of the STM protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// Enable non-redundant helping (the paper's mechanism; disabling it is
    /// the A1 ablation and forfeits the lock-freedom guarantee).
    pub helping: bool,
    /// Back-off between retries (default: none, as in the paper).
    pub backoff: BackoffPolicy,
    /// Deliberate protocol bug for harness validation (default: none).
    pub sabotage: Sabotage,
    /// Cache-line padding shift for the memory layout (see
    /// [`StmLayout::with_pad_shift`]). The default `0` is the dense,
    /// address-faithful layout the paper (and the `stm-sim` cost models)
    /// assume; `3` gives every cell, ownership word, and record its own
    /// 64-byte line on the host.
    pub pad_shift: u8,
    /// Rounds of the validated double-collect read-only fast path
    /// ([`Stm::try_read_only`]) before callers fall back to the acquiring
    /// protocol. `0` disables the fast path entirely.
    pub fast_read_rounds: u32,
    /// Delta-revalidation threshold for the dynamic layer
    /// ([`DynamicStm::run`](crate::dynamic::DynamicStm::run)): when a
    /// dynamic transaction's commit-time validation fails but at most this
    /// many read cells changed, the body is re-run against the validated
    /// snapshot the failed commit linearized, skipping the full
    /// re-read-from-memory retry. `0` (the default) disables the path
    /// entirely and keeps retry schedules bit-identical to the classic loop.
    pub delta_retry_cells: usize,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            helping: true,
            backoff: BackoffPolicy::None,
            sabotage: Sabotage::None,
            pad_shift: 0,
            fast_read_rounds: 8,
            delta_retry_cells: 0,
        }
    }
}

impl StmConfig {
    /// The host-machine preset: the default protocol on a cache-aligned
    /// layout (`pad_shift = 3`, one 64-byte line per protocol word), killing
    /// false sharing between processors under contention. Simulated runs
    /// should keep [`StmConfig::default`]'s dense layout, which the bus/mesh
    /// cost models are calibrated against.
    pub fn host_tuned() -> Self {
        StmConfig { pad_shift: 3, ..Self::default() }
    }
}

/// A static transaction request: which program to run over which cells.
///
/// `cells` lists the data set in *program order* (the order `old`/`new`
/// slices are presented to the [`TxProgram`](crate::program::TxProgram)); the
/// protocol acquires ownership in ascending cell order internally, as the
/// paper requires. Cells must be distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxSpec<'a> {
    /// The registered commit program.
    pub op: OpCode,
    /// Parameter words passed to the program (at most
    /// [`MAX_PARAMS`]).
    pub params: &'a [Word],
    /// The data set: distinct cell indices, in program order.
    pub cells: &'a [CellIdx],
}

impl<'a> TxSpec<'a> {
    /// Convenience constructor.
    pub fn new(op: OpCode, params: &'a [Word], cells: &'a [CellIdx]) -> Self {
        TxSpec { op, params, cells }
    }
}

/// Statistics of one transaction call ([`Stm::run`] /
/// [`DynamicStm::run`](crate::dynamic::DynamicStm::run)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Number of attempts (1 = committed first try).
    pub attempts: u64,
    /// Number of times this call helped another processor's transaction.
    pub helps: u64,
    /// Number of ownership conflicts encountered across all attempts.
    pub conflicts: u64,
    /// Number of times a blocking call
    /// ([`DynamicStm::run_blocking`](crate::dynamic::DynamicStm::run_blocking))
    /// parked on its read set and was woken. Always 0 for non-blocking
    /// entry points.
    pub wakeups: u64,
}

impl TxStats {
    /// Accumulate another call's statistics into this one.
    pub fn merge(&mut self, other: &TxStats) {
        self.attempts += other.attempts;
        self.helps += other.helps;
        self.conflicts += other.conflicts;
        self.wakeups += other.wakeups;
    }
}

/// The result of a committed transaction: the data set's old values (in
/// program order) plus retry statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a committed transaction's old values are its return value"]
pub struct TxOutcome {
    /// Pre-commit value of each cell in the data set, in the order given in
    /// [`TxSpec::cells`]. A static transaction is a k-word
    /// read-modify-write, so the old values are its return value.
    pub old: Vec<u32>,
    /// Pre-commit update stamp of each cell (same order as `old`). The
    /// stamp identifies the exact version of the cell this transaction read
    /// — the hook the serializability checker
    /// ([`crate::history`]) is built on.
    pub old_stamps: Vec<u16>,
    /// Retry/help statistics for this call.
    pub stats: TxStats,
}

/// Typed failure of a budgeted execution ([`Stm::run`] /
/// [`DynamicStm::run`](crate::dynamic::DynamicStm::run) /
/// [`DynamicStm::run_blocking`](crate::dynamic::DynamicStm::run_blocking)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a budgeted transaction's failure must be handled, not dropped"]
pub enum TxError {
    /// The transaction did not commit within its [`TxBudget`]. The machine is
    /// left clean: no ownerships held, no values installed by this call's
    /// undecided attempts.
    BudgetExhausted {
        /// Attempts made before giving up.
        attempts: u64,
        /// Distinct cells this call lost an acquisition on.
        cells_contended: u64,
        /// Local-clock cycles spent across all failed attempts (per
        /// [`MemPort::now`]; 0 on ports
        /// without a local clock, e.g. the host) — the starvation
        /// post-mortem's cost figure.
        cycles_lost: u64,
    },
    /// The transaction's commit program panicked. The panic was contained:
    /// the attempt was decided, **no values were installed** (an identity
    /// commit), and every acquired ownership was released — the machine
    /// stays helpable, never poisoned.
    OpPanicked {
        /// Attempts made, including the one whose program panicked.
        attempts: u64,
    },
    /// The spec's data set lists the same cell twice ([`Stm::compile`]).
    /// Duplicates would double-acquire the cell's ownership under the
    /// ascending sweep: the second acquisition sees the first's claim as
    /// "already mine" and proceeds, but release then frees the cell once
    /// while a helper may still be replaying the other position — so the
    /// compiler rejects the spec instead of running it. (The spec-validating
    /// entry points keep their historical panic for the same condition.)
    DuplicateCell {
        /// The repeated cell index.
        cell: CellIdx,
    },
    /// A blocking transaction
    /// ([`DynamicStm::run_blocking`](crate::dynamic::DynamicStm::run_blocking))
    /// gave up while waiting: either its wakeup budget
    /// ([`TxBudget::max_wakeups`]) ran out, or the body retried with an
    /// empty read set (nothing watched can ever change, so waiting would
    /// sleep forever). The machine is left clean either way.
    Retry {
        /// Wakeups consumed before giving up.
        wakeups: u64,
    },
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::BudgetExhausted { attempts, cells_contended, cycles_lost } => write!(
                f,
                "transaction budget exhausted after {attempts} attempts \
                 ({cells_contended} distinct cells contended, {cycles_lost} cycles lost)"
            ),
            TxError::OpPanicked { attempts } => write!(
                f,
                "transaction program panicked on attempt {attempts} \
                 (aborted cleanly; all ownerships released)"
            ),
            TxError::DuplicateCell { cell } => {
                write!(f, "duplicate cell {cell} in data set")
            }
            TxError::Retry { wakeups } => write!(
                f,
                "blocking transaction gave up after {wakeups} wakeups \
                 (wakeup budget exhausted or empty read set)"
            ),
        }
    }
}

impl std::error::Error for TxError {}

/// A retry budget for budgeted entry points ([`Stm::run`] /
/// [`DynamicStm::run`](crate::dynamic::DynamicStm::run)).
///
/// Any combination of limits may be set; the first one hit ends the call
/// with [`TxError::BudgetExhausted`]. Limits are checked *between* attempts,
/// so at least one attempt always runs and a started attempt is never
/// abandoned mid-protocol (the machine is left clean).
///
/// * `max_attempts` — protocol attempts (deterministic on any machine);
/// * `max_cycles` — local-clock cycles per
///   [`MemPort::now`] (meaningful on the
///   simulator; the host clock reports 0, so this limit is inert there);
/// * `max_wall` — wall-clock time (meaningful on the host);
/// * `max_wakeups` — park/wake rounds of a blocking call
///   ([`DynamicStm::run_blocking`](crate::dynamic::DynamicStm::run_blocking));
///   hitting it ends the call with [`TxError::Retry`] instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxBudget {
    /// Maximum attempts (`None` = unlimited).
    pub max_attempts: Option<u64>,
    /// Maximum elapsed local-clock cycles (`None` = unlimited).
    pub max_cycles: Option<u64>,
    /// Maximum elapsed wall-clock time (`None` = unlimited).
    pub max_wall: Option<std::time::Duration>,
    /// Maximum blocking wakeups (`None` = wait as long as it takes).
    /// Ignored by non-blocking entry points.
    pub max_wakeups: Option<u64>,
}

impl TxBudget {
    /// No limits: retry forever (the [`Stm::run`] default behaviour).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit to `n` attempts.
    pub fn attempts(n: u64) -> Self {
        TxBudget { max_attempts: Some(n), ..Self::default() }
    }

    /// Limit to `n` elapsed local-clock cycles.
    pub fn cycles(n: u64) -> Self {
        TxBudget { max_cycles: Some(n), ..Self::default() }
    }

    /// Limit to `d` of wall-clock time.
    pub fn wall(d: std::time::Duration) -> Self {
        TxBudget { max_wall: Some(d), ..Self::default() }
    }

    /// Limit a blocking call to `n` park/wake rounds.
    pub fn wakeups(n: u64) -> Self {
        TxBudget { max_wakeups: Some(n), ..Self::default() }
    }

    /// Whether any limit has been hit after `attempts` attempts,
    /// `cycles_elapsed` local cycles, and wall time since `started`.
    pub(crate) fn is_exhausted(
        &self,
        attempts: u64,
        cycles_elapsed: u64,
        started: std::time::Instant,
    ) -> bool {
        self.max_attempts.is_some_and(|m| attempts >= m)
            || self.max_cycles.is_some_and(|m| cycles_elapsed >= m)
            || self.max_wall.is_some_and(|m| started.elapsed() >= m)
    }
}

/// A Shavit–Touitou software transactional memory instance.
///
/// The instance itself is immutable configuration (layout + program table);
/// all shared state lives in the machine's memory, so an `Stm` can be shared
/// freely across threads (clone it or wrap it in `Arc`).
#[derive(Clone)]
pub struct Stm {
    layout: StmLayout,
    table: Arc<ProgramTable>,
    config: StmConfig,
    /// Shared escalation board consulted by helpers and forced sweeps.
    /// `None` (the default) compiles every priority check away.
    priority: Option<Arc<crate::contention::PriorityBoard>>,
}

impl fmt::Debug for Stm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("layout", &self.layout)
            .field("programs", &self.table.len())
            .field("config", &self.config)
            .field("priority_board", &self.priority.is_some())
            .finish()
    }
}

impl Stm {
    /// Create an STM instance occupying machine addresses
    /// `base .. base + layout.words_needed()` with `n_cells` transactional
    /// cells, `n_procs` processors, and data sets of at most `max_locs`
    /// locations.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `n_procs`/`max_locs` (see
    /// [`StmLayout::new`]).
    pub fn new(
        base: Addr,
        n_cells: usize,
        n_procs: usize,
        max_locs: usize,
        table: Arc<ProgramTable>,
        config: StmConfig,
    ) -> Self {
        Stm {
            layout: StmLayout::with_pad_shift(base, n_cells, n_procs, max_locs, config.pad_shift),
            table,
            config,
            priority: None,
        }
    }

    /// Create an STM instance over a pre-built layout — the entry point for
    /// the sharded arena geometry ([`StmLayout::arena`]), whose cells are
    /// handed out by a [`CellArena`](crate::arena::CellArena) sharing the
    /// same layout. The protocol itself is geometry-agnostic: it only ever
    /// asks the layout for addresses.
    ///
    /// `config.pad_shift` is overwritten with the layout's own shift so the
    /// two can never disagree.
    pub fn with_layout(layout: StmLayout, table: Arc<ProgramTable>, mut config: StmConfig) -> Self {
        config.pad_shift = layout.pad_shift();
        Stm { layout, table, config, priority: None }
    }

    /// Attach a shared [`PriorityBoard`](crate::contention::PriorityBoard),
    /// activating the fairness ladder in the protocol: helpers defer to
    /// records whose owner's published level exceeds their own, and managers
    /// holding the forced slot run the never-self-fail sweep. Pair the same
    /// board with each proc's
    /// [`AdaptiveManager::with_board`](crate::contention::AdaptiveManager::with_board).
    /// Without a board every priority check compiles to the classic path.
    #[must_use]
    pub fn with_priority_board(mut self, board: Arc<crate::contention::PriorityBoard>) -> Self {
        self.priority = Some(board);
        self
    }

    /// The attached escalation board, if any.
    pub fn priority_board(&self) -> Option<&Arc<crate::contention::PriorityBoard>> {
        self.priority.as_ref()
    }

    /// The memory layout of this instance.
    pub fn layout(&self) -> &StmLayout {
        &self.layout
    }

    /// The shared program table.
    pub fn table(&self) -> &Arc<ProgramTable> {
        &self.table
    }

    /// The protocol configuration.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Execute `spec` under `opts` — the unified transaction entry point.
    ///
    /// This is the paper's `startTransaction` loop, parameterized by one
    /// [`TxOptions`] value instead of one method per knob combination:
    /// [`TxOptions::new`] gives the classic unobserved, unbudgeted lock-free
    /// retry (the old `execute`), a [`TxBudget`] bounds the retries, and the
    /// observer/manager knobs replace the `*_observed` / `*_within`
    /// variants. On commit, returns the data set's old values in program
    /// order.
    ///
    /// While the manager reports
    /// [`help_first`](crate::contention::ContentionManager::help_first),
    /// retries run with helping forced on even if this instance was
    /// configured with `helping: false` — the starvation escape hatch. When
    /// the manager declines to wait, the instance's static
    /// [`BackoffPolicy`] still applies.
    ///
    /// # Errors
    ///
    /// [`TxError::BudgetExhausted`] when the budget ran out before a commit
    /// (never with the default unlimited budget);
    /// [`TxError::OpPanicked`] when the commit program panicked — contained:
    /// nothing installed, every ownership released.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed: too many cells or parameters, an
    /// out-of-range cell index, duplicate cells, or an opcode foreign to this
    /// instance's table.
    pub fn run<P, O, C, J>(
        &self,
        port: &mut P,
        spec: &TxSpec<'_>,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<TxOutcome, TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: crate::contention::ContentionManager,
        J: crate::durable::Journal,
    {
        self.validate_spec(port, spec);
        self.run_spec_inner(
            port,
            spec,
            opts.budget,
            &mut opts.manager,
            &mut opts.observer,
            &mut opts.journal,
        )
    }

    /// Run an already-validated spec: build the per-call view once (the view
    /// is attempt-invariant — retries reuse it) and drive the general
    /// kernel's retry loop out of a call-local scratch.
    fn run_spec_inner<P, C, O, J>(
        &self,
        port: &mut P,
        spec: &TxSpec<'_>,
        budget: TxBudget,
        cm: &mut C,
        obs: &mut O,
        jrn: &mut J,
    ) -> Result<TxOutcome, TxError>
    where
        P: MemPort,
        C: crate::contention::ContentionManager,
        O: crate::observe::TxObserver,
        J: crate::durable::Journal,
    {
        let mut vb = plan::ViewBuf::default();
        vb.fill_from_spec(&self.layout, spec);
        let mut scratch = TxScratch::new();
        scratch.reserve_for(&self.layout);
        let stats = algo::execute_loop(
            self,
            port,
            vb.view(spec.op),
            Kernel::General,
            budget,
            cm,
            obs,
            jrn,
            &mut scratch,
        )?;
        Ok(TxOutcome {
            old: std::mem::take(&mut scratch.out_old),
            old_stamps: std::mem::take(&mut scratch.out_stamps),
            stats,
        })
    }

    /// Compile `spec` into a reusable [`TxPlan`]: duplicate-checked cells,
    /// the ascending acquisition order, resolved cell/ownership addresses,
    /// and the commit [`Kernel`] (a monomorphized small-k sweep for data
    /// sets of 1, 2, or 4 cells) — everything the protocol would otherwise
    /// recompute per call, done once.
    ///
    /// Plans are immutable and port-agnostic: share one across threads with
    /// `Arc` and run it on any port of this instance via [`Stm::run_plan`] /
    /// [`Stm::run_plan_in`]. [`StmOps`](crate::ops::StmOps) keeps a bounded
    /// cache of them keyed by `(op, cells)`.
    ///
    /// # Errors
    ///
    /// [`TxError::DuplicateCell`] when the data set lists a cell twice (the
    /// condition the spec-validating entry points panic on).
    ///
    /// # Panics
    ///
    /// Panics on the other malformed-spec conditions, matching
    /// [`Stm::run`]: empty or oversized data set, too many parameters, an
    /// out-of-range cell index, or a foreign opcode.
    pub fn compile(&self, spec: &TxSpec<'_>) -> Result<TxPlan, TxError> {
        TxPlan::compile(self, spec)
    }

    /// Execute a compiled plan with its captured parameters, allocating only
    /// the returned [`TxOutcome`]. Convenience wrapper over
    /// [`Stm::run_plan_in`] for callers that do not hold a
    /// [`TxScratch`].
    ///
    /// # Errors
    ///
    /// Same as [`Stm::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Stm::run_plan_in`].
    pub fn run_plan<P, O, C, J>(
        &self,
        port: &mut P,
        plan: &TxPlan,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<TxOutcome, TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: crate::contention::ContentionManager,
        J: crate::durable::Journal,
    {
        let mut scratch = TxScratch::new();
        let stats = self.run_plan_in(port, plan, plan.params(), opts, &mut scratch)?;
        Ok(TxOutcome {
            old: std::mem::take(&mut scratch.out_old),
            old_stamps: std::mem::take(&mut scratch.out_stamps),
            stats,
        })
    }

    /// Execute a compiled plan out of a caller-owned [`TxScratch`] — the
    /// allocation-free hot path. With a warm scratch, the entire call (the
    /// retry loop, the commit sweeps, and any helping of other processors'
    /// transactions) performs **zero heap allocations**; on commit the data
    /// set's old values are left in the scratch ([`TxScratch::old`] /
    /// [`TxScratch::old_stamps`]).
    ///
    /// `params` are the parameter words for this call (pass
    /// [`TxPlan::params`] to use the ones captured at compile time): one
    /// plan serves every call sharing `(op, cells)`.
    ///
    /// # Errors
    ///
    /// Same as [`Stm::run`].
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled against a different layout than this
    /// instance's, if `params` exceeds [`MAX_PARAMS`], or if the port's
    /// processor id is out of range.
    pub fn run_plan_in<P, O, C, J>(
        &self,
        port: &mut P,
        plan: &TxPlan,
        params: &[Word],
        opts: &mut TxOptions<O, C, J>,
        scratch: &mut TxScratch,
    ) -> Result<TxStats, TxError>
    where
        P: MemPort,
        O: crate::observe::TxObserver,
        C: crate::contention::ContentionManager,
        J: crate::durable::Journal,
    {
        assert!(
            *plan.layout() == self.layout,
            "plan compiled against a different STM layout"
        );
        assert!(params.len() <= MAX_PARAMS, "too many parameter words");
        assert!(port.proc_id() < self.layout.n_procs(), "port processor id out of range for this STM");
        scratch.reserve_for(&self.layout);
        algo::execute_loop(
            self,
            port,
            plan.view(params),
            plan.kernel(),
            opts.budget,
            &mut opts.manager,
            &mut opts.observer,
            &mut opts.journal,
            scratch,
        )
    }

    /// The read-only fast path: snapshot `cells` via a validated
    /// double-collect — collect the version-tagged cell words, check that no
    /// guarding ownership is held by a live transaction, re-collect to
    /// confirm nothing moved — performing **zero shared-memory writes**.
    ///
    /// A passing round returns a consistent cut of committed values (`old`,
    /// with matching `old_stamps`), linearized at the validation point;
    /// `stats.attempts` reports the rounds used. After
    /// [`StmConfig::fast_read_rounds`] failed validations the call returns
    /// `None`: the caller must fall back to the acquiring protocol (e.g. an
    /// identity transaction via [`Stm::run`]), whose helping preserves
    /// lock-freedom under writer storms. [`StmOps::snapshot`](crate::ops::StmOps::snapshot)
    /// packages exactly that fallback.
    ///
    /// Unlike the acquiring path, the data set is *not* bounded by the
    /// layout's `max_locs` (no transaction record is involved) and duplicate
    /// cells are harmless — but callers intending to fall back must respect
    /// the static-spec rules.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty or contains an out-of-range index.
    #[must_use = "a failed validation means the snapshot must be retried via the acquiring path"]
    pub fn try_read_only<P: MemPort>(&self, port: &mut P, cells: &[CellIdx]) -> Option<TxOutcome> {
        assert!(!cells.is_empty(), "empty data set");
        for &c in cells {
            assert!(c < self.layout.n_cells(), "cell index {c} out of range");
        }
        let (words, rounds) = algo::try_read_only(self, port, cells, self.config.fast_read_rounds)?;
        Some(TxOutcome {
            old: words.iter().map(|&w| cell_value(w)).collect(),
            old_stamps: words.iter().map(|&w| crate::word::cell_stamp(w)).collect(),
            stats: TxStats { attempts: rounds, helps: 0, conflicts: rounds - 1, wakeups: 0 },
        })
    }

    /// Validate that `entries` — `(cell, packed word)` pairs observed
    /// earlier (e.g. by [`Stm::read_cell_word`]) — still form a consistent
    /// cut: every guarding ownership is free or dead and every cell still
    /// holds exactly the observed word. Zero shared-memory writes. This is
    /// the second collect of the double-collect; the dynamic layer commits
    /// read-only transactions with it.
    #[must_use = "an invalid read set must be retried or committed via the acquiring path"]
    pub fn validate_read_set<P: MemPort>(
        &self,
        port: &mut P,
        entries: &[(CellIdx, Word)],
    ) -> bool {
        algo::validate_read_set(self, port, entries)
    }

    /// Read one cell's current committed value directly (no transaction).
    ///
    /// Cell payloads only ever change via committed transactions (single CAS
    /// per cell), so this always observes *some* committed value of that
    /// cell — but reads of several cells are not mutually atomic; use an
    /// identity transaction (e.g. the `read` builtin) for an atomic snapshot.
    pub fn read_cell<P: MemPort>(&self, port: &mut P, idx: CellIdx) -> u32 {
        cell_value(port.read(self.layout.cell(idx)))
    }

    /// Read one cell's current packed word (`stamp | value`) directly — the
    /// raw form of [`Stm::read_cell`], for callers that want to validate the
    /// observation later via [`Stm::validate_read_set`].
    pub fn read_cell_word<P: MemPort>(&self, port: &mut P, idx: CellIdx) -> Word {
        port.read(self.layout.cell(idx))
    }

    /// Initialize a cell before concurrent activity starts (bumps the cell's
    /// stamp like a committed write, so it is safe even against a concurrent
    /// reader, but it bypasses ownership and must not race with transactions
    /// on the same cell).
    pub fn init_cell<P: MemPort>(&self, port: &mut P, idx: CellIdx, value: u32) {
        let addr = self.layout.cell(idx);
        loop {
            let cur = port.read(addr);
            let next = crate::word::cell_successor(cur, value);
            if port.compare_exchange(addr, cur, next).is_ok() {
                return;
            }
        }
    }

    /// Fault injection for liveness tests: start `spec` — record
    /// initialization plus ownership acquisition — and then abandon it, as a
    /// processor that crashed mid-protocol would. The transaction is left
    /// undecided with its locations claimed; the paper's helping mechanism
    /// obliges any conflicting processor to *complete* it (the transaction
    /// commits even though its initiator died).
    ///
    /// The crashed processor's record must not be reused afterwards (do not
    /// call [`Stm::run`] on the same `proc_id` again in the test).
    ///
    /// # Panics
    ///
    /// Same spec validation as [`Stm::run`].
    pub fn inject_crash_after_acquire<P: MemPort>(&self, port: &mut P, spec: &TxSpec<'_>) {
        self.validate_spec(port, spec);
        algo::start_and_abandon(self, port, spec);
    }

    pub(crate) fn validate_spec<P: MemPort>(&self, port: &mut P, spec: &TxSpec<'_>) {
        assert!(!spec.cells.is_empty(), "empty data set");
        assert!(
            spec.cells.len() <= self.layout.max_locs(),
            "data set of {} exceeds max_locs {}",
            spec.cells.len(),
            self.layout.max_locs()
        );
        assert!(spec.params.len() <= MAX_PARAMS, "too many parameter words");
        assert!(port.proc_id() < self.layout.n_procs(), "port processor id out of range for this STM");
        assert!(
            self.table.resolve_raw(spec.op.index() as Word).is_some(),
            "opcode not registered in this instance's table"
        );
        for (i, &c) in spec.cells.iter().enumerate() {
            assert!(c < self.layout.n_cells(), "cell index {c} out of range");
            for &d in &spec.cells[..i] {
                assert!(c != d, "duplicate cell {c} in data set");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;
    use crate::program::register_builtins;

    fn setup(n_cells: usize, n_procs: usize) -> (Stm, HostMachine, crate::program::Builtins) {
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let table = b.build();
        let stm = Stm::new(0, n_cells, n_procs, 8, table, StmConfig::default());
        let machine = HostMachine::new(stm.layout().words_needed(), n_procs);
        (stm, machine, ops)
    }

    #[test]
    fn single_threaded_add_and_read() {
        let (stm, m, ops) = setup(16, 1);
        let mut port = m.port(0);
        let out = stm.run(&mut port, &TxSpec::new(ops.add, &[3], &[5]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![0]);
        assert_eq!(out.stats.attempts, 1);
        let out = stm.run(&mut port, &TxSpec::new(ops.add, &[4], &[5]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![3]);
        assert_eq!(stm.read_cell(&mut port, 5), 7);
    }

    #[test]
    fn multi_cell_swap_returns_old_values_in_program_order() {
        let (stm, m, ops) = setup(16, 1);
        let mut port = m.port(0);
        stm.init_cell(&mut port, 1, 100);
        stm.init_cell(&mut port, 9, 900);
        // program order deliberately not ascending
        let out = stm.run(&mut port, &TxSpec::new(ops.swap, &[11, 99], &[9, 1]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![900, 100]);
        assert_eq!(stm.read_cell(&mut port, 9), 11);
        assert_eq!(stm.read_cell(&mut port, 1), 99);
    }

    #[test]
    fn identity_read_is_atomic_snapshot() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        stm.init_cell(&mut port, 0, 1);
        stm.init_cell(&mut port, 1, 2);
        let out = stm.run(&mut port, &TxSpec::new(ops.read, &[], &[0, 1]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![1, 2]);
        assert_eq!(stm.read_cell(&mut port, 0), 1);
    }

    #[test]
    fn mwcas_success_and_failure() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        stm.init_cell(&mut port, 0, 1);
        stm.init_cell(&mut port, 1, 2);
        let pack = |exp: u32, new: u32| ((exp as u64) << 32) | new as u64;
        let out = stm.run(&mut port, &TxSpec::new(ops.mwcas, &[pack(1, 10), pack(2, 20)], &[0, 1]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![1, 2]); // matched
        assert_eq!(stm.read_cell(&mut port, 0), 10);
        let out = stm.run(&mut port, &TxSpec::new(ops.mwcas, &[pack(1, 5), pack(20, 7)], &[0, 1]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![10, 20]); // old[0] != 1 -> no write
        assert_eq!(stm.read_cell(&mut port, 0), 10);
        assert_eq!(stm.read_cell(&mut port, 1), 20);
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_cells_panic() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        let _ = stm.run(&mut port, &TxSpec::new(ops.add, &[], &[1, 1]), &mut TxOptions::new()).unwrap();
    }

    #[test]
    #[should_panic(expected = "empty data set")]
    fn empty_dataset_panics() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        let _ = stm.run(&mut port, &TxSpec::new(ops.add, &[], &[]), &mut TxOptions::new()).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range_panics() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        let _ = stm.run(&mut port, &TxSpec::new(ops.add, &[], &[4]), &mut TxOptions::new()).unwrap();
    }

    #[test]
    fn single_attempt_budget_succeeds_uncontended() {
        let (stm, m, ops) = setup(4, 1);
        let mut port = m.port(0);
        let mut opts = TxOptions::new().budget(TxBudget::attempts(1));
        let out = stm.run(&mut port, &TxSpec::new(ops.add, &[1], &[0]), &mut opts).unwrap();
        assert_eq!(out.old, vec![0]);
        assert_eq!(out.stats.attempts, 1);
    }

    #[test]
    fn fast_read_agrees_with_identity_transaction() {
        let (stm, m, ops) = setup(8, 1);
        let mut port = m.port(0);
        for c in 0..8 {
            stm.init_cell(&mut port, c, 100 + c as u32);
        }
        let cells = [6, 0, 3];
        let fast = stm.try_read_only(&mut port, &cells).expect("uncontended fast read");
        let slow =
            stm.run(&mut port, &TxSpec::new(ops.read, &[], &cells), &mut TxOptions::new()).unwrap();
        assert_eq!(fast.old, slow.old);
        assert_eq!(fast.old_stamps, slow.old_stamps);
        assert_eq!(fast.stats.attempts, 1, "uncontended: one double-collect round");
    }

    #[test]
    fn fast_read_fails_under_a_live_owner() {
        // A crashed (undecided) transaction holds its cells forever; the
        // invisible read must refuse to return values it cannot validate.
        let (stm, m, ops) = setup(4, 2);
        let mut p1 = m.port(1);
        stm.inject_crash_after_acquire(&mut p1, &TxSpec::new(ops.add, &[7], &[2]));
        let mut p0 = m.port(0);
        assert!(stm.try_read_only(&mut p0, &[2]).is_none(), "live owner must fail validation");
        // The acquiring path helps the crashed transaction and completes it.
        let out =
            stm.run(&mut p0, &TxSpec::new(ops.read, &[], &[2]), &mut TxOptions::new()).unwrap();
        assert_eq!(out.old, vec![7], "helper completed the crashed +7");
        // With the obstruction cleared, the fast path works again.
        assert_eq!(stm.try_read_only(&mut p0, &[2]).unwrap().old, vec![7]);
    }

    #[test]
    fn fast_read_disabled_by_config() {
        let config = StmConfig { fast_read_rounds: 0, ..StmConfig::default() };
        let mut b = ProgramTable::builder();
        let _ = register_builtins(&mut b);
        let stm = Stm::new(0, 4, 1, 4, b.build(), config);
        let m = HostMachine::new(stm.layout().words_needed(), 1);
        let mut port = m.port(0);
        assert!(stm.try_read_only(&mut port, &[0]).is_none());
    }

    #[test]
    fn padded_instance_behaves_identically() {
        let mut b = ProgramTable::builder();
        let ops = register_builtins(&mut b);
        let stm = Stm::new(0, 16, 2, 8, b.build(), StmConfig::host_tuned());
        assert_eq!(stm.layout().pad_shift(), 3);
        let m = HostMachine::new(stm.layout().words_needed(), 2);
        let mut port = m.port(0);
        stm.init_cell(&mut port, 3, 9);
        let out =
            stm.run(&mut port, &TxSpec::new(ops.add, &[1, 2], &[3, 7]), &mut TxOptions::new())
                .unwrap();
        assert_eq!(out.old, vec![9, 0]);
        assert_eq!(stm.read_cell(&mut port, 3), 10);
        assert_eq!(stm.try_read_only(&mut port, &[3, 7]).unwrap().old, vec![10, 2]);
    }

    #[test]
    fn backoff_policy_is_bounded_and_deterministic() {
        let p = BackoffPolicy::Exponential { base: 4, max: 1000 };
        for proc in 0..8 {
            for attempt in 1..20 {
                let w = p.wait_cycles(proc, attempt);
                assert!((1..=1000).contains(&w));
                assert_eq!(w, p.wait_cycles(proc, attempt));
            }
            // The first retry draws from the *initial* window `1..=base`
            // (shift 0), per the "Initial back-off" doc.
            assert!((1..=4).contains(&p.wait_cycles(proc, 1)));
            // Second retry: doubled window.
            assert!((1..=8).contains(&p.wait_cycles(proc, 2)));
        }
        assert_eq!(BackoffPolicy::None.wait_cycles(0, 3), 0);
    }

    #[test]
    fn record_version_wraps_past_oldval_tag_width() {
        // Old-value agreement entries carry only 15 bits of the record
        // version; a single record must stay correct across (several times)
        // that many reuses.
        let (stm, m, ops) = setup(2, 1);
        let mut port = m.port(0);
        const N: u32 = (1 << 15) * 2 + 17;
        for i in 0..N {
            let out = stm.run(&mut port, &TxSpec::new(ops.add, &[1], &[0]), &mut TxOptions::new()).unwrap();
            assert_eq!(out.old[0], i, "lost update at version {i}");
        }
        assert_eq!(stm.read_cell(&mut port, 0), N);
    }

    #[test]
    fn cell_stamp_wraps_past_16_bits() {
        // Cell stamps are 16-bit; >2^16 committed updates of one cell must
        // stay exact.
        let (stm, m, ops) = setup(2, 1);
        let mut port = m.port(0);
        const N: u32 = (1 << 16) + 33;
        for _ in 0..N {
            let _ = stm.run(&mut port, &TxSpec::new(ops.add, &[1], &[1]), &mut TxOptions::new()).unwrap();
        }
        assert_eq!(stm.read_cell(&mut port, 1), N);
    }

    #[test]
    fn concurrent_counter_on_host() {
        const PROCS: usize = 4;
        const PER: u64 = 500;
        let (stm, m, ops) = setup(4, PROCS);
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let stm = stm.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for _ in 0..PER {
                        let _ = stm.run(&mut port, &TxSpec::new(ops.add, &[1], &[2]), &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        assert_eq!(stm.read_cell(&mut port, 2), (PROCS as u64 * PER) as u32);
    }

    #[test]
    fn concurrent_multiword_transfer_conserves_sum_on_host() {
        // 4 threads move value between 8 cells; total must be conserved.
        const PROCS: usize = 4;
        const PER: usize = 300;
        let (stm, m, ops) = setup(8, PROCS);
        {
            let mut port = m.port(0);
            for c in 0..8 {
                stm.init_cell(&mut port, c, 1000);
            }
        }
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let stm = stm.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(p);
                    for i in 0..PER {
                        let from = (p + i) % 8;
                        let to = (p + i + 3) % 8;
                        if from == to {
                            continue;
                        }
                        // add -1 (wrapping) to from, +1 to to
                        let params = [1u32.wrapping_neg() as u64, 1];
                        let cells = [from, to];
                        let _ = stm.run(&mut port, &TxSpec::new(ops.add, &params, &cells), &mut TxOptions::new()).unwrap();
                    }
                });
            }
        });
        let mut port = m.port(0);
        let total: u64 = (0..8).map(|c| stm.read_cell(&mut port, c) as u64).sum();
        assert_eq!(total, 8000);
    }
}
