//! The host machine: shared words backed by `std` atomics, one real thread
//! per processor.
//!
//! This is the runtime a downstream user adopts: the same STM algorithm that
//! is evaluated on the simulator runs here at native speed. All operations
//! are `SeqCst` (see [`MemPort`] for why).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::machine::MemPort;
use crate::word::{Addr, Word};

/// Number of hashed waiter buckets; a power of two so the bucket of an
/// address is a mask.
const WAITER_BUCKETS: usize = 64;

/// Longest single OS park while blocked, as a belt-and-braces bound: the
/// registry guarantees a wakeup, but capping each park keeps a waiter
/// recoverable at negligible CPU cost even if an unpark were somehow lost.
const PARK_SLICE: Duration = Duration::from_millis(20);

/// One thread blocked in [`MemPort::wait_on`], registered under every
/// address it watches.
#[derive(Debug)]
struct Waiter {
    woken: AtomicBool,
    thread: std::thread::Thread,
}

/// One hashed waiter list: every `(addr, waiter)` registration whose
/// address hashed into this bucket.
type WaiterBucket = Mutex<Vec<(Addr, Arc<Waiter>)>>;

/// A shared word-addressed memory on the host, sized at construction.
///
/// Cloning the machine handle is cheap (`Arc`); obtain one [`HostPort`] per
/// thread with [`HostMachine::port`].
///
/// # Examples
///
/// ```
/// use stm_core::machine::{host::HostMachine, MemPort};
///
/// let machine = HostMachine::new(16, 2);
/// let mut p0 = machine.port(0);
/// p0.write(3, 99);
/// let mut p1 = machine.port(1);
/// assert_eq!(p1.read(3), 99);
/// ```
#[derive(Clone, Debug)]
pub struct HostMachine {
    inner: Arc<HostMem>,
}

#[derive(Debug)]
struct HostMem {
    words: Box<[AtomicU64]>,
    n_procs: usize,
    /// Hashed per-address waiter lists for [`MemPort::wait_on`].
    waiters: Box<[WaiterBucket]>,
    /// Number of threads currently registered in `waiters`: lets
    /// [`MemPort::notify`] on the install hot path bail with one atomic load
    /// when nobody is blocked.
    n_waiters: AtomicUsize,
}

impl HostMem {
    fn bucket(&self, addr: Addr) -> &WaiterBucket {
        &self.waiters[addr & (WAITER_BUCKETS - 1)]
    }
}

impl HostMachine {
    /// Create a machine with `n_words` shared words (all zero) shared by
    /// `n_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is 0 or exceeds [`crate::word::MAX_PROCS`].
    pub fn new(n_words: usize, n_procs: usize) -> Self {
        assert!(n_procs > 0, "a machine needs at least one processor");
        assert!(
            n_procs <= crate::word::MAX_PROCS,
            "at most {} processors supported",
            crate::word::MAX_PROCS
        );
        let words = (0..n_words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice();
        let waiters =
            (0..WAITER_BUCKETS).map(|_| Mutex::new(Vec::new())).collect::<Vec<_>>().into_boxed_slice();
        HostMachine {
            inner: Arc::new(HostMem { words, n_procs, waiters, n_waiters: AtomicUsize::new(0) }),
        }
    }

    /// Number of shared words.
    pub fn n_words(&self) -> usize {
        self.inner.words.len()
    }

    /// Number of processors this machine was declared with.
    pub fn n_procs(&self) -> usize {
        self.inner.n_procs
    }

    /// Obtain the port for processor `proc`. Each processor id should be
    /// driven by exactly one thread at a time (the STM protocol's records are
    /// per-processor).
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n_procs`.
    pub fn port(&self, proc: usize) -> HostPort {
        assert!(proc < self.inner.n_procs, "processor id {proc} out of range");
        HostPort { mem: Arc::clone(&self.inner), proc }
    }

    /// Snapshot the raw contents of memory (for tests and verification; not
    /// atomic across words).
    pub fn snapshot(&self) -> Vec<Word> {
        self.inner.words.iter().map(|w| w.load(Ordering::SeqCst)).collect()
    }
}

/// A single processor's port into a [`HostMachine`].
#[derive(Debug)]
pub struct HostPort {
    mem: Arc<HostMem>,
    proc: usize,
}

impl MemPort for HostPort {
    fn proc_id(&self) -> usize {
        self.proc
    }

    fn n_procs(&self) -> usize {
        self.mem.n_procs
    }

    fn read(&mut self, addr: Addr) -> Word {
        self.mem.words[addr].load(Ordering::SeqCst)
    }

    fn write(&mut self, addr: Addr, value: Word) {
        self.mem.words[addr].store(value, Ordering::SeqCst)
    }

    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word> {
        self.mem.words[addr]
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            .map(|_| ())
    }

    fn delay(&mut self, cycles: u64) {
        // A bounded spin: "cycles" are advisory on the host.
        for _ in 0..cycles.min(1 << 16) {
            std::hint::spin_loop();
        }
    }

    fn yield_now(&mut self) {
        std::thread::yield_now();
    }

    fn park_micros(&mut self, micros: u64) {
        // `park_timeout` tolerates spurious wakeups — fine for backoff, which
        // only needs "roughly this long, maybe less".
        std::thread::park_timeout(std::time::Duration::from_micros(micros));
    }

    fn wait_on(&mut self, watches: &[(Addr, Word)], max_park_micros: u64) {
        let me =
            Arc::new(Waiter { woken: AtomicBool::new(false), thread: std::thread::current() });
        // Register on every watched address *before* revalidating, so the
        // SeqCst total order gives: if our revalidation read misses a writer's
        // install, the install is ordered after it — and therefore after our
        // registration — so the writer's notify must find us and unpark.
        for &(addr, _) in watches {
            self.mem.bucket(addr).lock().unwrap().push((addr, Arc::clone(&me)));
        }
        self.mem.n_waiters.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now().checked_add(Duration::from_micros(max_park_micros));
        loop {
            if watches.iter().any(|&(a, w)| self.mem.words[a].load(Ordering::SeqCst) != w)
                || me.woken.load(Ordering::SeqCst)
            {
                break;
            }
            let slice = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break;
                    }
                    (d - now).min(PARK_SLICE)
                }
                None => PARK_SLICE,
            };
            // An unpark that lands before the park hands us a token, so the
            // park returns immediately: no check-to-park wakeup window.
            std::thread::park_timeout(slice);
        }
        self.mem.n_waiters.fetch_sub(1, Ordering::SeqCst);
        for &(addr, _) in watches {
            self.mem
                .bucket(addr)
                .lock()
                .unwrap()
                .retain(|(a, w)| !(*a == addr && Arc::ptr_eq(w, &me)));
        }
    }

    fn notify(&mut self, addr: Addr) {
        // Install-path fast exit: one load when nobody in the whole machine
        // is blocked (the common case for non-blocking workloads).
        if self.mem.n_waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let bucket = self.mem.bucket(addr).lock().unwrap();
        for (a, waiter) in bucket.iter() {
            if *a == addr && !waiter.woken.swap(true, Ordering::SeqCst) {
                waiter.thread.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn new_machine_is_zeroed() {
        let m = HostMachine::new(4, 1);
        assert_eq!(m.snapshot(), vec![0, 0, 0, 0]);
        assert_eq!(m.n_words(), 4);
        assert_eq!(m.n_procs(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_out_of_range_panics() {
        let m = HostMachine::new(1, 1);
        let _ = m.port(1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_procs_panics() {
        let _ = HostMachine::new(1, 0);
    }

    #[test]
    fn cas_is_atomic_across_threads() {
        // n threads each win a distinct CAS-mediated ticket; every ticket is
        // claimed exactly once.
        const N: usize = 4;
        const TICKETS: u64 = 2000;
        let m = HostMachine::new(1 + TICKETS as usize, N);
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..N {
                let m = m.clone();
                let claimed = &claimed;
                s.spawn(move || {
                    let mut port = m.port(p);
                    loop {
                        let t = port.read(0);
                        if t >= TICKETS {
                            break;
                        }
                        if port.compare_exchange(0, t, t + 1).is_ok() {
                            // mark ticket t as ours
                            let prev = port.read(1 + t as usize);
                            assert_eq!(prev, 0, "ticket double-claimed");
                            port.write(1 + t as usize, p as u64 + 1);
                            claimed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(claimed.load(Ordering::SeqCst), TICKETS as usize);
        let snap = m.snapshot();
        assert!(snap[1..].iter().all(|&w| w >= 1 && w <= N as u64));
    }

    #[test]
    fn machine_handle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HostMachine>();
        assert_send_sync::<HostPort>();
    }

    #[test]
    fn wait_on_returns_immediately_when_a_watch_already_moved() {
        let m = HostMachine::new(2, 1);
        let mut p = m.port(0);
        p.write(1, 5);
        let t0 = Instant::now();
        p.wait_on(&[(0, 0), (1, 0)], 60_000_000);
        assert!(t0.elapsed() < Duration::from_secs(10), "must not sit out the full cap");
    }

    #[test]
    fn wait_on_times_out_when_nothing_changes() {
        let m = HostMachine::new(1, 1);
        let mut p = m.port(0);
        p.wait_on(&[(0, 0)], 10_000); // 10 ms cap, no writer: must return
        assert_eq!(p.read(0), 0);
        assert_eq!(m.inner.n_waiters.load(Ordering::SeqCst), 0, "deregistered after timeout");
    }

    #[test]
    fn notify_unparks_a_cross_thread_waiter() {
        let m = HostMachine::new(2, 2);
        std::thread::scope(|s| {
            let m2 = m.clone();
            let waiter = s.spawn(move || {
                let mut port = m2.port(0);
                let t0 = Instant::now();
                port.wait_on(&[(0, 0)], 60_000_000); // 60 s cap
                assert!(
                    t0.elapsed() < Duration::from_secs(30),
                    "woken by notify, not by the cap"
                );
                port.read(0)
            });
            std::thread::sleep(Duration::from_millis(30));
            let mut writer = m.port(1);
            writer.write(0, 7);
            writer.notify(0);
            assert_eq!(waiter.join().unwrap(), 7);
        });
        assert_eq!(m.inner.n_waiters.load(Ordering::SeqCst), 0, "registry drains");
    }
}
