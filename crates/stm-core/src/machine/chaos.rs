//! Real-thread chaos testing: random preemption injected at protocol step
//! points, plus a host-side watchdog for commit progress.
//!
//! The simulator (`stm-sim`) explores adversarial schedules *deterministically*;
//! this module attacks the same protocol on the real host machine, where the
//! OS scheduler is the adversary. [`ChaosPort`] wraps any [`MemPort`] (in
//! practice [`HostPort`](crate::machine::host::HostPort)) and, at every
//! instrumented [`MemPort::step`] point the protocol passes through, rolls a
//! deterministic per-proc die and injects one of:
//!
//! * a **yield** (`std::thread::yield_now`) — hands the core to a rival at
//!   the worst possible instant;
//! * a **sleep** (`std::thread::sleep`, bounded microseconds) — simulates a
//!   long preemption, e.g. the owner being descheduled mid-acquisition, the
//!   exact scenario the paper's helping mechanism exists for;
//! * a **spin** (bounded `delay`) — skews relative thread speeds.
//!
//! The *decision* sequence is a pure function of the seed and proc id
//! (splitmix64), so a failing run's injection pattern is reproducible even
//! though the OS interleaving is not.
//!
//! [`Watchdog`] is the liveness side: worker threads tick a shared per-proc
//! commit counter through a [`WatchdogHandle`], and a monitor thread calls
//! [`Watchdog::scan`] periodically; a scan interval in which a thread made no
//! progress yields a structured [`WatchdogReport`] naming the stalled procs.
//!
//! See `examples/chaos_tour.rs` for the full harness: chaos-injected
//! transactions audited post-hoc by the serializability checker in
//! [`crate::history`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::contention::splitmix64;
use crate::machine::MemPort;
use crate::step::StepPoint;
use crate::word::{Addr, Word};

/// Injection mix for a [`ChaosPort`], in events per thousand step points.
///
/// The defaults are tuned so a few thousand transactions still complete in
/// well under a second of wall time while every protocol phase gets hit:
/// yields are common (cheap), sleeps are rare (expensive but the most
/// adversarial — they strand ownerships for other threads to help past).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Base RNG seed; each port folds in its proc id, so ports draw
    /// independent (but reproducible) streams.
    pub seed: u64,
    /// Per-mille of step points that yield the thread.
    pub yield_per_mille: u32,
    /// Per-mille of step points that sleep the thread.
    pub sleep_per_mille: u32,
    /// Upper bound (exclusive of 0: draws land in `1..=max`) on one
    /// injected sleep, in microseconds.
    pub max_sleep_micros: u64,
    /// Per-mille of step points that burn a bounded local spin.
    pub spin_per_mille: u32,
    /// Upper bound on one injected spin, in delay cycles.
    pub max_spin_cycles: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5EED,
            yield_per_mille: 20,
            sleep_per_mille: 5,
            max_sleep_micros: 200,
            spin_per_mille: 50,
            max_spin_cycles: 256,
        }
    }
}

impl ChaosConfig {
    /// Same mix, different seed (vary per run or per proc group).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Counters of what a [`ChaosPort`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Step points observed.
    pub steps: u64,
    /// Yields injected.
    pub yields: u64,
    /// Sleeps injected.
    pub sleeps: u64,
    /// Spins injected.
    pub spins: u64,
}

impl ChaosStats {
    /// Fold another port's counters into this one.
    pub fn merge(&mut self, other: &ChaosStats) {
        self.steps += other.steps;
        self.yields += other.yields;
        self.sleeps += other.sleeps;
        self.spins += other.spins;
    }
}

/// A [`MemPort`] adapter that injects random preemption at step points.
///
/// All memory operations pass straight through to the wrapped port; only
/// [`MemPort::step`] gains behaviour (the injection roll), which is exactly
/// where the protocol is most interruption-sensitive — between an acquire
/// and its decision, before a release, mid-install.
#[derive(Debug)]
pub struct ChaosPort<P: MemPort> {
    inner: P,
    cfg: ChaosConfig,
    rng: u64,
    stats: ChaosStats,
}

impl<P: MemPort> ChaosPort<P> {
    /// Wrap `inner`, folding its proc id into the seed so sibling ports
    /// draw distinct streams.
    pub fn new(inner: P, cfg: ChaosConfig) -> Self {
        let rng = splitmix64(cfg.seed ^ (inner.proc_id() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ChaosPort { inner, cfg, rng, stats: ChaosStats::default() }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Unwrap, returning the inner port and the final counters.
    pub fn into_inner(self) -> (P, ChaosStats) {
        (self.inner, self.stats)
    }

    fn draw(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.rng)
    }
}

impl<P: MemPort> MemPort for ChaosPort<P> {
    fn proc_id(&self) -> usize {
        self.inner.proc_id()
    }
    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }
    fn read(&mut self, addr: Addr) -> Word {
        self.inner.read(addr)
    }
    fn write(&mut self, addr: Addr, value: Word) {
        self.inner.write(addr, value)
    }
    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word> {
        self.inner.compare_exchange(addr, expected, new)
    }
    fn delay(&mut self, cycles: u64) {
        self.inner.delay(cycles)
    }
    fn now(&self) -> u64 {
        self.inner.now()
    }
    fn yield_now(&mut self) {
        self.inner.yield_now()
    }
    fn park_micros(&mut self, micros: u64) {
        self.inner.park_micros(micros)
    }
    fn wait_on(&mut self, watches: &[(Addr, Word)], max_park_micros: u64) {
        self.inner.wait_on(watches, max_park_micros)
    }
    fn notify(&mut self, addr: Addr) {
        self.inner.notify(addr)
    }

    fn step(&mut self, point: StepPoint) {
        self.stats.steps += 1;
        let roll = self.draw();
        let die = (roll % 1000) as u32;
        let y = self.cfg.yield_per_mille;
        let s = y + self.cfg.sleep_per_mille;
        let p = s + self.cfg.spin_per_mille;
        if die < y {
            self.stats.yields += 1;
            std::thread::yield_now();
        } else if die < s {
            self.stats.sleeps += 1;
            let micros = 1 + (roll >> 10) % self.cfg.max_sleep_micros.max(1);
            std::thread::sleep(std::time::Duration::from_micros(micros));
        } else if die < p {
            self.stats.spins += 1;
            let cycles = 1 + (roll >> 10) % self.cfg.max_spin_cycles.max(1);
            self.inner.delay(cycles);
        }
        self.inner.step(point);
    }
}

/// Shared commit-progress counters; see module docs.
#[derive(Debug)]
struct WatchState {
    commits: Vec<AtomicU64>,
}

/// Per-worker ticker: call [`WatchdogHandle::commit`] after every committed
/// transaction. Cloneable and cheap (an `Arc` bump plus an index).
#[derive(Debug, Clone)]
pub struct WatchdogHandle {
    state: Arc<WatchState>,
    proc: usize,
}

impl WatchdogHandle {
    /// Record one committed transaction for this proc.
    pub fn commit(&self) {
        self.state.commits[self.proc].fetch_add(1, Ordering::Relaxed);
    }
}

/// Progress of one proc over one watchdog scan interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcProgress {
    /// Processor id.
    pub proc: usize,
    /// Total commits so far.
    pub commits: u64,
    /// Commits since the previous [`Watchdog::scan`].
    pub delta: u64,
}

/// One watchdog scan: per-proc totals and deltas, structured for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Per-proc progress, ascending proc id.
    pub procs: Vec<ProcProgress>,
}

impl WatchdogReport {
    /// Procs that made no commit progress this interval.
    pub fn stalled(&self) -> Vec<usize> {
        self.procs.iter().filter(|p| p.delta == 0).map(|p| p.proc).collect()
    }

    /// Whether any proc made no progress this interval.
    pub fn any_stalled(&self) -> bool {
        self.procs.iter().any(|p| p.delta == 0)
    }

    /// Total commits across procs.
    pub fn total_commits(&self) -> u64 {
        self.procs.iter().map(|p| p.commits).sum()
    }
}

impl std::fmt::Display for WatchdogReport {
    /// One line per proc: `p<id>: <total> commits (+<delta>)`, with `STALLED`
    /// appended for zero-delta procs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.procs {
            writeln!(
                f,
                "p{}: {} commits (+{}){}",
                p.proc,
                p.commits,
                p.delta,
                if p.delta == 0 { "  STALLED" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Host-side liveness monitor: flags threads making no commit progress
/// between scans.
///
/// A stalled scan is a *signal*, not proof of a bug — a thread may simply be
/// parked in backoff or starved by the OS — but under the paper's lock-freedom
/// claim the *system* must progress, so "every proc stalled for an interval"
/// is the red flag the chaos harness asserts against.
#[derive(Debug)]
pub struct Watchdog {
    state: Arc<WatchState>,
    last: Vec<u64>,
}

impl Watchdog {
    /// A watchdog over `n_procs` workers, all counters zero.
    pub fn new(n_procs: usize) -> Self {
        let commits = (0..n_procs).map(|_| AtomicU64::new(0)).collect();
        Watchdog { state: Arc::new(WatchState { commits }), last: vec![0; n_procs] }
    }

    /// The ticker for worker `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn handle(&self, proc: usize) -> WatchdogHandle {
        assert!(proc < self.last.len(), "proc {proc} out of watchdog range");
        WatchdogHandle { state: Arc::clone(&self.state), proc }
    }

    /// Snapshot progress since the previous scan (the first scan's deltas
    /// are measured from zero).
    pub fn scan(&mut self) -> WatchdogReport {
        let procs = self
            .state
            .commits
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let commits = c.load(Ordering::Relaxed);
                let delta = commits - self.last[i];
                self.last[i] = commits;
                ProcProgress { proc: i, commits, delta }
            })
            .collect();
        WatchdogReport { procs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;

    fn drained_stats(cfg: ChaosConfig, steps: usize) -> ChaosStats {
        let m = HostMachine::new(4, 1);
        let mut port = ChaosPort::new(m.port(0), cfg);
        for _ in 0..steps {
            port.step(StepPoint::TxPublished);
        }
        port.stats()
    }

    #[test]
    fn injection_decisions_are_deterministic_per_seed() {
        let cfg = ChaosConfig::default();
        let a = drained_stats(cfg, 5000);
        let b = drained_stats(cfg, 5000);
        assert_eq!(a, b, "same seed, same proc: identical injection counts");
        let c = drained_stats(cfg.with_seed(0xDEAD), 5000);
        assert_ne!(a, c, "different seed: different stream");
    }

    #[test]
    fn injection_rates_track_the_config() {
        let cfg = ChaosConfig {
            seed: 7,
            yield_per_mille: 100,
            sleep_per_mille: 0, // keep the unit test fast
            max_sleep_micros: 1,
            spin_per_mille: 100,
            max_spin_cycles: 8,
        };
        let s = drained_stats(cfg, 10_000);
        assert_eq!(s.steps, 10_000);
        assert_eq!(s.sleeps, 0);
        // ~10% each with a wide tolerance (splitmix is uniform enough).
        assert!((500..2000).contains(&s.yields), "yields {}", s.yields);
        assert!((500..2000).contains(&s.spins), "spins {}", s.spins);
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let cfg = ChaosConfig {
            seed: 1,
            yield_per_mille: 0,
            sleep_per_mille: 0,
            max_sleep_micros: 1,
            spin_per_mille: 0,
            max_spin_cycles: 1,
        };
        let s = drained_stats(cfg, 1000);
        assert_eq!((s.yields, s.sleeps, s.spins), (0, 0, 0));
        assert_eq!(s.steps, 1000);
    }

    #[test]
    fn chaos_port_passes_memory_traffic_through() {
        let m = HostMachine::new(8, 1);
        let mut port = ChaosPort::new(m.port(0), ChaosConfig::default());
        port.write(3, 17);
        assert_eq!(port.read(3), 17);
        assert_eq!(port.compare_exchange(3, 17, 18), Ok(()));
        assert_eq!(port.compare_exchange(3, 17, 19), Err(18));
        assert_eq!(port.proc_id(), 0);
        assert_eq!(port.n_procs(), 1);
        let (_inner, stats) = port.into_inner();
        assert_eq!(stats.steps, 0, "memory ops are not step points");
    }

    #[test]
    fn watchdog_flags_the_stalled_proc() {
        let mut dog = Watchdog::new(3);
        let h0 = dog.handle(0);
        let h2 = dog.handle(2);
        h0.commit();
        h0.commit();
        h2.commit();
        let r = dog.scan();
        assert_eq!(r.stalled(), vec![1]);
        assert!(r.any_stalled());
        assert_eq!(r.total_commits(), 3);
        assert!(r.to_string().contains("p1: 0 commits (+0)  STALLED"), "{r}");
        // Next interval: only proc 1 progresses.
        dog.handle(1).commit();
        let r = dog.scan();
        assert_eq!(r.stalled(), vec![0, 2]);
        assert_eq!(r.procs[1], ProcProgress { proc: 1, commits: 1, delta: 1 });
    }
}
