//! The word-addressed shared-memory machine abstraction.
//!
//! The Shavit–Touitou paper evaluates its algorithm on the Proteus
//! multiprocessor simulator, while the algorithm itself only needs atomic
//! `read`/`write`/`compare&swap` on shared words. We capture that contract in
//! the [`MemPort`] trait: one port per (simulated or real) processor, through
//! which *all* shared-memory traffic flows. The STM algorithm, the lock
//! baselines, and the benchmark data structures are generic over `MemPort`,
//! so the exact same algorithm code runs
//!
//! * on the host machine ([`host::HostMachine`], real threads over
//!   `AtomicU64`), and
//! * on the deterministic simulator (`stm-sim`), where each access is charged
//!   an architecture-dependent cycle cost — this is how every figure of the
//!   paper is regenerated.

pub mod chaos;
pub mod counting;
pub mod host;

use crate::step::StepPoint;
use crate::word::{Addr, Word};

/// A per-processor handle to a shared word-addressed memory.
///
/// All operations are sequentially consistent: the 1995 algorithm (and its
/// proof) assume a strongly ordered shared memory, and both provided machines
/// honour that (the host machine uses `SeqCst`; the simulator serializes every
/// access on a global virtual clock).
///
/// A `MemPort` is held by exactly one thread of execution; methods take
/// `&mut self` to enforce this statically.
pub trait MemPort {
    /// Identifier of the processor driving this port (`0..n_procs`).
    fn proc_id(&self) -> usize;

    /// Total number of processors sharing this memory.
    fn n_procs(&self) -> usize;

    /// Atomically read the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds for the machine.
    fn read(&mut self, addr: Addr) -> Word;

    /// Atomically write `value` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds for the machine.
    fn write(&mut self, addr: Addr, value: Word);

    /// Atomic compare-and-swap: install `new` at `addr` iff the current word
    /// equals `expected`. Returns `Ok(())` on success and `Err(actual)` with
    /// the witnessed word on failure.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds for the machine.
    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word>;

    /// Spend `cycles` of purely local computation/back-off time. On the host
    /// machine this is a bounded spin; on the simulator it advances the
    /// processor's virtual clock without generating memory traffic.
    fn delay(&mut self, cycles: u64);

    /// The processor's current local time, if the machine has a notion of
    /// time (the simulator reports virtual cycles; the host reports 0).
    fn now(&self) -> u64 {
        0
    }

    /// Announce that the protocol reached the named step point (see
    /// [`crate::step`]). The default is a no-op, so on the host machine the
    /// instrumentation in the protocol code vanishes; the simulator overrides
    /// this to record the step in the trace and deliver scripted faults.
    #[inline(always)]
    fn step(&mut self, _point: StepPoint) {}

    /// Yield the processor to other runnable work — the middle rung of the
    /// contention-management lattice. The host machine maps this to
    /// `std::thread::yield_now()`; the default (used by the simulator and
    /// test ports) charges one local cycle, keeping deterministic machines
    /// deterministic.
    fn yield_now(&mut self) {
        self.delay(1);
    }

    /// Block the processor for roughly `micros` microseconds — the top rung
    /// of the contention-management lattice. The host machine parks the OS
    /// thread (`std::thread::park_timeout`); the default charges `micros`
    /// local cycles so deterministic machines stay deterministic.
    fn park_micros(&mut self, micros: u64) {
        self.delay(micros);
    }

    /// Block until the word at some watched address differs from the value
    /// recorded for it, or roughly `max_park_micros` elapse — the blocking
    /// primitive behind [`DynamicStm::run_blocking`](crate::DynamicStm).
    ///
    /// The contract is condition-variable-like: spurious returns are allowed
    /// (callers revalidate and re-wait), but a return **must not** be lost —
    /// if a writer changes a watched word after `wait_on` has re-read it as
    /// unchanged, the waiter must still wake (the writer calls
    /// [`MemPort::notify`] after every install). The host machine keeps a
    /// per-address waiter registry and parks the OS thread; the simulator
    /// parks the virtual processor without consuming scheduler steps and
    /// wakes it deterministically. The portable default below re-checks the
    /// watched words between bounded parks, so ports that override neither
    /// hook still terminate — at polling cost, not wakeup cost.
    fn wait_on(&mut self, watches: &[(Addr, Word)], max_park_micros: u64) {
        let mut remaining = max_park_micros;
        loop {
            let mut changed = false;
            for &(addr, seen) in watches {
                if self.read(addr) != seen {
                    changed = true;
                    break;
                }
            }
            if changed || remaining == 0 {
                return;
            }
            let slice = remaining.min(100);
            self.park_micros(slice);
            remaining -= slice;
        }
    }

    /// Wake any processor parked in [`MemPort::wait_on`] watching `addr`.
    ///
    /// The STM install path calls this after every successful value-changing
    /// CAS. Machines without a waiter registry (and the polling default
    /// `wait_on`) need no delivery, so the default is a no-op that compiles
    /// to nothing on such ports.
    #[inline(always)]
    fn notify(&mut self, _addr: Addr) {}
}

/// Blanket impl so `&mut P` can be passed where a port is consumed by value
/// in generic helpers.
impl<P: MemPort + ?Sized> MemPort for &mut P {
    fn proc_id(&self) -> usize {
        (**self).proc_id()
    }
    fn n_procs(&self) -> usize {
        (**self).n_procs()
    }
    fn read(&mut self, addr: Addr) -> Word {
        (**self).read(addr)
    }
    fn write(&mut self, addr: Addr, value: Word) {
        (**self).write(addr, value)
    }
    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word> {
        (**self).compare_exchange(addr, expected, new)
    }
    fn delay(&mut self, cycles: u64) {
        (**self).delay(cycles)
    }
    fn now(&self) -> u64 {
        (**self).now()
    }
    fn step(&mut self, point: StepPoint) {
        (**self).step(point)
    }
    fn yield_now(&mut self) {
        (**self).yield_now()
    }
    fn park_micros(&mut self, micros: u64) {
        (**self).park_micros(micros)
    }
    fn wait_on(&mut self, watches: &[(Addr, Word)], max_park_micros: u64) {
        (**self).wait_on(watches, max_park_micros)
    }
    fn notify(&mut self, addr: Addr) {
        (**self).notify(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::host::HostMachine;
    use super::*;

    fn exercise_port<P: MemPort>(port: &mut P, addr: Addr) {
        assert_eq!(port.read(addr), 0);
        port.write(addr, 42);
        assert_eq!(port.read(addr), 42);
        assert_eq!(port.compare_exchange(addr, 41, 43), Err(42));
        assert_eq!(port.compare_exchange(addr, 42, 43), Ok(()));
        assert_eq!(port.read(addr), 43);
        port.delay(10);
    }

    #[test]
    fn port_through_mut_ref() {
        let machine = HostMachine::new(8, 1);
        let mut port = machine.port(0);
        exercise_port(&mut &mut port, 0); // via the blanket impl
        exercise_port(&mut port, 1);
    }
}
