//! An instrumented [`MemPort`] decorator that counts the shared-memory
//! operations flowing through it.
//!
//! Useful for measuring a protocol's *operation footprint* — how many reads,
//! writes, and CASes one transaction costs — independently of any timing
//! model, on either machine.

use crate::machine::MemPort;
use crate::step::StepPoint;
use crate::word::{Addr, Word};

/// Counts of operations observed by a [`CountingPort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Atomic reads.
    pub reads: u64,
    /// Atomic writes.
    pub writes: u64,
    /// Successful compare-and-swaps.
    pub cas_ok: u64,
    /// Failed compare-and-swaps.
    pub cas_failed: u64,
    /// Cycles spent in `delay`.
    pub delay_cycles: u64,
}

impl OpCounts {
    /// Total shared-memory operations (reads + writes + all CASes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.cas_ok + self.cas_failed
    }
}

/// A [`MemPort`] wrapper that tallies every operation into [`OpCounts`].
///
/// # Examples
///
/// ```
/// use stm_core::machine::counting::CountingPort;
/// use stm_core::machine::host::HostMachine;
/// use stm_core::machine::MemPort;
///
/// let machine = HostMachine::new(4, 1);
/// let mut port = CountingPort::new(machine.port(0));
/// port.write(0, 1);
/// let _ = port.read(0);
/// assert_eq!(port.counts().total(), 2);
/// ```
#[derive(Debug)]
pub struct CountingPort<P> {
    inner: P,
    counts: OpCounts,
}

impl<P: MemPort> CountingPort<P> {
    /// Wrap `inner`, starting from zero counts.
    pub fn new(inner: P) -> Self {
        CountingPort { inner, counts: OpCounts::default() }
    }

    /// The counts so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Reset the counters to zero.
    pub fn reset(&mut self) {
        self.counts = OpCounts::default();
    }

    /// Unwrap the inner port.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: MemPort> MemPort for CountingPort<P> {
    fn proc_id(&self) -> usize {
        self.inner.proc_id()
    }

    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }

    fn read(&mut self, addr: Addr) -> Word {
        self.counts.reads += 1;
        self.inner.read(addr)
    }

    fn write(&mut self, addr: Addr, value: Word) {
        self.counts.writes += 1;
        self.inner.write(addr, value)
    }

    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word> {
        let r = self.inner.compare_exchange(addr, expected, new);
        if r.is_ok() {
            self.counts.cas_ok += 1;
        } else {
            self.counts.cas_failed += 1;
        }
        r
    }

    fn delay(&mut self, cycles: u64) {
        self.counts.delay_cycles += cycles;
        self.inner.delay(cycles)
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }

    fn step(&mut self, point: StepPoint) {
        self.inner.step(point)
    }

    // Blocking hooks forward uncounted: `notify` rides the install hot path
    // of every committing writer, and counting it would perturb the
    // footprint-stability baselines for non-blocking workloads.
    fn wait_on(&mut self, watches: &[(Addr, Word)], max_park_micros: u64) {
        self.inner.wait_on(watches, max_park_micros)
    }
    fn notify(&mut self, addr: Addr) {
        self.inner.notify(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;
    use crate::ops::StmOps;
    use crate::stm::StmConfig;

    #[test]
    fn counts_every_kind() {
        let m = HostMachine::new(2, 1);
        let mut port = CountingPort::new(m.port(0));
        port.write(0, 5);
        assert_eq!(port.read(0), 5);
        assert!(port.compare_exchange(0, 5, 6).is_ok());
        assert!(port.compare_exchange(0, 5, 7).is_err());
        port.delay(9);
        let c = port.counts();
        assert_eq!(c, OpCounts { reads: 1, writes: 1, cas_ok: 1, cas_failed: 1, delay_cycles: 9 });
        assert_eq!(c.total(), 4);
        port.reset();
        assert_eq!(port.counts().total(), 0);
    }

    #[test]
    fn uncontended_stm_increment_footprint_is_stable() {
        // Characterize the protocol's per-transaction footprint: an
        // uncontended 1-cell transaction should cost a fixed, small number
        // of shared-memory operations — and exactly the same each time.
        let ops = StmOps::new(0, 4, 1, 4, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = CountingPort::new(m.port(0));
        ops.fetch_add(&mut port, 0, 1); // warm-up (first stamp)
        port.reset();
        ops.fetch_add(&mut port, 0, 1);
        let first = port.counts();
        port.reset();
        ops.fetch_add(&mut port, 0, 1);
        assert_eq!(port.counts(), first, "footprint must be deterministic");
        assert!(first.total() >= 10 && first.total() <= 40, "unexpected footprint {first:?}");
        assert_eq!(first.cas_failed, 0, "no contention, no failed CAS");
    }

    #[test]
    fn noop_observer_adds_zero_footprint() {
        // The acceptance bar for the telemetry layer: the default observer
        // must cost nothing. Identical op counts, not merely "close".
        use crate::observe::RecordingObserver;
        use crate::stm::{TxOptions, TxSpec};
        let ops = StmOps::new(0, 4, 1, 4, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = CountingPort::new(m.port(0));
        let spec = TxSpec::new(ops.builtins().add, &[1], &[0]);
        let _ = ops.stm().run(&mut port, &spec, &mut TxOptions::new()); // warm-up (first stamp)
        port.reset();
        let _ = ops.stm().run(&mut port, &spec, &mut TxOptions::new());
        let plain = port.counts();
        port.reset();
        let mut rec = RecordingObserver::new();
        let _ = ops.stm().run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec));
        assert_eq!(port.counts(), plain, "observers cost no shared-memory ops");
    }

    #[test]
    fn snapshot_fast_path_commits_with_zero_writes() {
        // The read-only fast path's acceptance bar: an uncontended snapshot
        // must not write shared memory at all — no ownership acquisition, no
        // CAS, just reads.
        let ops = StmOps::new(0, 8, 1, 8, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = CountingPort::new(m.port(0));
        ops.fetch_add_many(&mut port, &[0, 1, 2], &[5, 6, 7]);
        port.reset();
        let snap = ops.snapshot(&mut port, &[0, 1, 2]);
        assert_eq!(snap, vec![5, 6, 7]);
        let c = port.counts();
        assert_eq!(c.writes, 0, "fast-path snapshot must not write: {c:?}");
        assert_eq!(c.cas_ok + c.cas_failed, 0, "fast-path snapshot must not CAS: {c:?}");
        assert!(c.reads > 0, "snapshot obviously has to read");
    }

    #[test]
    fn footprint_scales_linearly_with_dataset() {
        let ops = StmOps::new(0, 16, 1, 16, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = CountingPort::new(m.port(0));
        let mut totals = Vec::new();
        for k in [1usize, 2, 4, 8] {
            let cells: Vec<usize> = (0..k).collect();
            let deltas = vec![1u32; k];
            ops.fetch_add_many(&mut port, &cells, &deltas); // warm-up
            port.reset();
            ops.fetch_add_many(&mut port, &cells, &deltas);
            totals.push(port.counts().total());
        }
        // Linear-ish growth: doubling the data set should not much more than
        // double the footprint.
        for w in totals.windows(2) {
            assert!(w[1] > w[0], "more cells, more ops: {totals:?}");
            assert!(w[1] < w[0] * 3, "superlinear footprint: {totals:?}");
        }
    }
}
