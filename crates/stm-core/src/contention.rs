//! Contention management for the real-thread runtime.
//!
//! The paper's lock-freedom guarantee is a *system-wide* progress property:
//! some transaction always completes. An individual processor can still
//! starve — repeatedly losing `acquireOwnerships` to the same neighbour — and
//! the paper itself notes that practical throughput leans on (unspecified)
//! back-off. This module supplies that layer for the host machine as a
//! pluggable policy:
//!
//! * [`ContentionManager`] — the policy trait consulted once per failed
//!   attempt by any run with [`TxOptions::manager`](crate::stm::TxOptions::manager)
//!   attached;
//! * [`AdaptiveManager`] — the default policy: a **wait lattice** escalating
//!   `spin → yield → parked exponential back-off`, with deterministic
//!   per-processor jitter, plus **starvation detection** that switches the
//!   transaction into *help-first mode* (helping the obstructing owner even
//!   when [`StmConfig::helping`](crate::stm::StmConfig::helping) is off, and
//!   skipping further waits) after repeatedly losing cells to the same owner;
//! * [`ImmediateRetry`] — the paper's configuration: never wait, never
//!   escalate (useful as a rigged pessimistic policy in tests).
//!
//! Waits are expressed as machine-agnostic [`WaitAction`]s and realized
//! through [`MemPort::yield_now`](crate::machine::MemPort::yield_now) /
//! [`MemPort::park_micros`](crate::machine::MemPort::park_micros): real
//! thread yields and parks on the host, deterministic virtual-clock delays on
//! the simulator. Escalations and waits are reported through the
//! [`TxObserver`](crate::observe::TxObserver) hooks
//! (`backoff_wait` / `starvation_escalated`), so [`crate::metrics::TxMetrics`]
//! can assert on them.
//!
//! # Priority escalation
//!
//! Help-first mode clears obstructions but cannot stop *other* processors
//! from failing a starving transaction's record. The escalation ladder built
//! on a shared [`PriorityBoard`] closes that gap:
//!
//! 1. **Escalated** — when the starvation detector trips, the manager
//!    publishes [`PriorityLevel::Escalated`] for its proc. Helpers that hit a
//!    live conflict while helping an escalated record *defer* (leave the
//!    record undecided) instead of failing it, and non-escalated managers
//!    that lose to an escalated owner back off with a full spin window.
//! 2. **Forced** — after [`AdaptiveConfig::forced_losses`] further losses,
//!    the manager claims the board's single forced slot. A forced
//!    transaction's own acquisition sweep never self-fails: on a live
//!    conflict it helps the obstructor to completion and resumes the
//!    ascending sweep while keeping its held prefix (see
//!    `docs/protocol.md` §13 for the safety argument).
//!
//! The board is host-side state (plain atomics, no
//! [`MemPort`](crate::machine::MemPort) traffic): with no board attached —
//! the default — every path compiles to today's behavior and simulated
//! schedules stay bit-identical.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::word::CellIdx;

/// Priority of a processor's in-flight transaction, published on a
/// [`PriorityBoard`]. Ordered: `Normal < Escalated < Forced`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PriorityLevel {
    /// No special treatment (the paper's protocol).
    #[default]
    Normal = 0,
    /// Starving: helpers defer instead of failing this proc's record, and
    /// conflicting managers back off.
    Escalated = 1,
    /// Irrevocable: this proc's acquisition sweep never self-fails. At most
    /// one proc holds this level at a time (single forced slot).
    Forced = 2,
}

impl PriorityLevel {
    fn from_u8(v: u8) -> Self {
        match v {
            2 => PriorityLevel::Forced,
            1 => PriorityLevel::Escalated,
            _ => PriorityLevel::Normal,
        }
    }
}

/// Sentinel for "no proc holds the forced slot".
const NO_FORCED: usize = usize::MAX;

/// Shared proc → [`PriorityLevel`] board coordinating the escalation ladder.
///
/// Managers publish their level here ([`PriorityBoard::raise`] /
/// [`PriorityBoard::try_force`] / [`PriorityBoard::clear`]) and the protocol
/// reads it when deciding whether a helper may fail a record. All state is
/// host-side (`Relaxed` atomics — the board is advisory: a stale read costs
/// at most one extra loss, never safety), so attaching a board adds no
/// shared-memory-port traffic and leaves simulated schedules untouched.
#[derive(Debug)]
pub struct PriorityBoard {
    levels: Box<[AtomicU8]>,
    forced: AtomicUsize,
}

impl PriorityBoard {
    /// A board for `procs` processors, all at [`PriorityLevel::Normal`].
    pub fn new(procs: usize) -> Self {
        PriorityBoard {
            levels: (0..procs).map(|_| AtomicU8::new(0)).collect(),
            forced: AtomicUsize::new(NO_FORCED),
        }
    }

    /// Number of processor slots.
    pub fn procs(&self) -> usize {
        self.levels.len()
    }

    /// Current level of `proc` ([`PriorityLevel::Normal`] if out of range).
    #[inline]
    pub fn level(&self, proc: usize) -> PriorityLevel {
        self.levels
            .get(proc)
            .map_or(PriorityLevel::Normal, |l| PriorityLevel::from_u8(l.load(Ordering::Relaxed)))
    }

    /// Raise `proc` to [`PriorityLevel::Escalated`] (never lowers a level).
    pub fn raise(&self, proc: usize) {
        if let Some(l) = self.levels.get(proc) {
            l.fetch_max(PriorityLevel::Escalated as u8, Ordering::Relaxed);
        }
    }

    /// Try to claim the single forced slot for `proc`; on success the proc's
    /// level becomes [`PriorityLevel::Forced`]. Fails (returning `false`)
    /// while another proc holds the slot.
    pub fn try_force(&self, proc: usize) -> bool {
        if proc >= self.levels.len() {
            return false;
        }
        let won = self
            .forced
            .compare_exchange(NO_FORCED, proc, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
            || self.forced.load(Ordering::Relaxed) == proc;
        if won {
            self.levels[proc].store(PriorityLevel::Forced as u8, Ordering::Relaxed);
        }
        won
    }

    /// Reset `proc` to [`PriorityLevel::Normal`], releasing the forced slot
    /// if it held it.
    pub fn clear(&self, proc: usize) {
        if let Some(l) = self.levels.get(proc) {
            l.store(PriorityLevel::Normal as u8, Ordering::Relaxed);
        }
        let _ = self.forced.compare_exchange(proc, NO_FORCED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The proc currently holding the forced slot, if any.
    pub fn forced_holder(&self) -> Option<usize> {
        match self.forced.load(Ordering::Relaxed) {
            NO_FORCED => None,
            p => Some(p),
        }
    }
}

/// How to wait before the next retry, as directed by a
/// [`ContentionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitAction {
    /// Retry immediately.
    None,
    /// Spin for approximately this many cycles
    /// ([`MemPort::delay`](crate::machine::MemPort::delay)).
    Spin(u64),
    /// Give up the processor's timeslice
    /// ([`MemPort::yield_now`](crate::machine::MemPort::yield_now)).
    Yield,
    /// Park the thread for approximately `micros` microseconds
    /// ([`MemPort::park_micros`](crate::machine::MemPort::park_micros)).
    Park {
        /// Park duration in microseconds.
        micros: u64,
    },
}

/// What the protocol knows about one failed attempt, handed to
/// [`ContentionManager::on_conflict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictInfo {
    /// The losing processor.
    pub proc: usize,
    /// Failed attempts of this call so far (1-based; includes this one).
    pub attempt: u64,
    /// The contended cell, if the failure index was well-formed.
    pub cell: Option<CellIdx>,
    /// The processor whose transaction held the cell when re-inspected after
    /// the failure (best-effort: the owner may already have moved on).
    pub owner: Option<usize>,
}

/// The manager's directive for the next retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryDecision {
    /// How to wait before retrying.
    pub wait: WaitAction,
    /// `true` exactly when this conflict tripped the starvation detector
    /// (reported once per escalation via
    /// [`TxObserver::starvation_escalated`](crate::observe::TxObserver::starvation_escalated)).
    pub newly_escalated: bool,
}

impl RetryDecision {
    /// Retry immediately, no escalation.
    pub fn immediate() -> Self {
        RetryDecision { wait: WaitAction::None, newly_escalated: false }
    }
}

/// A per-transaction contention-management policy.
///
/// The managed execution paths call [`ContentionManager::on_conflict`] once
/// per failed attempt and obey the returned [`RetryDecision`]; while
/// [`ContentionManager::help_first`] is `true` the next attempts run with
/// helping forced on (even if the instance was configured with
/// `helping: false`) so a starving transaction can clear the obstruction
/// itself. [`ContentionManager::on_commit`] resets per-transaction state.
pub trait ContentionManager {
    /// Record a failed attempt and decide how to retry.
    fn on_conflict(&mut self, info: &ConflictInfo) -> RetryDecision;

    /// The transaction committed (or the call is returning): reset state.
    fn on_commit(&mut self);

    /// Whether retries should run in help-first mode.
    fn help_first(&self) -> bool {
        false
    }

    /// Whether [`ConflictInfo::owner`] should be populated. Re-inspecting the
    /// obstructing owner costs one shared-memory read per conflict; a manager
    /// that ignores the owner (like [`ImmediateRetry`]) declines it, keeping
    /// the default [`Stm::run`](crate::stm::Stm::run) retry loop's memory
    /// traffic identical to the paper's classic loop.
    fn wants_conflict_owner(&self) -> bool {
        true
    }

    /// The priority this manager has secured for the next attempt.
    /// [`PriorityLevel::Forced`] switches the protocol's acquisition sweep
    /// into forced mode (never self-fail; help obstructors and resume).
    /// Defaults to [`PriorityLevel::Normal`], which compiles to the classic
    /// sweep.
    fn priority(&self) -> PriorityLevel {
        PriorityLevel::Normal
    }
}

/// A mutable reference to a manager is itself a manager, so callers can keep
/// ownership of a long-lived manager (accumulating starvation pressure across
/// transactions) while handing it to [`TxOptions`](crate::stm::TxOptions) by
/// value: `TxOptions::new().manager(&mut manager)`.
impl<C: ContentionManager + ?Sized> ContentionManager for &mut C {
    fn on_conflict(&mut self, info: &ConflictInfo) -> RetryDecision {
        (**self).on_conflict(info)
    }
    fn on_commit(&mut self) {
        (**self).on_commit()
    }
    fn help_first(&self) -> bool {
        (**self).help_first()
    }
    fn wants_conflict_owner(&self) -> bool {
        (**self).wants_conflict_owner()
    }
    fn priority(&self) -> PriorityLevel {
        (**self).priority()
    }
}

/// The paper's configuration: retry immediately, never wait, never escalate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImmediateRetry;

impl ContentionManager for ImmediateRetry {
    fn on_conflict(&mut self, _info: &ConflictInfo) -> RetryDecision {
        RetryDecision::immediate()
    }
    fn on_commit(&mut self) {}
    fn wants_conflict_owner(&self) -> bool {
        false
    }
}

/// Tuning knobs of the [`AdaptiveManager`] wait lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Attempts `1..=spin_attempts` spin (doubling window from
    /// `spin_base`, capped at `spin_max`, jittered).
    pub spin_attempts: u64,
    /// Initial spin window in cycles.
    pub spin_base: u64,
    /// Spin cap in cycles.
    pub spin_max: u64,
    /// After spinning, this many further attempts yield the timeslice.
    pub yield_attempts: u64,
    /// Beyond yielding, park with exponential duration starting here
    /// (microseconds, jittered).
    pub park_base_micros: u64,
    /// Park duration cap in microseconds.
    pub park_max_micros: u64,
    /// Consecutive losses to the *same* owner that trip the starvation
    /// detector into help-first mode.
    pub starvation_losses: u64,
    /// Total consecutive failed attempts that trip the detector regardless
    /// of owner (covers owners that cannot be identified).
    pub starvation_attempts: u64,
    /// Further losses *after* escalation before the manager tries to claim
    /// the [`PriorityBoard`]'s forced slot (no effect without a board).
    pub forced_losses: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            spin_attempts: 4,
            spin_base: 64,
            spin_max: 1 << 14,
            yield_attempts: 4,
            park_base_micros: 50,
            park_max_micros: 10_000,
            starvation_losses: 3,
            starvation_attempts: 16,
            forced_losses: 4,
        }
    }
}

/// The default adaptive policy: spin → yield → parked exponential back-off,
/// with starvation detection escalating to help-first mode.
///
/// Jitter is deterministic per `(proc, attempt)` (same hash family as
/// [`BackoffPolicy::Exponential`](crate::stm::BackoffPolicy)), so simulator
/// runs using this manager replay exactly.
#[derive(Debug, Clone)]
pub struct AdaptiveManager {
    proc: usize,
    cfg: AdaptiveConfig,
    /// Consecutive failed attempts since the last commit.
    fails: u64,
    /// The owner observed at the last conflict, and how many consecutive
    /// conflicts were lost to it.
    last_owner: Option<usize>,
    owner_losses: u64,
    escalated: bool,
    /// Shared escalation board; `None` keeps the classic two-level behavior.
    board: Option<Arc<PriorityBoard>>,
    /// Losses recorded after the escalation that tripped the detector.
    losses_since_escalation: u64,
    forced: bool,
}

impl AdaptiveManager {
    /// A manager for `proc` with the default [`AdaptiveConfig`].
    pub fn new(proc: usize) -> Self {
        Self::with_config(proc, AdaptiveConfig::default())
    }

    /// A manager for `proc` with explicit tuning.
    pub fn with_config(proc: usize, cfg: AdaptiveConfig) -> Self {
        AdaptiveManager {
            proc,
            cfg,
            fails: 0,
            last_owner: None,
            owner_losses: 0,
            escalated: false,
            board: None,
            losses_since_escalation: 0,
            forced: false,
        }
    }

    /// Attach the shared [`PriorityBoard`], enabling the escalation ladder
    /// (publish Escalated on starvation, claim the forced slot after
    /// [`AdaptiveConfig::forced_losses`] further losses, and defer to other
    /// procs' raised transactions).
    pub fn with_board(mut self, board: Arc<PriorityBoard>) -> Self {
        self.board = Some(board);
        self
    }

    /// Consecutive failed attempts since the last commit.
    pub fn consecutive_failures(&self) -> u64 {
        self.fails
    }

    /// Whether the starvation detector has escalated to help-first mode.
    pub fn is_escalated(&self) -> bool {
        self.escalated
    }

    /// Whether this manager holds the board's forced slot.
    pub fn is_forced(&self) -> bool {
        self.forced
    }

    /// Deterministic jitter: a value in `1..=window` hashed from
    /// `(proc, attempt)`.
    fn jitter(&self, attempt: u64, window: u64) -> u64 {
        let window = window.max(1);
        let h = (self.proc as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        (splitmix64(h) % window) + 1
    }
}

impl ContentionManager for AdaptiveManager {
    fn on_conflict(&mut self, info: &ConflictInfo) -> RetryDecision {
        self.fails += 1;
        match (info.owner, self.last_owner) {
            (Some(o), Some(prev)) if o == prev => self.owner_losses += 1,
            (Some(_), _) => self.owner_losses = 1,
            (None, _) => self.owner_losses = 0,
        }
        self.last_owner = info.owner;

        let starved = (self.owner_losses >= self.cfg.starvation_losses)
            || (self.fails >= self.cfg.starvation_attempts);
        let newly_escalated = starved && !self.escalated;
        self.escalated = self.escalated || starved;

        if let Some(board) = &self.board {
            if newly_escalated {
                board.raise(self.proc);
            } else if self.escalated && !self.forced {
                // Losses *after* the escalating conflict count toward forcing.
                self.losses_since_escalation += 1;
                if self.losses_since_escalation >= self.cfg.forced_losses {
                    self.forced = board.try_force(self.proc);
                }
            }
            // Back off from someone else's raised transaction: a full spin
            // window gives the starving proc a clear shot at its cells.
            if !self.escalated {
                if let Some(owner) = info.owner {
                    if owner != self.proc && board.level(owner) >= PriorityLevel::Escalated {
                        return RetryDecision {
                            wait: WaitAction::Spin(self.jitter(self.fails, self.cfg.spin_max)),
                            newly_escalated,
                        };
                    }
                }
            }
        }

        let wait = if self.escalated {
            // Help-first mode: clearing the obstruction is the priority;
            // waiting would only delay the help excursion.
            WaitAction::None
        } else if self.fails <= self.cfg.spin_attempts {
            let shift = (self.fails - 1).min(16) as u32;
            let window = self.cfg.spin_base.saturating_mul(1 << shift).min(self.cfg.spin_max);
            WaitAction::Spin(self.jitter(self.fails, window))
        } else if self.fails <= self.cfg.spin_attempts + self.cfg.yield_attempts {
            WaitAction::Yield
        } else {
            let k = (self.fails - self.cfg.spin_attempts - self.cfg.yield_attempts - 1).min(16);
            let window =
                self.cfg.park_base_micros.saturating_mul(1 << k).min(self.cfg.park_max_micros);
            WaitAction::Park { micros: self.jitter(self.fails, window) }
        };
        RetryDecision { wait, newly_escalated }
    }

    fn on_commit(&mut self) {
        self.fails = 0;
        self.last_owner = None;
        self.owner_losses = 0;
        self.escalated = false;
        self.losses_since_escalation = 0;
        self.forced = false;
        if let Some(board) = &self.board {
            board.clear(self.proc);
        }
    }

    fn help_first(&self) -> bool {
        self.escalated
    }

    fn priority(&self) -> PriorityLevel {
        if self.forced {
            PriorityLevel::Forced
        } else if self.escalated && self.board.is_some() {
            PriorityLevel::Escalated
        } else {
            PriorityLevel::Normal
        }
    }
}

/// SplitMix64 finalizer — the jitter hash (no external RNG dependency).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lost_to(owner: usize, attempt: u64) -> ConflictInfo {
        ConflictInfo { proc: 1, attempt, cell: Some(0), owner: Some(owner) }
    }

    #[test]
    fn lattice_escalates_spin_yield_park() {
        let cfg = AdaptiveConfig::default();
        let mut m = AdaptiveManager::with_config(1, cfg);
        // Alternate owners so the same-owner detector never trips.
        for a in 1..=cfg.spin_attempts {
            let d = m.on_conflict(&lost_to(a as usize % 2, a));
            assert!(matches!(d.wait, WaitAction::Spin(_)), "attempt {a}: {d:?}");
            assert!(!d.newly_escalated);
        }
        for a in cfg.spin_attempts + 1..=cfg.spin_attempts + cfg.yield_attempts {
            let d = m.on_conflict(&lost_to(a as usize % 2, a));
            assert_eq!(d.wait, WaitAction::Yield, "attempt {a}");
        }
        let a = cfg.spin_attempts + cfg.yield_attempts + 1;
        let d = m.on_conflict(&lost_to(a as usize % 2, a));
        assert!(matches!(d.wait, WaitAction::Park { .. }), "attempt {a}: {d:?}");
    }

    #[test]
    fn spin_and_park_windows_are_bounded_and_deterministic() {
        let cfg = AdaptiveConfig::default();
        for proc in 0..4 {
            let mut a = AdaptiveManager::with_config(proc, cfg);
            let mut b = AdaptiveManager::with_config(proc, cfg);
            for attempt in 1..30 {
                let da = a.on_conflict(&lost_to(attempt as usize % 2, attempt));
                let db = b.on_conflict(&lost_to(attempt as usize % 2, attempt));
                assert_eq!(da, db, "same proc and history must decide identically");
                match da.wait {
                    WaitAction::Spin(c) => assert!((1..=cfg.spin_max).contains(&c)),
                    WaitAction::Park { micros } => {
                        assert!((1..=cfg.park_max_micros).contains(&micros))
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn repeated_losses_to_same_owner_escalate_to_help_first() {
        let cfg = AdaptiveConfig::default();
        let mut m = AdaptiveManager::with_config(1, cfg);
        for a in 1..cfg.starvation_losses {
            let d = m.on_conflict(&lost_to(0, a));
            assert!(!d.newly_escalated);
            assert!(!m.help_first());
        }
        let d = m.on_conflict(&lost_to(0, cfg.starvation_losses));
        assert!(d.newly_escalated, "losing {} times to one owner must escalate", cfg.starvation_losses);
        assert!(m.help_first());
        assert_eq!(d.wait, WaitAction::None, "help-first mode retries immediately");
        // Escalation reports once; further conflicts stay escalated silently.
        let d = m.on_conflict(&lost_to(0, cfg.starvation_losses + 1));
        assert!(!d.newly_escalated);
        assert!(m.help_first());
        // Commit resets everything.
        m.on_commit();
        assert!(!m.help_first());
        assert_eq!(m.consecutive_failures(), 0);
    }

    #[test]
    fn attempt_count_alone_escalates_when_owner_is_unknown() {
        let cfg = AdaptiveConfig::default();
        let mut m = AdaptiveManager::with_config(0, cfg);
        for a in 1..cfg.starvation_attempts {
            let info = ConflictInfo { proc: 0, attempt: a, cell: None, owner: None };
            assert!(!m.on_conflict(&info).newly_escalated);
        }
        let info = ConflictInfo { proc: 0, attempt: cfg.starvation_attempts, cell: None, owner: None };
        assert!(m.on_conflict(&info).newly_escalated);
    }

    #[test]
    fn immediate_retry_never_waits_or_escalates() {
        let mut m = ImmediateRetry;
        for a in 1..100 {
            let d = m.on_conflict(&lost_to(0, a));
            assert_eq!(d, RetryDecision::immediate());
            assert!(!m.help_first());
        }
    }

    #[test]
    fn board_ladder_escalates_then_forces_then_clears() {
        let cfg = AdaptiveConfig::default();
        let board = Arc::new(PriorityBoard::new(4));
        let mut m = AdaptiveManager::with_config(1, cfg).with_board(Arc::clone(&board));
        assert_eq!(m.priority(), PriorityLevel::Normal);
        // Trip the same-owner detector: board shows Escalated.
        for a in 1..=cfg.starvation_losses {
            m.on_conflict(&lost_to(0, a));
        }
        assert!(m.is_escalated());
        assert_eq!(m.priority(), PriorityLevel::Escalated);
        assert_eq!(board.level(1), PriorityLevel::Escalated);
        assert_eq!(board.forced_holder(), None);
        // `forced_losses` further losses claim the forced slot.
        for a in 1..=cfg.forced_losses {
            m.on_conflict(&lost_to(0, cfg.starvation_losses + a));
        }
        assert!(m.is_forced());
        assert_eq!(m.priority(), PriorityLevel::Forced);
        assert_eq!(board.level(1), PriorityLevel::Forced);
        assert_eq!(board.forced_holder(), Some(1));
        // Commit releases the slot and resets the level.
        m.on_commit();
        assert_eq!(m.priority(), PriorityLevel::Normal);
        assert_eq!(board.level(1), PriorityLevel::Normal);
        assert_eq!(board.forced_holder(), None);
    }

    #[test]
    fn forced_slot_is_exclusive() {
        let board = PriorityBoard::new(3);
        assert!(board.try_force(0));
        assert!(board.try_force(0), "re-claim by the holder is idempotent");
        assert!(!board.try_force(1), "slot is single-occupancy");
        assert_eq!(board.level(1), PriorityLevel::Normal);
        board.clear(0);
        assert!(board.try_force(1), "cleared slot is claimable again");
        assert_eq!(board.forced_holder(), Some(1));
        board.clear(1);
    }

    #[test]
    fn starving_procs_defer_to_escalated_owners() {
        let cfg = AdaptiveConfig::default();
        let board = Arc::new(PriorityBoard::new(4));
        board.raise(2);
        let mut m = AdaptiveManager::with_config(1, cfg).with_board(Arc::clone(&board));
        // First loss would normally spin with the tiny first-attempt window;
        // losing to the escalated proc 2 backs off with the full window knob.
        let d = m.on_conflict(&lost_to(2, 1));
        assert!(matches!(d.wait, WaitAction::Spin(_)));
        // The deferral must not stop this proc's own detector from tripping.
        for a in 2..=cfg.starvation_losses {
            m.on_conflict(&lost_to(2, a));
        }
        assert!(m.is_escalated(), "deferring proc still escalates eventually");
    }

    #[test]
    fn boardless_manager_never_reports_priority() {
        let cfg = AdaptiveConfig::default();
        let mut m = AdaptiveManager::with_config(1, cfg);
        for a in 1..40 {
            m.on_conflict(&lost_to(0, a));
            assert_eq!(m.priority(), PriorityLevel::Normal, "no board, no ladder");
        }
        assert!(m.is_escalated(), "help-first escalation is board-independent");
    }

    #[test]
    fn splitmix_spreads_consecutive_seeds() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a >> 32, b >> 32, "high bits must differ too");
    }
}
