//! Always-on flight recorder: a lock-free, per-thread ring of compact
//! transaction events.
//!
//! [`FlightRecorder`] is a [`TxObserver`] that appends one fixed-width
//! record per *coarse* lifecycle event — attempt begin, conflict (with the
//! owning proc and cell), help, commit, abort, backoff, starvation
//! escalation, panic, journal flush, recovery replay, forced commit,
//! deferred conflict, delta commit — into a power-of-two
//! [`FlightBuffer`]. Per-cell micro events (`cell_acquired`, `write_back`,
//! `released`) are deliberately *not* recorded: they dominate event volume
//! and would blow the ≤5% overhead budget the bench gate enforces.
//!
//! # Memory-ordering argument
//!
//! Each buffer has exactly **one writer** (the owning transaction thread)
//! and any number of concurrent readers (aggregators taking snapshots).
//! Every slot is a tiny seqlock:
//!
//! * the writer stores `seq = 2h + 1` (odd: write in progress, `h` is the
//!   global event index landing in this slot), publishes the four payload
//!   words with `Relaxed` stores behind a `Release` fence, then stores
//!   `seq = 2h + 2` (even: slot holds event `h`) with `Release`, and
//!   finally advances the shared head with `Release`;
//! * a reader loads `seq` with `Acquire`, copies the payload, issues an
//!   `Acquire` fence, and re-loads `seq`. The copy is coherent **iff** both
//!   loads observed the same even value `2h + 2`; otherwise the slot was
//!   concurrently overwritten and the reader counts it as dropped instead
//!   of surfacing torn data.
//!
//! The writer never waits, never loops, and never takes a branch that
//! depends on readers — appends are wait-free and the recorder adds no
//! [`MemPort`](crate::machine::MemPort) traffic, so attaching it to a
//! simulated run leaves default-config schedules bit-identical (the
//! `telemetry` test suite pins this with a proptest oracle).

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::observe::TxObserver;
use crate::word::CellIdx;

/// Default per-thread ring capacity (events) used by convenience
/// constructors; callers with tighter memory budgets can pass their own.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Operation tag meaning "no operation registered" on an [`OpBoard`].
pub const NO_OP_TAG: u32 = 0;

/// Operation tags are truncated to this many bits when packed into a slot.
const OP_TAG_BITS: u32 = 24;
const OP_TAG_MASK: u32 = (1 << OP_TAG_BITS) - 1;

/// Sentinel for "no cell" in a [`FlightKind::Conflict`] record's `a` word.
const NO_CELL: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Event encoding
// ---------------------------------------------------------------------------

/// Discriminant of a [`FlightEvent`]. Only coarse lifecycle events are
/// recorded; see the module docs for why per-cell events are omitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum FlightKind {
    /// A transaction attempt started (`a` = attempt ordinal).
    AttemptBegin = 1,
    /// The attempt lost to a conflicting owner (`a` = cell or `NO_CELL`,
    /// `b` = packed owner; see [`FlightEvent::conflict_owner`]).
    Conflict = 2,
    /// The victim started helping the obstructing owner (`a` = owner proc).
    HelpBegin = 3,
    /// Helping the owner finished (`a` = owner proc).
    HelpEnd = 4,
    /// The transaction committed (`a` = attempts used, `b` = cycles since
    /// the last `AttemptBegin`).
    Committed = 5,
    /// The attempt aborted (`a` = failing acquisition position, `b` =
    /// cycles since the last `AttemptBegin` — the cycles lost to the
    /// conflict).
    Aborted = 6,
    /// The contention manager imposed a wait (`a` = attempt, `b` = amount).
    BackoffWait = 7,
    /// Starvation escalation fired (`a` = attempts, `b` = owner proc + 1,
    /// or 0 when no specific owner was blamed).
    StarvationEscalated = 8,
    /// The user operation panicked (`a` = attempts so far).
    OpPanicked = 9,
    /// A journal batch was flushed (`a` = records `<< 32 |` bytes, `b` =
    /// flush latency in cycles).
    JournalFlush = 10,
    /// Recovery replayed a journal (`a` = records scanned, `b` = installed).
    RecoveryReplayed = 11,
    /// An escalated transaction committed at the forced tier (`a` =
    /// attempts used).
    ForcedCommit = 12,
    /// A helper declined to fail a higher-priority owner's live transaction
    /// (`a` = owner proc).
    ConflictDeferred = 13,
    /// A dynamic transaction committed via delta-revalidation (`a` = read
    /// cells that had changed and were refreshed in place).
    DeltaCommit = 14,
    /// A blocking dynamic transaction parked on its read set (`a` = watched
    /// cells).
    RetryBlocked = 15,
    /// A parked blocking transaction returned from its park (`a` =
    /// cumulative wakeups for this call).
    RetryWoken = 16,
    /// A cell span was handed out by a
    /// [`CellArena`](crate::arena::CellArena) (`a` = first cell index,
    /// `b` = live cells after the allocation).
    CellAlloc = 17,
    /// A cell span was returned to the arena (`a` = first cell index,
    /// `b` = live cells after the free).
    CellFree = 18,
}

impl FlightKind {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::AttemptBegin,
            2 => Self::Conflict,
            3 => Self::HelpBegin,
            4 => Self::HelpEnd,
            5 => Self::Committed,
            6 => Self::Aborted,
            7 => Self::BackoffWait,
            8 => Self::StarvationEscalated,
            9 => Self::OpPanicked,
            10 => Self::JournalFlush,
            11 => Self::RecoveryReplayed,
            12 => Self::ForcedCommit,
            13 => Self::ConflictDeferred,
            14 => Self::DeltaCommit,
            15 => Self::RetryBlocked,
            16 => Self::RetryWoken,
            17 => Self::CellAlloc,
            18 => Self::CellFree,
            _ => return None,
        })
    }

    /// Short human-readable label, stable for dumps and tests.
    pub fn label(self) -> &'static str {
        match self {
            Self::AttemptBegin => "attempt_begin",
            Self::Conflict => "conflict",
            Self::HelpBegin => "help_begin",
            Self::HelpEnd => "help_end",
            Self::Committed => "committed",
            Self::Aborted => "aborted",
            Self::BackoffWait => "backoff_wait",
            Self::StarvationEscalated => "starvation_escalated",
            Self::OpPanicked => "op_panicked",
            Self::JournalFlush => "journal_flush",
            Self::RecoveryReplayed => "recovery_replayed",
            Self::ForcedCommit => "forced_commit",
            Self::ConflictDeferred => "conflict_deferred",
            Self::DeltaCommit => "delta_commit",
            Self::RetryBlocked => "retry_blocked",
            Self::RetryWoken => "retry_woken",
            Self::CellAlloc => "cell_alloc",
            Self::CellFree => "cell_free",
        }
    }
}

/// One decoded flight-recorder record: 32 bytes of payload in the ring.
///
/// `a` and `b` are kind-specific (documented on [`FlightKind`]); the typed
/// accessors below decode the packed forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightKind,
    /// The proc the event happened on.
    pub proc: u32,
    /// Operation tag of the recording proc's current op (24 bits;
    /// [`NO_OP_TAG`] when untagged). See [`FlightRecorder::set_op`].
    pub op: u32,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// `MemPort::now()` at record time (virtual cycles on the sim, 0 on
    /// hosts without a cycle source).
    pub at: u64,
}

impl FlightEvent {
    /// For [`FlightKind::Conflict`]: the cell whose acquisition failed,
    /// when the protocol could identify one.
    pub fn conflict_cell(&self) -> Option<CellIdx> {
        if self.kind == FlightKind::Conflict && self.a != NO_CELL {
            Some(self.a as CellIdx)
        } else {
            None
        }
    }

    /// For [`FlightKind::Conflict`]: `(owner proc, owner op tag)` of the
    /// transaction that held the contested ownership, when known.
    pub fn conflict_owner(&self) -> Option<(u32, u32)> {
        if self.kind == FlightKind::Conflict && self.b >> 63 == 1 {
            Some((self.b as u32, (self.b >> 32) as u32 & OP_TAG_MASK))
        } else {
            None
        }
    }

    /// For [`FlightKind::Committed`] / [`FlightKind::Aborted`]: cycles
    /// elapsed since the attempt began (0 on hosts without a cycle source).
    pub fn cycles(&self) -> u64 {
        match self.kind {
            FlightKind::Committed | FlightKind::Aborted => self.b,
            _ => 0,
        }
    }

    fn encode(&self) -> [u64; 4] {
        let w0 = ((self.kind as u64) << 56)
            | (u64::from(self.op & OP_TAG_MASK) << 32)
            | u64::from(self.proc);
        [w0, self.a, self.b, self.at]
    }

    fn decode(w: [u64; 4]) -> Option<Self> {
        Some(Self {
            kind: FlightKind::from_u8((w[0] >> 56) as u8)?,
            proc: w[0] as u32,
            op: (w[0] >> 32) as u32 & OP_TAG_MASK,
            a: w[1],
            b: w[2],
            at: w[3],
        })
    }

    fn conflict(proc: u32, op: u32, cell: Option<CellIdx>, owner: Option<(u32, u32)>, at: u64) -> Self {
        let b = match owner {
            Some((p, tag)) => (1u64 << 63) | (u64::from(tag & OP_TAG_MASK) << 32) | u64::from(p),
            None => 0,
        };
        Self {
            kind: FlightKind::Conflict,
            proc,
            op,
            a: cell.map_or(NO_CELL, |c| c as u64),
            b,
            at,
        }
    }
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

struct Slot {
    /// Seqlock word: 0 = never written, `2h + 1` = event `h` in flight,
    /// `2h + 2` = event `h` published.
    seq: AtomicU64,
    w: [AtomicU64; 4],
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            w: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// Result of [`FlightBuffer::read_since`].
#[derive(Debug, Clone, Default)]
pub struct RingRead {
    /// Events recovered coherently, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events lost since the caller's cursor: overwritten before they were
    /// read, plus any slot torn by a concurrent write during this read.
    pub dropped: u64,
    /// Cursor to pass to the next `read_since` call.
    pub cursor: u64,
}

/// Fixed-size power-of-two ring of [`FlightEvent`]s with one wait-free
/// writer and lock-free snapshot readers. See the module docs for the
/// seqlock protocol and memory-ordering argument.
pub struct FlightBuffer {
    mask: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for FlightBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightBuffer")
            .field("capacity", &self.slots.len())
            .field("written", &self.written())
            .finish()
    }
}

impl FlightBuffer {
    /// Allocate a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        Self {
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of event slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever appended (monotone; not bounded by capacity).
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Append one event. Wait-free; must only be called from the single
    /// owning writer thread (enforced by [`FlightRecorder`] holding the
    /// only append path).
    #[inline]
    pub fn append(&self, ev: &FlightEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        let words = ev.encode();
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, &v) in slot.w.iter().zip(&words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out every event with index `>= cursor` that is still resident,
    /// counting anything already overwritten (or torn mid-read) as dropped.
    pub fn read_since(&self, cursor: u64) -> RingRead {
        let head = self.written();
        let cap = self.slots.len() as u64;
        let lo = cursor.max(head.saturating_sub(cap));
        let mut out = RingRead {
            events: Vec::with_capacity((head - lo) as usize),
            dropped: lo - cursor,
            cursor: head,
        };
        for idx in lo..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            let expect = 2 * idx + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expect {
                // Already recycled for a newer event (or still in flight
                // after a torn writer death): the record is gone.
                out.dropped += 1;
                continue;
            }
            let words = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
            ];
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            match (s2 == s1, FlightEvent::decode(words)) {
                (true, Some(ev)) => out.events.push(ev),
                _ => out.dropped += 1,
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Op board
// ---------------------------------------------------------------------------

/// Shared proc → operation-tag board.
///
/// Each worker publishes the tag of the operation it is currently running
/// ([`FlightRecorder::set_op`]); a victim reads the *aborter's* tag here at
/// conflict time, giving the attribution layer victim-op → aborter-op
/// pairs without touching the transactional memory port (so simulated
/// schedules stay untouched).
#[derive(Debug)]
pub struct OpBoard {
    tags: Box<[AtomicU32]>,
}

impl OpBoard {
    /// Board for `procs` workers, all initially [`NO_OP_TAG`].
    pub fn new(procs: usize) -> Self {
        Self {
            tags: (0..procs).map(|_| AtomicU32::new(NO_OP_TAG)).collect(),
        }
    }

    /// Publish `tag` as proc `proc`'s current operation.
    #[inline]
    pub fn set(&self, proc: usize, tag: u32) {
        if let Some(t) = self.tags.get(proc) {
            t.store(tag & OP_TAG_MASK, Ordering::Relaxed);
        }
    }

    /// Read proc `proc`'s current operation tag ([`NO_OP_TAG`] if unknown).
    #[inline]
    pub fn get(&self, proc: usize) -> u32 {
        self.tags.get(proc).map_or(NO_OP_TAG, |t| t.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Per-thread flight recorder: a [`TxObserver`] appending compact records
/// into its [`FlightBuffer`].
///
/// Construct one per worker thread (e.g. via
/// [`MetricsRegistry::recorder`](crate::export::MetricsRegistry::recorder))
/// and pass it to [`TxOptions::observer`](crate::stm::TxOptions::observer).
/// The buffer is shared (`Arc`), so aggregators can snapshot concurrently
/// while the worker keeps committing.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Arc<FlightBuffer>,
    board: Option<Arc<OpBoard>>,
    proc: u32,
    op: u32,
    attempt_started: u64,
    cursor: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Recorder for `proc` with a private ring of `capacity` events.
    pub fn new(proc: usize, capacity: usize) -> Self {
        Self::from_parts(proc, Arc::new(FlightBuffer::new(capacity)), None)
    }

    /// Recorder for `proc` publishing its op tag on (and reading aborter
    /// tags from) a shared [`OpBoard`].
    pub fn with_board(proc: usize, capacity: usize, board: Arc<OpBoard>) -> Self {
        Self::from_parts(proc, Arc::new(FlightBuffer::new(capacity)), Some(board))
    }

    /// Recorder over an existing shared buffer (used by the registry).
    pub fn from_parts(proc: usize, buf: Arc<FlightBuffer>, board: Option<Arc<OpBoard>>) -> Self {
        Self {
            buf,
            board,
            proc: proc as u32,
            op: NO_OP_TAG,
            attempt_started: 0,
            cursor: 0,
            dropped: 0,
        }
    }

    /// Tag subsequent events (and this proc's [`OpBoard`] entry) with
    /// operation `tag`. Tags are app-defined, truncated to 24 bits;
    /// [`NO_OP_TAG`] means untagged.
    #[inline]
    pub fn set_op(&mut self, tag: u32) {
        self.op = tag & OP_TAG_MASK;
        if let Some(b) = &self.board {
            b.set(self.proc as usize, self.op);
        }
    }

    /// The shared ring this recorder appends to.
    pub fn buffer(&self) -> Arc<FlightBuffer> {
        Arc::clone(&self.buf)
    }

    /// The proc this recorder was built for.
    pub fn proc(&self) -> usize {
        self.proc as usize
    }

    /// Cumulative events lost to ring overwrite across all [`drain`]
    /// calls so far.
    ///
    /// [`drain`]: Self::drain
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain every event recorded since the previous drain (oldest first).
    /// Events overwritten before this call are counted in [`dropped`],
    /// never silently lost.
    ///
    /// [`dropped`]: Self::dropped
    pub fn drain(&mut self) -> Vec<FlightEvent> {
        let read = self.buf.read_since(self.cursor);
        self.cursor = read.cursor;
        self.dropped += read.dropped;
        read.events
    }

    /// Record a [`CellArena`](crate::arena::CellArena) allocation: `cell` is
    /// the first index of the span, `live` the arena's live-cell count after
    /// it. Arena bookkeeping is host-side, so the arena cannot observe a
    /// clock — callers time-stamp, exactly as with the observer callbacks.
    #[inline]
    pub fn cell_alloc(&mut self, proc: usize, cell: CellIdx, live: u64, now: u64) {
        self.push(FlightKind::CellAlloc, proc, cell as u64, live, now);
    }

    /// Record a [`CellArena`](crate::arena::CellArena) free (counterpart of
    /// [`cell_alloc`](Self::cell_alloc)).
    #[inline]
    pub fn cell_free(&mut self, proc: usize, cell: CellIdx, live: u64, now: u64) {
        self.push(FlightKind::CellFree, proc, cell as u64, live, now);
    }

    #[inline]
    fn push(&mut self, kind: FlightKind, proc: usize, a: u64, b: u64, at: u64) {
        self.buf.append(&FlightEvent {
            kind,
            proc: proc as u32,
            op: self.op,
            a,
            b,
            at,
        });
    }
}

impl TxObserver for FlightRecorder {
    #[inline]
    fn attempt_begin(&mut self, proc: usize, attempt: u64, now: u64) {
        self.attempt_started = now;
        self.push(FlightKind::AttemptBegin, proc, attempt, 0, now);
    }

    #[inline]
    fn conflict(&mut self, proc: usize, cell: Option<CellIdx>, owner: Option<usize>, now: u64) {
        let owner = owner.map(|p| {
            let tag = self.board.as_ref().map_or(NO_OP_TAG, |b| b.get(p));
            (p as u32, tag)
        });
        self.buf
            .append(&FlightEvent::conflict(proc as u32, self.op, cell, owner, now));
    }

    #[inline]
    fn help_begin(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(FlightKind::HelpBegin, proc, owner as u64, 0, now);
    }

    #[inline]
    fn help_end(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(FlightKind::HelpEnd, proc, owner as u64, 0, now);
    }

    #[inline]
    fn committed(&mut self, proc: usize, attempts: u64, now: u64) {
        let cycles = now.saturating_sub(self.attempt_started);
        self.push(FlightKind::Committed, proc, attempts, cycles, now);
    }

    #[inline]
    fn aborted(&mut self, proc: usize, at: usize, now: u64) {
        let cycles = now.saturating_sub(self.attempt_started);
        self.push(FlightKind::Aborted, proc, at as u64, cycles, now);
    }

    #[inline]
    fn backoff_wait(&mut self, proc: usize, attempt: u64, amount: u64, now: u64) {
        self.push(FlightKind::BackoffWait, proc, attempt, amount, now);
    }

    #[inline]
    fn starvation_escalated(&mut self, proc: usize, owner: Option<usize>, attempts: u64, now: u64) {
        let owner = owner.map_or(0, |p| p as u64 + 1);
        self.push(FlightKind::StarvationEscalated, proc, attempts, owner, now);
    }

    #[inline]
    fn op_panicked(&mut self, proc: usize, attempts: u64, now: u64) {
        self.push(FlightKind::OpPanicked, proc, attempts, 0, now);
    }

    #[inline]
    fn journal_flush(&mut self, proc: usize, records: u64, bytes: u64, latency: u64, now: u64) {
        let a = (records.min(u64::from(u32::MAX)) << 32) | bytes.min(u64::from(u32::MAX));
        self.push(FlightKind::JournalFlush, proc, a, latency, now);
    }

    #[inline]
    fn recovery_replayed(&mut self, records: u64, installed: u64, now: u64) {
        let proc = self.proc as usize;
        self.push(FlightKind::RecoveryReplayed, proc, records, installed, now);
    }

    #[inline]
    fn conflict_deferred(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(FlightKind::ConflictDeferred, proc, owner as u64, 0, now);
    }

    #[inline]
    fn forced_commit(&mut self, proc: usize, attempts: u64, now: u64) {
        self.push(FlightKind::ForcedCommit, proc, attempts, 0, now);
    }

    #[inline]
    fn delta_committed(&mut self, proc: usize, cells_changed: u64, now: u64) {
        self.push(FlightKind::DeltaCommit, proc, cells_changed, 0, now);
    }

    #[inline]
    fn retry_blocked(&mut self, proc: usize, watched: u64, now: u64) {
        self.push(FlightKind::RetryBlocked, proc, watched, 0, now);
    }

    #[inline]
    fn retry_woken(&mut self, proc: usize, wakeups: u64, now: u64) {
        self.push(FlightKind::RetryWoken, proc, wakeups, 0, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FlightKind, proc: u32, a: u64, b: u64, at: u64) -> FlightEvent {
        FlightEvent { kind, proc, op: 7, a, b, at }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            ev(FlightKind::AttemptBegin, 3, 9, 0, 100),
            FlightEvent::conflict(1, 2, Some(42), Some((5, 0xabcdef)), 77),
            FlightEvent::conflict(1, 2, None, None, 78),
            ev(FlightKind::Committed, 0, 4, 880, 999),
            ev(FlightKind::JournalFlush, 2, (3 << 32) | 128, 17, 5),
        ];
        for c in cases {
            assert_eq!(FlightEvent::decode(c.encode()), Some(c));
        }
        let conflicted = FlightEvent::conflict(1, 2, Some(42), Some((5, 0xabcdef)), 77);
        assert_eq!(conflicted.conflict_cell(), Some(42));
        assert_eq!(conflicted.conflict_owner(), Some((5, 0xabcdef)));
        assert_eq!(FlightEvent::conflict(1, 2, None, None, 0).conflict_owner(), None);
    }

    #[test]
    fn ring_drains_in_order_and_counts_overflow() {
        let buf = FlightBuffer::new(8);
        for i in 0..20u64 {
            buf.append(&ev(FlightKind::AttemptBegin, 0, i, 0, i));
        }
        let read = buf.read_since(0);
        // Capacity 8: only the last 8 events survive, 12 are dropped.
        assert_eq!(read.dropped, 12);
        assert_eq!(read.events.len(), 8);
        assert_eq!(read.events.first().map(|e| e.a), Some(12));
        assert_eq!(read.events.last().map(|e| e.a), Some(19));
        assert_eq!(read.cursor, 20);
        // A second read from the returned cursor sees nothing new.
        let again = buf.read_since(read.cursor);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn recorder_drain_preserves_written_accounting() {
        let mut rec = FlightRecorder::new(1, 8);
        let buf = rec.buffer();
        for i in 0..30 {
            rec.attempt_begin(1, i, i);
        }
        let drained = rec.drain();
        assert_eq!(drained.len() as u64 + rec.dropped(), buf.written());
        assert!(rec.dropped() > 0, "tiny ring must overflow");
    }

    #[test]
    fn board_attribution_tags_conflicts() {
        let board = Arc::new(OpBoard::new(4));
        board.set(2, 0x1234);
        let mut rec = FlightRecorder::with_board(0, 32, Arc::clone(&board));
        rec.set_op(0x42);
        rec.conflict(0, Some(7), Some(2), 10);
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, 0x42);
        assert_eq!(events[0].conflict_cell(), Some(7));
        assert_eq!(events[0].conflict_owner(), Some((2, 0x1234)));
    }

    #[test]
    fn concurrent_reader_never_sees_torn_slots() {
        let buf = Arc::new(FlightBuffer::new(64));
        let writer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    buf.append(&ev(FlightKind::Committed, 0, i, i.wrapping_mul(3), i));
                }
            })
        };
        let mut cursor = 0;
        let mut seen = 0u64;
        while seen < 50_000 {
            let read = buf.read_since(cursor);
            cursor = read.cursor;
            for e in &read.events {
                // Payload invariant: b == 3*a for every coherent record.
                assert_eq!(e.b, e.a.wrapping_mul(3), "torn slot surfaced");
            }
            seen += read.events.len() as u64 + read.dropped;
        }
        writer.join().unwrap();
    }
}
