//! Live metrics export: aggregate per-thread flight recorders into
//! periodic snapshots, and encode them as OpenMetrics text or JSON.
//!
//! [`MetricsRegistry`] owns one shared [`FlightBuffer`] per worker proc
//! plus the [`OpBoard`] the recorders publish their operation tags on.
//! Workers hold a [`FlightRecorder`] (from [`MetricsRegistry::recorder`])
//! and keep committing; any thread may call
//! [`MetricsRegistry::snapshot`] concurrently to fold everything recorded
//! since the previous snapshot into cumulative counters, a conflict
//! [`Attribution`] blame table, and per-interval rates.
//!
//! Snapshots serialize to:
//!
//! * **OpenMetrics / Prometheus text** ([`encode_openmetrics`]) — the
//!   format scrapers expect, terminated by `# EOF`. A minimal validating
//!   parser ([`parse_openmetrics`]) round-trips the encoder's output; CI
//!   schema-lints every exported snapshot through it.
//! * **JSON** ([`snapshot_json`]) — a self-describing dump (schema
//!   `stm-top-snapshot/v1`) for artifacts and post-mortems.
//!
//! `stm-core` has no dependencies by design, so both encoders are
//! hand-rolled string builders.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::attribution::Attribution;
use crate::flight::{FlightBuffer, FlightEvent, FlightKind, FlightRecorder, OpBoard, NO_OP_TAG};
use crate::metrics::Log2Histogram;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Per-proc cumulative event counters folded from flight-recorder drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Attempts begun.
    pub attempts: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Attempts aborted.
    pub aborts: u64,
    /// Helping spans entered.
    pub helps: u64,
    /// Contention-manager waits.
    pub backoff_waits: u64,
    /// Starvation escalations to help-first mode.
    pub escalations: u64,
    /// Forced-tier commits (escalated past the forced-losses threshold).
    pub forced_commits: u64,
    /// Conflicts a helper deferred on instead of failing the owner.
    pub conflicts_deferred: u64,
    /// Dynamic commits that landed via delta-revalidation.
    pub delta_commits: u64,
    /// Contained op panics.
    pub op_panics: u64,
    /// Journal flushes.
    pub journal_flushes: u64,
    /// Arena cell-span allocations.
    pub cell_allocs: u64,
    /// Arena cell-span frees.
    pub cell_frees: u64,
    /// Total events folded (all kinds).
    pub events: u64,
    /// Events lost to ring overwrite before they could be folded.
    pub dropped: u64,
}

impl ProcCounters {
    fn absorb(&mut self, ev: &FlightEvent) {
        self.events += 1;
        match ev.kind {
            FlightKind::AttemptBegin => self.attempts += 1,
            FlightKind::Committed => self.commits += 1,
            FlightKind::Aborted => self.aborts += 1,
            FlightKind::HelpBegin => self.helps += 1,
            FlightKind::BackoffWait => self.backoff_waits += 1,
            FlightKind::StarvationEscalated => self.escalations += 1,
            FlightKind::ForcedCommit => self.forced_commits += 1,
            FlightKind::ConflictDeferred => self.conflicts_deferred += 1,
            FlightKind::DeltaCommit => self.delta_commits += 1,
            FlightKind::OpPanicked => self.op_panics += 1,
            FlightKind::JournalFlush => self.journal_flushes += 1,
            FlightKind::CellAlloc => self.cell_allocs += 1,
            FlightKind::CellFree => self.cell_frees += 1,
            _ => {}
        }
    }

    fn add(&mut self, o: &ProcCounters) {
        self.attempts += o.attempts;
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.helps += o.helps;
        self.backoff_waits += o.backoff_waits;
        self.escalations += o.escalations;
        self.forced_commits += o.forced_commits;
        self.conflicts_deferred += o.conflicts_deferred;
        self.delta_commits += o.delta_commits;
        self.op_panics += o.op_panics;
        self.journal_flushes += o.journal_flushes;
        self.cell_allocs += o.cell_allocs;
        self.cell_frees += o.cell_frees;
        self.events += o.events;
        self.dropped += o.dropped;
    }
}

/// One operation's latency histogram in a snapshot (workload-layer
/// observations merged in via [`MetricsRegistry::merge_latency`]).
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// The op tag the histogram belongs to.
    pub op: u32,
    /// Registered display name (`op<tag>` if unregistered).
    pub name: String,
    /// The merged histogram.
    pub hist: Log2Histogram,
}

/// A point-in-time aggregate of everything the registry has folded.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Cumulative counters per proc.
    pub procs: Vec<ProcCounters>,
    /// Sum over [`procs`](Self::procs).
    pub totals: ProcCounters,
    /// Wall-clock seconds since the previous snapshot.
    pub interval_secs: f64,
    /// Commits per second over the last interval.
    pub commit_rate: f64,
    /// Aborts per second over the last interval.
    pub abort_rate: f64,
    /// Help episodes per second over the last interval.
    pub help_rate: f64,
    /// Cumulative conflict blame table.
    pub attribution: Attribution,
    /// Per-op latency histograms, ascending op tag.
    pub latency: Vec<OpLatency>,
    /// Registered op-tag → name map (for resolving attribution pairs).
    pub op_names: BTreeMap<u32, String>,
}

impl MetricsSnapshot {
    /// Display name for an op tag in this snapshot.
    pub fn op_name(&self, tag: u32) -> String {
        match self.op_names.get(&tag) {
            Some(n) => n.clone(),
            None if tag == NO_OP_TAG => "untagged".to_string(),
            None => format!("op{tag}"),
        }
    }
}

struct RegistryState {
    cursors: Vec<u64>,
    procs: Vec<ProcCounters>,
    attribution: Attribution,
    latency: BTreeMap<u32, Log2Histogram>,
    op_names: BTreeMap<u32, String>,
    prev: ProcCounters,
    prev_at: Instant,
}

struct RegistryInner {
    board: Arc<OpBoard>,
    buffers: Vec<Arc<FlightBuffer>>,
    state: Mutex<RegistryState>,
}

/// Aggregator of per-thread [`FlightRecorder`]s into periodic
/// [`MetricsSnapshot`]s. Cheap to clone (shared `Arc` inner).
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("procs", &self.inner.buffers.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Registry for `procs` workers, each with a flight ring of
    /// `capacity` events.
    pub fn new(procs: usize, capacity: usize) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                board: Arc::new(OpBoard::new(procs)),
                buffers: (0..procs).map(|_| Arc::new(FlightBuffer::new(capacity))).collect(),
                state: Mutex::new(RegistryState {
                    cursors: vec![0; procs],
                    procs: vec![ProcCounters::default(); procs],
                    attribution: Attribution::new(),
                    latency: BTreeMap::new(),
                    op_names: BTreeMap::new(),
                    prev: ProcCounters::default(),
                    prev_at: Instant::now(),
                }),
            }),
        }
    }

    /// Number of worker procs this registry aggregates.
    pub fn procs(&self) -> usize {
        self.inner.buffers.len()
    }

    /// The shared proc → op-tag board.
    pub fn board(&self) -> Arc<OpBoard> {
        Arc::clone(&self.inner.board)
    }

    /// Build the flight recorder for worker `proc`, appending into this
    /// registry's shared ring for that proc.
    ///
    /// # Panics
    /// If `proc >= self.procs()`.
    pub fn recorder(&self, proc: usize) -> FlightRecorder {
        let buf = Arc::clone(&self.inner.buffers[proc]);
        FlightRecorder::from_parts(proc, buf, Some(self.board()))
    }

    /// Register a display name for op tag `tag` (used by exports).
    pub fn register_op(&self, tag: u32, name: &str) {
        let mut st = self.inner.state.lock().expect("registry poisoned");
        st.op_names.insert(tag, name.to_string());
    }

    /// Merge a workload-layer latency histogram (e.g. per-op wall-clock
    /// nanoseconds) into op `tag`'s cumulative histogram.
    pub fn merge_latency(&self, tag: u32, hist: &Log2Histogram) {
        let mut st = self.inner.state.lock().expect("registry poisoned");
        st.latency.entry(tag).or_default().merge(hist);
    }

    /// Drain every proc's ring since the previous snapshot, fold the
    /// events into cumulative counters and the blame table, and return
    /// the point-in-time aggregate with per-interval rates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut st = self.inner.state.lock().expect("registry poisoned");
        for (p, buf) in self.inner.buffers.iter().enumerate() {
            let read = buf.read_since(st.cursors[p]);
            st.cursors[p] = read.cursor;
            st.procs[p].dropped += read.dropped;
            for ev in &read.events {
                st.procs[p].absorb(ev);
            }
            st.attribution.fold(&read.events);
        }
        let mut totals = ProcCounters::default();
        for pc in &st.procs {
            totals.add(pc);
        }
        let interval_secs = st.prev_at.elapsed().as_secs_f64().max(1e-9);
        let rate = |now: u64, before: u64| now.saturating_sub(before) as f64 / interval_secs;
        let snap = MetricsSnapshot {
            procs: st.procs.clone(),
            totals,
            interval_secs,
            commit_rate: rate(totals.commits, st.prev.commits),
            abort_rate: rate(totals.aborts, st.prev.aborts),
            help_rate: rate(totals.helps, st.prev.helps),
            attribution: st.attribution.clone(),
            latency: st
                .latency
                .iter()
                .map(|(&op, hist)| OpLatency {
                    op,
                    name: st.op_names.get(&op).cloned().unwrap_or_else(|| format!("op{op}")),
                    hist: hist.clone(),
                })
                .collect(),
            op_names: st.op_names.clone(),
        };
        st.prev = totals;
        st.prev_at = Instant::now();
        snap
    }
}

// ---------------------------------------------------------------------------
// OpenMetrics encoding
// ---------------------------------------------------------------------------

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Encode a snapshot as OpenMetrics text (Prometheus exposition format,
/// `# EOF`-terminated). Hot-cell blame is bounded to the top 16 cells and
/// pairs to keep scrape size stable under wide heaps.
pub fn encode_openmetrics(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(4096);
    let counter = |s: &mut String, name: &str, help: &str, rows: &[(String, u64)]| {
        let _ = writeln!(s, "# HELP {name} {help}");
        let _ = writeln!(s, "# TYPE {name} counter");
        for (labels, v) in rows {
            let _ = writeln!(s, "{name}{labels} {v}");
        }
    };
    let per_proc = |field: fn(&ProcCounters) -> u64| -> Vec<(String, u64)> {
        snap.procs
            .iter()
            .enumerate()
            .map(|(p, pc)| (format!("{{proc=\"{p}\"}}"), field(pc)))
            .collect()
    };
    counter(&mut s, "stm_attempts_total", "Transaction attempts begun.", &per_proc(|p| p.attempts));
    counter(&mut s, "stm_commits_total", "Transactions committed.", &per_proc(|p| p.commits));
    counter(&mut s, "stm_aborts_total", "Transaction attempts aborted.", &per_proc(|p| p.aborts));
    counter(&mut s, "stm_helps_total", "Helping spans entered.", &per_proc(|p| p.helps));
    counter(
        &mut s,
        "stm_backoff_waits_total",
        "Contention-manager waits imposed.",
        &per_proc(|p| p.backoff_waits),
    );
    counter(
        &mut s,
        "stm_starvation_escalations_total",
        "Starvation escalations to help-first mode.",
        &per_proc(|p| p.escalations),
    );
    counter(
        &mut s,
        "stm_forced_commits_total",
        "Commits landed at the forced priority tier.",
        &per_proc(|p| p.forced_commits),
    );
    counter(
        &mut s,
        "stm_conflicts_deferred_total",
        "Conflicts a helper deferred on instead of failing the owner.",
        &per_proc(|p| p.conflicts_deferred),
    );
    counter(
        &mut s,
        "stm_delta_commits_total",
        "Dynamic commits landed via delta-revalidation.",
        &per_proc(|p| p.delta_commits),
    );
    counter(
        &mut s,
        "stm_op_panics_total",
        "Contained commit-program panics.",
        &per_proc(|p| p.op_panics),
    );
    counter(
        &mut s,
        "stm_journal_flushes_total",
        "Durable journal flushes.",
        &per_proc(|p| p.journal_flushes),
    );
    counter(
        &mut s,
        "stm_cell_allocs_total",
        "Arena cell-span allocations.",
        &per_proc(|p| p.cell_allocs),
    );
    counter(
        &mut s,
        "stm_cell_frees_total",
        "Arena cell-span frees.",
        &per_proc(|p| p.cell_frees),
    );
    counter(
        &mut s,
        "stm_flight_events_total",
        "Flight-recorder events folded.",
        &per_proc(|p| p.events),
    );
    counter(
        &mut s,
        "stm_flight_dropped_total",
        "Flight-recorder events lost to ring overwrite.",
        &per_proc(|p| p.dropped),
    );

    for (name, help, v) in [
        ("stm_commit_rate", "Commits per second over the last snapshot interval.", snap.commit_rate),
        ("stm_abort_rate", "Aborts per second over the last snapshot interval.", snap.abort_rate),
        ("stm_help_rate", "Help episodes per second over the last snapshot interval.", snap.help_rate),
    ] {
        let _ = writeln!(s, "# HELP {name} {help}");
        let _ = writeln!(s, "# TYPE {name} gauge");
        let _ = writeln!(s, "{name} {}", fmt_f64(v));
    }

    let top = snap.attribution.top_cells(16);
    if !top.is_empty() {
        let rows = |f: fn(&crate::attribution::CellBlame) -> u64| -> Vec<(String, u64)> {
            top.iter().map(|(c, b)| (format!("{{cell=\"{c}\"}}"), f(b))).collect()
        };
        counter(
            &mut s,
            "stm_cell_aborts_total",
            "Aborts attributed to losing this cell (top cells).",
            &rows(|b| b.aborts),
        );
        counter(
            &mut s,
            "stm_cell_helps_total",
            "Help episodes attributed to this cell (top cells).",
            &rows(|b| b.helps),
        );
        counter(
            &mut s,
            "stm_cell_cycles_lost_total",
            "Attempt cycles lost to aborts on this cell (top cells).",
            &rows(|b| b.cycles_lost),
        );
    }
    let mut pairs: Vec<((u32, u32), u64)> =
        snap.attribution.pairs().iter().map(|(&p, &n)| (p, n)).collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(16);
    if !pairs.is_empty() {
        let rows: Vec<(String, u64)> = pairs
            .iter()
            .map(|&((victim, aborter), n)| {
                (
                    format!(
                        "{{victim=\"{}\",aborter=\"{}\"}}",
                        escape_label(&snap.op_name(victim)),
                        escape_label(&snap.op_name(aborter))
                    ),
                    n,
                )
            })
            .collect();
        counter(
            &mut s,
            "stm_conflict_pairs_total",
            "Conflicts by victim-op and aborter-op (top pairs).",
            &rows,
        );
    }

    if !snap.latency.is_empty() {
        let name = "stm_op_latency";
        let _ = writeln!(s, "# HELP {name} Per-operation latency (workload units, log2 buckets).");
        let _ = writeln!(s, "# TYPE {name} histogram");
        for ol in &snap.latency {
            let op = escape_label(&ol.name);
            let mut cumulative = 0u64;
            for (low, n) in ol.hist.nonzero_buckets() {
                cumulative += n;
                // `low` is the bucket's inclusive lower bound; its inclusive
                // upper bound is the next bucket's low - 1, but emitting the
                // observed cumulative count at `le = 2*low.max(1) - 1`
                // (bucket upper edge) keeps buckets parseable without
                // emitting all 65.
                let le = if low == 0 { 0 } else { 2 * low - 1 };
                let _ = writeln!(s, "{name}_bucket{{op=\"{op}\",le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(s, "{name}_bucket{{op=\"{op}\",le=\"+Inf\"}} {}", ol.hist.count());
            let _ = writeln!(s, "{name}_sum{{op=\"{op}\"}} {}", ol.hist.sum());
            let _ = writeln!(s, "{name}_count{{op=\"{op}\"}} {}", ol.hist.count());
        }
    }

    s.push_str("# EOF\n");
    s
}

// ---------------------------------------------------------------------------
// OpenMetrics parsing (schema lint)
// ---------------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// Result of [`parse_openmetrics`].
#[derive(Debug, Clone, Default)]
pub struct ParsedMetrics {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → type string.
    pub types: BTreeMap<String, String>,
}

impl ParsedMetrics {
    /// Value of the first sample matching `name` with every label in
    /// `labels` present with the given value.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .map(|s| s.value)
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value after {key}"));
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                '"' => {
                    end = Some(i + 2); // skip opening quote + this index
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {key}"))?;
        labels.push((key, value));
        // `end` indexes into `after` just past the closing quote.
        rest = after[end..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

/// Minimal validating parser for the subset of OpenMetrics that
/// [`encode_openmetrics`] produces: `# HELP`/`# TYPE` metadata, labeled
/// samples, and a mandatory trailing `# EOF`. Rejects samples whose
/// family was never given a `# TYPE`, malformed labels, and unparseable
/// values — the properties CI lints every exported snapshot for.
pub fn parse_openmetrics(text: &str) -> Result<ParsedMetrics, String> {
    let mut out = ParsedMetrics::default();
    let mut saw_eof = false;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("line {ln}: content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(meta) = line.strip_prefix("# ") {
            let mut parts = meta.splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or(format!("line {ln}: TYPE without name"))?;
                    let kind = parts.next().ok_or(format!("line {ln}: TYPE without kind"))?;
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "unknown") {
                        return Err(format!("line {ln}: unknown TYPE kind {kind:?}"));
                    }
                    out.types.insert(name.to_string(), kind.to_string());
                }
                Some("HELP") => {}
                _ => return Err(format!("line {ln}: unrecognized comment {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: unrecognized comment {line:?}"));
        }
        // Sample: name[{labels}] value
        let (name_labels, value) =
            line.rsplit_once(' ').ok_or(format!("line {ln}: sample without value"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| format!("line {ln}: bad value {v:?}"))?,
        };
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {ln}: unterminated label set"))?;
                (n.to_string(), parse_labels(body).map_err(|e| format!("line {ln}: {e}"))?)
            }
            None => (name_labels.to_string(), Vec::new()),
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| out.types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&name);
        if !out.types.contains_key(family) {
            return Err(format!("line {ln}: sample {name:?} has no # TYPE declaration"));
        }
        out.samples.push(Sample { name, labels, value });
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn counters_json(pc: &ProcCounters) -> String {
    format!(
        "{{\"attempts\":{},\"commits\":{},\"aborts\":{},\"helps\":{},\
         \"backoff_waits\":{},\"escalations\":{},\"forced_commits\":{},\
         \"conflicts_deferred\":{},\"delta_commits\":{},\"op_panics\":{},\
         \"journal_flushes\":{},\"cell_allocs\":{},\"cell_frees\":{},\
         \"events\":{},\"dropped\":{}}}",
        pc.attempts,
        pc.commits,
        pc.aborts,
        pc.helps,
        pc.backoff_waits,
        pc.escalations,
        pc.forced_commits,
        pc.conflicts_deferred,
        pc.delta_commits,
        pc.op_panics,
        pc.journal_flushes,
        pc.cell_allocs,
        pc.cell_frees,
        pc.events,
        pc.dropped
    )
}

/// Encode a snapshot as a self-describing JSON document (schema
/// `stm-top-snapshot/v1`): totals, per-proc counters, interval rates, the
/// blame table (cells + victim/aborter pairs), and per-op latency
/// percentiles from [`Log2Histogram::percentile`].
pub fn snapshot_json(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0".to_string()
        }
    };
    let mut s = String::with_capacity(2048);
    s.push_str("{\"schema\":\"stm-top-snapshot/v1\"");
    let _ = write!(s, ",\"totals\":{}", counters_json(&snap.totals));
    s.push_str(",\"procs\":[");
    for (i, pc) in snap.procs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&counters_json(pc));
    }
    s.push(']');
    let _ = write!(
        s,
        ",\"rates\":{{\"interval_secs\":{},\"commits_per_sec\":{},\
         \"aborts_per_sec\":{},\"helps_per_sec\":{}}}",
        num(snap.interval_secs),
        num(snap.commit_rate),
        num(snap.abort_rate),
        num(snap.help_rate)
    );
    let attr = &snap.attribution;
    let _ = write!(
        s,
        ",\"attribution\":{{\"aborts\":{},\"helps\":{},\"cycles_lost\":{},\
         \"escalations\":{},\"forced_commits\":{},\"deferrals\":{},\
         \"delta_commits\":{},\"cell_allocs\":{},\"cell_frees\":{},\"cells\":[",
        attr.aborts(),
        attr.helps(),
        attr.cycles_lost(),
        attr.escalations(),
        attr.forced_commits(),
        attr.deferrals(),
        attr.delta_commits(),
        attr.cell_allocs(),
        attr.cell_frees()
    );
    for (i, (cell, blame)) in attr.top_cells(16).into_iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"cell\":{cell},\"aborts\":{},\"helps\":{},\"cycles_lost\":{}}}",
            blame.aborts, blame.helps, blame.cycles_lost
        );
    }
    s.push_str("],\"pairs\":[");
    let mut pairs: Vec<((u32, u32), u64)> = attr.pairs().iter().map(|(&p, &n)| (p, n)).collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (i, ((victim, aborter), n)) in pairs.into_iter().take(16).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"victim\":\"{}\",\"aborter\":\"{}\",\"count\":{n}}}",
            json_escape(&snap.op_name(victim)),
            json_escape(&snap.op_name(aborter))
        );
    }
    s.push_str("]}");
    s.push_str(",\"latency\":[");
    for (i, ol) in snap.latency.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let h = &ol.hist;
        let _ = write!(
            s,
            "{{\"op\":\"{}\",\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\
             \"p99\":{},\"max\":{}}}",
            json_escape(&ol.name),
            h.count(),
            num(h.mean()),
            num(h.percentile(50.0)),
            num(h.percentile(90.0)),
            num(h.percentile(99.0)),
            h.max()
        );
    }
    s.push(']');
    let _ = write!(s, ",\"flight_dropped\":{}", snap.totals.dropped);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TxObserver;

    fn contended_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new(2, 256);
        reg.register_op(1, "hot-add");
        reg.register_op(2, "transfer");
        let mut r0 = reg.recorder(0);
        let mut r1 = reg.recorder(1);
        r0.set_op(1);
        r1.set_op(2);
        r0.attempt_begin(0, 1, 0);
        r0.conflict(0, Some(3), Some(1), 10);
        r0.help_begin(0, 1, 10);
        r0.help_end(0, 1, 20);
        r0.aborted(0, 0, 30);
        r0.attempt_begin(0, 2, 30);
        r0.committed(0, 2, 40);
        r1.attempt_begin(1, 1, 0);
        r1.committed(1, 1, 8);
        let mut lat = Log2Histogram::new();
        for v in [120, 340, 900, 1800] {
            lat.record(v);
        }
        reg.merge_latency(1, &lat);
        reg.snapshot()
    }

    #[test]
    fn registry_folds_counters_and_blame() {
        let snap = contended_snapshot();
        assert_eq!(snap.totals.commits, 2);
        assert_eq!(snap.totals.aborts, 1);
        assert_eq!(snap.totals.helps, 1);
        assert_eq!(snap.procs[0].commits, 1);
        assert!(snap.commit_rate > 0.0);
        assert_eq!(snap.attribution.aborts(), 1);
        assert_eq!(snap.attribution.cells()[&3].aborts, 1);
        // Victim op 1 ("hot-add") was aborted by proc 1's op 2 ("transfer"),
        // resolved through the shared board.
        assert_eq!(snap.attribution.pairs()[&(1, 2)], 1);
        assert_eq!(snap.latency.len(), 1);
        assert_eq!(snap.latency[0].name, "hot-add");
    }

    #[test]
    fn openmetrics_roundtrip() {
        let snap = contended_snapshot();
        let text = encode_openmetrics(&snap);
        let parsed = parse_openmetrics(&text).expect("encoder output must parse");
        assert_eq!(parsed.value("stm_commits_total", &[("proc", "0")]), Some(1.0));
        assert_eq!(parsed.value("stm_cell_aborts_total", &[("cell", "3")]), Some(1.0));
        assert_eq!(
            parsed.value(
                "stm_conflict_pairs_total",
                &[("victim", "hot-add"), ("aborter", "transfer")]
            ),
            Some(1.0)
        );
        assert_eq!(parsed.value("stm_op_latency_count", &[("op", "hot-add")]), Some(4.0));
        assert_eq!(parsed.types.get("stm_op_latency").map(String::as_str), Some("histogram"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_openmetrics("stm_x_total 1\n# EOF\n").is_err(), "undeclared family");
        assert!(parse_openmetrics("# TYPE stm_x_total counter\nstm_x_total 1\n").is_err(), "no EOF");
        assert!(
            parse_openmetrics("# TYPE stm_x_total counter\nstm_x_total{p=\"1} 1\n# EOF\n")
                .is_err(),
            "unterminated label"
        );
        assert!(
            parse_openmetrics("# TYPE stm_x_total counter\nstm_x_total abc\n# EOF\n").is_err(),
            "bad value"
        );
        assert!(parse_openmetrics("# TYPE stm_x_total counter\n# EOF\n").is_ok());
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let snap = contended_snapshot();
        let json = snapshot_json(&snap);
        assert!(json.starts_with("{\"schema\":\"stm-top-snapshot/v1\""));
        assert!(json.contains("\"cells\":[{\"cell\":3,"), "{json}");
        assert!(json.contains("\"victim\":\"hot-add\",\"aborter\":\"transfer\",\"count\":1"));
        assert!(json.contains("\"p99\":"));
        // Structural sanity: balanced braces/brackets, no trailing comma.
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert!(!json.contains(",]") && !json.contains(",}"));
    }
}
