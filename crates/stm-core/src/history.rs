//! Serializability checking of committed-transaction histories.
//!
//! The paper's correctness claim is that the STM implements *atomic* static
//! transactions: the concurrent execution is equivalent to some sequential
//! order of the committed transactions. This module checks that claim
//! mechanically on recorded executions, exploiting the protocol's per-cell
//! update **stamps**: every committed write advances its cell's stamp by
//! one, and every committed transaction reports the exact stamp of each cell
//! it read ([`TxOutcome::old_stamps`](crate::stm::TxOutcome::old_stamps)).
//!
//! Given the initial cell values and one [`CommitRecord`] per committed
//! transaction, [`HistoryChecker::check`] verifies:
//!
//! 1. **per-cell value chains** — for each cell, writers consume stamps
//!    `0, 1, 2, …` in order, each reading exactly the value the previous
//!    writer installed; readers observe the value current at their stamp;
//! 2. **global serializability** — the precedence graph (reader/writer
//!    orderings implied by stamps, per cell) is acyclic, and a witness
//!    serial order is returned.
//!
//! Records are collected by the test harness (host-side, e.g. behind a
//! mutex) while the workload runs on either machine.

use std::collections::HashMap;
use std::fmt;

use crate::word::CellIdx;

/// One committed transaction, as recorded by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Caller-chosen identifier (must be unique within a history).
    pub id: usize,
    /// The data set, in program order.
    pub cells: Vec<CellIdx>,
    /// Observed pre-commit values (from [`TxOutcome::old`](crate::stm::TxOutcome::old)).
    pub old_values: Vec<u32>,
    /// Observed pre-commit stamps (from
    /// [`TxOutcome::old_stamps`](crate::stm::TxOutcome::old_stamps)).
    pub old_stamps: Vec<u16>,
    /// The values the transaction's (pure) program computed — what it
    /// logically wrote. Positions where `new == old` are logical reads.
    pub new_values: Vec<u32>,
}

/// Why a history is not serializable (or not even well-formed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// A record's vectors disagree in length, or an id repeats.
    Malformed {
        /// Offending record id.
        id: usize,
    },
    /// Two committed transactions both wrote the same cell at the same
    /// stamp — the protocol's per-stamp CAS should make this impossible.
    DuplicateWriter {
        /// Cell.
        cell: CellIdx,
        /// Stamp consumed twice.
        stamp: u16,
        /// The two record ids.
        ids: (usize, usize),
    },
    /// A transaction read a value inconsistent with the cell's value chain.
    ValueChainBroken {
        /// Record id.
        id: usize,
        /// Cell.
        cell: CellIdx,
        /// Value the transaction reported reading.
        observed: u32,
        /// Value the chain says was current at that stamp.
        expected: u32,
    },
    /// A stamp gap: some stamp has a writer but a predecessor stamp has
    /// none (an update vanished).
    MissingWriter {
        /// Cell.
        cell: CellIdx,
        /// First stamp with no writer.
        stamp: u16,
    },
    /// The precedence graph has a cycle: no serial order exists.
    CycleDetected,
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Malformed { id } => write!(f, "record {id} is malformed"),
            HistoryError::DuplicateWriter { cell, stamp, ids } => write!(
                f,
                "records {} and {} both wrote cell {cell} at stamp {stamp}",
                ids.0, ids.1
            ),
            HistoryError::ValueChainBroken { id, cell, observed, expected } => write!(
                f,
                "record {id} read {observed} from cell {cell} but the chain holds {expected}"
            ),
            HistoryError::MissingWriter { cell, stamp } => {
                write!(f, "cell {cell} has no writer for stamp {stamp} but later stamps exist")
            }
            HistoryError::CycleDetected => write!(f, "precedence graph is cyclic"),
        }
    }
}

impl std::error::Error for HistoryError {}

/// Accumulates commit records and checks them for serializability.
///
/// # Examples
///
/// ```
/// use stm_core::history::{CommitRecord, HistoryChecker};
///
/// let mut checker = HistoryChecker::new(vec![0, 0]);
/// checker.add(CommitRecord {
///     id: 1,
///     cells: vec![0],
///     old_values: vec![0],
///     old_stamps: vec![0],
///     new_values: vec![5],
/// });
/// checker.add(CommitRecord {
///     id: 2,
///     cells: vec![0, 1],
///     old_values: vec![5, 0],
///     old_stamps: vec![1, 0],
///     new_values: vec![6, 1],
/// });
/// let order = checker.check().expect("serializable");
/// assert_eq!(order, vec![1, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryChecker {
    initial: Vec<u32>,
    records: Vec<CommitRecord>,
}

impl HistoryChecker {
    /// A checker over cells with the given initial values (all stamps 0).
    pub fn new(initial: Vec<u32>) -> Self {
        HistoryChecker { initial, records: Vec::new() }
    }

    /// Add one committed transaction's record.
    pub fn add(&mut self, record: CommitRecord) {
        self.records.push(record);
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Verify the history; on success returns a witness serial order of
    /// record ids (a topological order of the precedence graph).
    ///
    /// # Errors
    ///
    /// Returns the first [`HistoryError`] found; see the enum for the
    /// violation classes.
    pub fn check(&self) -> Result<Vec<usize>, HistoryError> {
        // --- well-formedness -------------------------------------------------
        let mut seen_ids = std::collections::HashSet::new();
        for r in &self.records {
            let n = r.cells.len();
            if n == 0
                || r.old_values.len() != n
                || r.old_stamps.len() != n
                || r.new_values.len() != n
                || !seen_ids.insert(r.id)
            {
                return Err(HistoryError::Malformed { id: r.id });
            }
        }

        // --- per-cell chains --------------------------------------------------
        // For each cell: writers[stamp] = (record index, new value);
        // readers[stamp] = record indices that read at that stamp.
        #[derive(Default)]
        struct CellEvents {
            writers: HashMap<u16, (usize, u32)>,
            readers: HashMap<u16, Vec<usize>>,
            max_stamp: u16,
        }
        let mut cells: HashMap<CellIdx, CellEvents> = HashMap::new();
        for (ri, r) in self.records.iter().enumerate() {
            for j in 0..r.cells.len() {
                let ev = cells.entry(r.cells[j]).or_default();
                let stamp = r.old_stamps[j];
                ev.max_stamp = ev.max_stamp.max(stamp);
                if r.new_values[j] != r.old_values[j] {
                    if let Some(&(other, _)) = ev.writers.get(&stamp) {
                        return Err(HistoryError::DuplicateWriter {
                            cell: r.cells[j],
                            stamp,
                            ids: (self.records[other].id, r.id),
                        });
                    }
                    ev.writers.insert(stamp, (ri, r.new_values[j]));
                } else {
                    ev.readers.entry(stamp).or_default().push(ri);
                }
            }
        }
        for (&cell, ev) in &cells {
            // Walk the chain from stamp 0 upward.
            let mut current = self.initial.get(cell).copied().unwrap_or(0);
            for stamp in 0..=ev.max_stamp {
                if let Some(readers) = ev.readers.get(&stamp) {
                    for &ri in readers {
                        let r = &self.records[ri];
                        // `ri` was indexed under `cell` above, so the position
                        // must exist; a miss means the record was mutated
                        // concurrently — report it rather than panic.
                        let Some(j) = r.cells.iter().position(|&c| c == cell) else {
                            return Err(HistoryError::Malformed { id: r.id });
                        };
                        if r.old_values[j] != current {
                            return Err(HistoryError::ValueChainBroken {
                                id: r.id,
                                cell,
                                observed: r.old_values[j],
                                expected: current,
                            });
                        }
                    }
                }
                match ev.writers.get(&stamp) {
                    Some(&(ri, new)) => {
                        let r = &self.records[ri];
                        let Some(j) = r.cells.iter().position(|&c| c == cell) else {
                            return Err(HistoryError::Malformed { id: r.id });
                        };
                        if r.old_values[j] != current {
                            return Err(HistoryError::ValueChainBroken {
                                id: r.id,
                                cell,
                                observed: r.old_values[j],
                                expected: current,
                            });
                        }
                        current = new;
                    }
                    None => {
                        // A gap is only legal if no *later* writer exists.
                        if ev.writers.keys().any(|&s| s > stamp) {
                            return Err(HistoryError::MissingWriter { cell, stamp });
                        }
                    }
                }
            }
        }

        // --- precedence graph + topological order -----------------------------
        // Edges (per cell): writer(s) -> everyone at stamp s+1..;
        // readers at stamp s -> writer at stamp s (reader saw pre-state).
        let n = self.records.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        let add_edge = |adj: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
            if a != b {
                adj[a].push(b);
                indeg[b] += 1;
            }
        };
        for ev in cells.values() {
            // Order all events of this cell by stamp.
            let mut stamps: Vec<u16> = ev
                .writers
                .keys()
                .chain(ev.readers.keys())
                .copied()
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .collect();
            stamps.sort_unstable();
            let mut prev_writer: Option<usize> = None;
            for &s in &stamps {
                let readers = ev.readers.get(&s).cloned().unwrap_or_default();
                let writer = ev.writers.get(&s).map(|&(ri, _)| ri);
                for &r in &readers {
                    if let Some(pw) = prev_writer {
                        add_edge(&mut adj, &mut indeg, pw, r);
                    }
                    if let Some(w) = writer {
                        add_edge(&mut adj, &mut indeg, r, w);
                    }
                }
                if let Some(w) = writer {
                    if let Some(pw) = prev_writer {
                        add_edge(&mut adj, &mut indeg, pw, w);
                    }
                    prev_writer = Some(w);
                }
            }
        }
        // Kahn's algorithm.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(self.records[i].id);
            for &j in &adj[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() != n {
            return Err(HistoryError::CycleDetected);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, cells: &[usize], old: &[u32], stamps: &[u16], new: &[u32]) -> CommitRecord {
        CommitRecord {
            id,
            cells: cells.to_vec(),
            old_values: old.to_vec(),
            old_stamps: stamps.to_vec(),
            new_values: new.to_vec(),
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        let checker = HistoryChecker::new(vec![0; 4]);
        assert_eq!(checker.check().unwrap(), Vec::<usize>::new());
        assert!(checker.is_empty());
    }

    #[test]
    fn simple_chain_orders_by_stamp() {
        let mut c = HistoryChecker::new(vec![0]);
        c.add(rec(10, &[0], &[5], &[1], &[7]));
        c.add(rec(9, &[0], &[0], &[0], &[5]));
        let order = c.check().unwrap();
        assert_eq!(order, vec![9, 10]);
    }

    #[test]
    fn readers_interleave_between_writers() {
        let mut c = HistoryChecker::new(vec![0]);
        c.add(rec(1, &[0], &[0], &[0], &[5])); // writer 0->5
        c.add(rec(2, &[0], &[5], &[1], &[5])); // reader sees 5
        c.add(rec(3, &[0], &[5], &[1], &[9])); // writer 5->9
        let order = c.check().unwrap();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn broken_value_chain_is_rejected() {
        let mut c = HistoryChecker::new(vec![0]);
        c.add(rec(1, &[0], &[0], &[0], &[5]));
        c.add(rec(2, &[0], &[6], &[1], &[7])); // claims to have read 6, chain says 5
        match c.check().unwrap_err() {
            HistoryError::ValueChainBroken { id, observed, expected, .. } => {
                assert_eq!(id, 2);
                assert_eq!(observed, 6);
                assert_eq!(expected, 5);
            }
            e => panic!("wrong error {e}"),
        }
    }

    #[test]
    fn duplicate_writers_at_a_stamp_are_rejected() {
        let mut c = HistoryChecker::new(vec![0]);
        c.add(rec(1, &[0], &[0], &[0], &[5]));
        c.add(rec(2, &[0], &[0], &[0], &[6]));
        assert!(matches!(c.check().unwrap_err(), HistoryError::DuplicateWriter { .. }));
    }

    #[test]
    fn missing_writer_gap_is_rejected() {
        let mut c = HistoryChecker::new(vec![0]);
        // A writer consumed stamp 1 but nobody produced stamp 1 from 0.
        c.add(rec(1, &[0], &[5], &[1], &[6]));
        assert!(matches!(
            c.check().unwrap_err(),
            HistoryError::MissingWriter { .. } | HistoryError::ValueChainBroken { .. }
        ));
    }

    #[test]
    fn cross_cell_cycle_is_rejected() {
        // tx1: reads cell0@0 (value 0), writes cell1@0 -> order says tx1
        // after writer of cell0 stamp... construct a genuine cycle:
        // tx1 reads cell0 at stamp 0 AND writes cell1 consuming stamp 0;
        // tx2 reads cell1 at stamp 0 AND writes cell0 consuming stamp 0.
        // tx1 must precede tx2 (tx2 wrote cell0 after tx1's read) and
        // tx2 must precede tx1 symmetric -> cycle. Such an execution is NOT
        // serializable, and the checker must say so. (The real protocol can
        // never produce it: the two transactions' data sets overlap.)
        let mut c = HistoryChecker::new(vec![0, 0]);
        c.add(rec(1, &[0, 1], &[0, 0], &[0, 0], &[0, 5])); // read c0, write c1
        c.add(rec(2, &[1, 0], &[0, 0], &[0, 0], &[0, 7])); // read c1, write c0
        assert_eq!(c.check().unwrap_err(), HistoryError::CycleDetected);
    }

    #[test]
    fn malformed_records_are_rejected() {
        let mut c = HistoryChecker::new(vec![0]);
        c.add(CommitRecord {
            id: 1,
            cells: vec![0],
            old_values: vec![],
            old_stamps: vec![0],
            new_values: vec![1],
        });
        assert_eq!(c.check().unwrap_err(), HistoryError::Malformed { id: 1 });

        let mut c = HistoryChecker::new(vec![0]);
        c.add(rec(7, &[0], &[0], &[0], &[1]));
        c.add(rec(7, &[0], &[1], &[1], &[2]));
        assert_eq!(c.check().unwrap_err(), HistoryError::Malformed { id: 7 });
    }

    #[test]
    fn multi_cell_transfer_history_is_serializable() {
        // Three transfers among three cells, recorded out of order.
        let mut c = HistoryChecker::new(vec![10, 10, 10]);
        c.add(rec(3, &[1, 2], &[12, 10], &[1, 0], &[7, 15])); // after tx1
        c.add(rec(1, &[0, 1], &[10, 10], &[0, 0], &[8, 12]));
        c.add(rec(2, &[0, 2], &[8, 15], &[1, 1], &[3, 20])); // after tx1 and tx3
        let order = c.check().unwrap();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(1) < pos(2));
        assert!(pos(3) < pos(2));
    }
}
