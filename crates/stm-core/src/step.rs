//! Named protocol step points for fault injection and adversarial scheduling.
//!
//! The Shavit–Touitou liveness argument is about *where* a processor may die:
//! a processor that crashes or is preempted at any point of the transaction
//! protocol — mid-acquisition, between old-value agreements, before the
//! decision CAS, between update writes, mid-release — must not be able to
//! block the system, because helpers complete its transaction. To test that
//! claim systematically rather than at one hand-picked point, the protocol
//! code in [`crate::stm`] (and the dynamic layer in [`crate::dynamic`])
//! announces every such point through
//! [`MemPort::step`](crate::machine::MemPort::step).
//!
//! On the host machine the default `step` implementation is an empty inline
//! function, so the instrumentation compiles to nothing. The simulator
//! (`stm-sim`) overrides it to record the step in the execution trace and to
//! deliver scripted faults (`CrashAt` / `StallFor` / `SlowBy`) at exactly
//! that point.

/// One announced point in the transaction protocol.
///
/// Data-set indices `j` are *program-order positions* into the transaction's
/// cell list (the same indexing [`TxSpec::cells`](crate::stm::TxSpec) uses);
/// acquisition announces positions in the paper's ascending-cell order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepPoint {
    /// The record owner published a fresh transaction record (status moved
    /// from `Initializing` to `Null`); the transaction is now helpable.
    TxPublished,
    /// A participant is about to (re-)attempt the ownership CAS for data-set
    /// position `j`. No ownership of `j` is held yet on the first occurrence.
    AcquireAttempt {
        /// Program-order data-set position.
        j: usize,
    },
    /// Ownership of data-set position `j` is now held by the running
    /// transaction (claimed by this participant or found already claimed).
    Acquired {
        /// Program-order data-set position.
        j: usize,
    },
    /// A [`PriorityLevel::Forced`](crate::contention::PriorityLevel) sweep
    /// newly claimed a location. Unlike the other indexed steps, `cell` is
    /// the **cell index** (not the data-set position): a forced episode may
    /// span several resumed sweeps, and across all of them the newly claimed
    /// cell indices must be strictly increasing — the ascending-order
    /// invariant the `stm-sim` checker enforces. Announced only by forced
    /// sweeps, so classic schedules never carry it.
    ForcedAcquired {
        /// Cell index of the newly claimed location.
        cell: usize,
    },
    /// Every location is held; the participant is about to CAS the status
    /// word from `Null` to `Success`.
    BeforeDecisionCas,
    /// This participant's decision CAS succeeded: the transaction is now
    /// decided (`committed == true` for `Success`, `false` for `Failure`).
    Decided {
        /// Whether the decided outcome is `Success`.
        committed: bool,
    },
    /// The old value of data-set position `j` is agreed for the running
    /// version (set by this participant or found already set).
    OldValAgreed {
        /// Program-order data-set position.
        j: usize,
    },
    /// A durable backend is active and the participant is about to append
    /// this transaction's redo record to its journal buffer. Crashing here
    /// models dying before the record exists anywhere.
    JournalAppend,
    /// The redo record is buffered and the participant is about to flush it
    /// to stable storage. Crashing here (or during the flush itself) models
    /// power failing before — or during — the fsync: the record is lost.
    JournalFlush,
    /// The flush returned: the redo record is durable, but no new value has
    /// been installed yet. Crashing here is the decided-durable-but-
    /// uninstalled case that recovery must replay exactly once.
    JournalDurable,
    /// The participant is about to install the new value of data-set
    /// position `j` (including positions whose value is unchanged and will
    /// be skipped).
    UpdateWrite {
        /// Program-order data-set position.
        j: usize,
    },
    /// The participant is about to release ownership of data-set position
    /// `j`.
    BeforeRelease {
        /// Program-order data-set position.
        j: usize,
    },
    /// A failed transaction is about to help the conflicting transaction
    /// initiated by processor `owner`.
    HelpBegin {
        /// The processor whose transaction will be helped.
        owner: usize,
    },
    /// The dynamic-transaction layer is about to run its validate-and-write
    /// commit (a static transaction over the collected footprint).
    DynCommit,
    /// A blocking dynamic transaction hit `retry` and is about to register on
    /// its read set and park ([`MemPort::wait_on`](crate::machine::MemPort)).
    /// Crashing here models a processor dying while (about to be) parked.
    /// Announced only by `run_blocking`, so non-blocking schedules never
    /// carry it.
    RetryPark,
    /// A blocking dynamic transaction returned from its park (a watched cell
    /// changed, or the wait was capped) and is about to re-run its body.
    /// Announced only by `run_blocking`.
    RetryWake,
}

impl StepPoint {
    /// The fieldless discriminant of this step point.
    pub fn kind(&self) -> StepKind {
        match self {
            StepPoint::TxPublished => StepKind::TxPublished,
            StepPoint::AcquireAttempt { .. } => StepKind::AcquireAttempt,
            StepPoint::Acquired { .. } => StepKind::Acquired,
            StepPoint::ForcedAcquired { .. } => StepKind::ForcedAcquired,
            StepPoint::BeforeDecisionCas => StepKind::BeforeDecisionCas,
            StepPoint::Decided { .. } => StepKind::Decided,
            StepPoint::OldValAgreed { .. } => StepKind::OldValAgreed,
            StepPoint::JournalAppend => StepKind::JournalAppend,
            StepPoint::JournalFlush => StepKind::JournalFlush,
            StepPoint::JournalDurable => StepKind::JournalDurable,
            StepPoint::UpdateWrite { .. } => StepKind::UpdateWrite,
            StepPoint::BeforeRelease { .. } => StepKind::BeforeRelease,
            StepPoint::HelpBegin { .. } => StepKind::HelpBegin,
            StepPoint::DynCommit => StepKind::DynCommit,
            StepPoint::RetryPark => StepKind::RetryPark,
            StepPoint::RetryWake => StepKind::RetryWake,
        }
    }

    /// The data-set position carried by this step, if it has one.
    pub fn index(&self) -> Option<usize> {
        match *self {
            StepPoint::AcquireAttempt { j }
            | StepPoint::Acquired { j }
            | StepPoint::OldValAgreed { j }
            | StepPoint::UpdateWrite { j }
            | StepPoint::BeforeRelease { j } => Some(j),
            _ => None,
        }
    }
}

impl std::fmt::Display for StepPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StepPoint::TxPublished => write!(f, "TxPublished"),
            StepPoint::AcquireAttempt { j } => write!(f, "AcquireAttempt{{{j}}}"),
            StepPoint::Acquired { j } => write!(f, "Acquired{{{j}}}"),
            StepPoint::ForcedAcquired { cell } => write!(f, "ForcedAcquired{{c{cell}}}"),
            StepPoint::BeforeDecisionCas => write!(f, "BeforeDecisionCas"),
            StepPoint::Decided { committed } => write!(f, "Decided{{committed={committed}}}"),
            StepPoint::OldValAgreed { j } => write!(f, "OldValAgreed{{{j}}}"),
            StepPoint::JournalAppend => write!(f, "JournalAppend"),
            StepPoint::JournalFlush => write!(f, "JournalFlush"),
            StepPoint::JournalDurable => write!(f, "JournalDurable"),
            StepPoint::UpdateWrite { j } => write!(f, "UpdateWrite{{{j}}}"),
            StepPoint::BeforeRelease { j } => write!(f, "BeforeRelease{{{j}}}"),
            StepPoint::HelpBegin { owner } => write!(f, "HelpBegin{{P{owner}}}"),
            StepPoint::DynCommit => write!(f, "DynCommit"),
            StepPoint::RetryPark => write!(f, "RetryPark"),
            StepPoint::RetryWake => write!(f, "RetryWake"),
        }
    }
}

/// Fieldless discriminant of [`StepPoint`] — what fault triggers and matrix
/// sweeps select on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// See [`StepPoint::TxPublished`].
    TxPublished,
    /// See [`StepPoint::AcquireAttempt`].
    AcquireAttempt,
    /// See [`StepPoint::Acquired`].
    Acquired,
    /// See [`StepPoint::ForcedAcquired`]. Only forced sweeps announce it, so
    /// — like the `Journal*` kinds — it stays out of
    /// [`StepKind::PROTOCOL`].
    ForcedAcquired,
    /// See [`StepPoint::BeforeDecisionCas`].
    BeforeDecisionCas,
    /// See [`StepPoint::Decided`].
    Decided,
    /// See [`StepPoint::OldValAgreed`].
    OldValAgreed,
    /// See [`StepPoint::JournalAppend`].
    JournalAppend,
    /// See [`StepPoint::JournalFlush`].
    JournalFlush,
    /// See [`StepPoint::JournalDurable`].
    JournalDurable,
    /// See [`StepPoint::UpdateWrite`].
    UpdateWrite,
    /// See [`StepPoint::BeforeRelease`].
    BeforeRelease,
    /// See [`StepPoint::HelpBegin`].
    HelpBegin,
    /// See [`StepPoint::DynCommit`].
    DynCommit,
    /// See [`StepPoint::RetryPark`]. Only blocking (`run_blocking`)
    /// transactions announce it, so — like [`StepKind::ForcedAcquired`] — it
    /// stays out of [`StepKind::PROTOCOL`].
    RetryPark,
    /// See [`StepPoint::RetryWake`]. Only blocking transactions announce it.
    RetryWake,
}

impl StepKind {
    /// Every step kind the static-transaction protocol announces, in
    /// protocol order (excludes [`StepKind::DynCommit`], which only the
    /// dynamic layer emits).
    pub const PROTOCOL: [StepKind; 9] = [
        StepKind::TxPublished,
        StepKind::AcquireAttempt,
        StepKind::Acquired,
        StepKind::BeforeDecisionCas,
        StepKind::Decided,
        StepKind::OldValAgreed,
        StepKind::UpdateWrite,
        StepKind::BeforeRelease,
        StepKind::HelpBegin,
    ];

    /// The step kinds announced only when a durable backend is active
    /// ([`Journal::ACTIVE`](crate::durable::Journal::ACTIVE)), in protocol
    /// order: they sit between old-value agreement and the first
    /// [`StepKind::UpdateWrite`].
    pub const JOURNAL: [StepKind; 3] =
        [StepKind::JournalAppend, StepKind::JournalFlush, StepKind::JournalDurable];

    /// Does this kind carry a data-set position?
    pub fn has_index(&self) -> bool {
        matches!(
            self,
            StepKind::AcquireAttempt
                | StepKind::Acquired
                | StepKind::OldValAgreed
                | StepKind::UpdateWrite
                | StepKind::BeforeRelease
        )
    }
}

impl std::fmt::Display for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_indices_are_consistent() {
        let steps = [
            StepPoint::TxPublished,
            StepPoint::AcquireAttempt { j: 2 },
            StepPoint::Acquired { j: 2 },
            // ForcedAcquired carries a *cell index*, not a data-set
            // position, so `index()` deliberately reports none for it.
            StepPoint::ForcedAcquired { cell: 5 },
            StepPoint::BeforeDecisionCas,
            StepPoint::Decided { committed: true },
            StepPoint::OldValAgreed { j: 0 },
            StepPoint::JournalAppend,
            StepPoint::JournalFlush,
            StepPoint::JournalDurable,
            StepPoint::UpdateWrite { j: 1 },
            StepPoint::BeforeRelease { j: 1 },
            StepPoint::HelpBegin { owner: 3 },
            StepPoint::DynCommit,
            StepPoint::RetryPark,
            StepPoint::RetryWake,
        ];
        for s in steps {
            assert_eq!(s.kind().has_index(), s.index().is_some(), "{s}");
        }
        assert_eq!(StepPoint::AcquireAttempt { j: 7 }.index(), Some(7));
        assert_eq!(StepPoint::BeforeDecisionCas.index(), None);
    }

    #[test]
    fn display_is_compact_and_informative() {
        assert_eq!(StepPoint::AcquireAttempt { j: 3 }.to_string(), "AcquireAttempt{3}");
        assert_eq!(StepPoint::HelpBegin { owner: 2 }.to_string(), "HelpBegin{P2}");
        assert_eq!(StepKind::UpdateWrite.to_string(), "UpdateWrite");
        assert_eq!(StepPoint::JournalDurable.to_string(), "JournalDurable");
    }

    #[test]
    fn journal_kinds_carry_no_index_and_stay_out_of_protocol() {
        for kind in StepKind::JOURNAL {
            assert!(!kind.has_index(), "{kind}");
            assert!(
                !StepKind::PROTOCOL.contains(&kind),
                "non-durable sweeps must not announce {kind}"
            );
        }
    }

    #[test]
    fn retry_kinds_stay_out_of_protocol() {
        for kind in [StepKind::RetryPark, StepKind::RetryWake] {
            assert!(!kind.has_index(), "{kind}");
            assert!(
                !StepKind::PROTOCOL.contains(&kind),
                "non-blocking sweeps must never announce {kind}"
            );
        }
        assert_eq!(StepPoint::RetryPark.to_string(), "RetryPark");
        assert_eq!(StepPoint::RetryWake.to_string(), "RetryWake");
    }

    #[test]
    fn forced_acquired_stays_out_of_protocol() {
        assert!(
            !StepKind::PROTOCOL.contains(&StepKind::ForcedAcquired),
            "classic sweeps must never announce ForcedAcquired"
        );
        assert_eq!(StepPoint::ForcedAcquired { cell: 3 }.to_string(), "ForcedAcquired{c3}");
    }
}
