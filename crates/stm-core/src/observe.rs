//! Transaction lifecycle observers — zero-cost telemetry hooks.
//!
//! The protocol in [`crate::stm`] (and the dynamic layer in
//! [`crate::dynamic`]) reports every externally meaningful event of a
//! transaction's life to a [`TxObserver`]: attempt begin, per-cell
//! acquisition, the conflict that failed an attempt, the helping span spent
//! on another processor's transaction, installs, releases, and the terminal
//! commit/abort of each attempt. The observer parameter is **monomorphized**
//! ([`Stm::run`](crate::stm::Stm::run) is generic over `O: TxObserver`), and
//! every callback has an empty `#[inline]` default, so the uninstrumented
//! path — [`NoopObserver`] — compiles to exactly the code the unobserved
//! fast path had before observers existed. The counting-port footprint test
//! in [`crate::machine::counting`] pins that equivalence.
//!
//! Timestamps come from [`MemPort::now`](crate::machine::MemPort::now): real
//! virtual cycles on the `stm-sim` simulator, `0` on the host machine (where
//! duration metrics degenerate to counts).
//!
//! Two observers ship with the crate:
//!
//! * [`NoopObserver`] — the default; costs nothing.
//! * [`RecordingObserver`] — appends every callback as a [`TxEvent`], for
//!   tests and tooling (the observer-ordering property tests are built on
//!   it).
//!
//! [`crate::metrics::TxMetrics`] is the aggregating observer: histograms,
//! hot-cell contention counters, and helping-chain accounting.
//!
//! # Event grammar
//!
//! Per observed [`Stm::run`](crate::stm::Stm::run) call, the emitted
//! sequence is:
//!
//! ```text
//! ( attempt_begin
//!     cell_acquired*                     ascending cell order
//!     [ conflict
//!       [ help_begin ...helped work... help_end ]
//!       aborted ]                        terminal for a failed attempt
//! )*
//! attempt_begin cell_acquired* write_back* released* committed
//! ```
//!
//! Events between `help_begin` and `help_end` (acquire/install/release)
//! belong to the *helped* transaction, executed by this processor on the
//! owner's behalf — helping is one level deep, so help spans never nest.

use crate::word::CellIdx;

/// Observer of one processor's transaction lifecycle events.
///
/// All callbacks default to empty inline bodies, so an observer only pays
/// for what it overrides and [`NoopObserver`] pays for nothing. `proc` is
/// always the *acting* processor (the one running the protocol code); `now`
/// is that processor's local time per
/// [`MemPort::now`](crate::machine::MemPort::now).
pub trait TxObserver {
    /// A new attempt (1-based `attempt` counter) of this processor's own
    /// transaction was published.
    #[inline]
    fn attempt_begin(&mut self, proc: usize, attempt: u64, now: u64) {
        let _ = (proc, attempt, now);
    }

    /// Ownership of `cell` is now held for the running transaction (claimed
    /// by this participant or found already claimed by a co-participant).
    /// Emitted in ascending cell order within each acquisition pass.
    #[inline]
    fn cell_acquired(&mut self, proc: usize, cell: CellIdx, now: u64) {
        let _ = (proc, cell, now);
    }

    /// This processor's own attempt was decided `Failure` because `cell`
    /// (if known — `None` only for a malformed failure index) was owned by
    /// a live conflicting transaction. `owner` is the processor that held
    /// the obstructing ownership, when the protocol re-read it (helping
    /// paths do; pure-backoff paths report `None` rather than pay an extra
    /// ownership read). Emitted exactly once per
    /// [`TxStats::conflicts`](crate::stm::TxStats::conflicts) increment.
    #[inline]
    fn conflict(&mut self, proc: usize, cell: Option<CellIdx>, owner: Option<usize>, now: u64) {
        let _ = (proc, cell, owner, now);
    }

    /// This processor is about to help the transaction initiated by `owner`
    /// (the paper's non-redundant helping; one level only). Emitted exactly
    /// once per [`TxStats::helps`](crate::stm::TxStats::helps) increment.
    #[inline]
    fn help_begin(&mut self, proc: usize, owner: usize, now: u64) {
        let _ = (proc, owner, now);
    }

    /// The helping span opened by the matching [`TxObserver::help_begin`]
    /// finished (the helped transaction is complete or was already done).
    #[inline]
    fn help_end(&mut self, proc: usize, owner: usize, now: u64) {
        let _ = (proc, owner, now);
    }

    /// This participant is about to install a changed value into `cell`
    /// (positions whose new value equals the old are logical reads and are
    /// not reported).
    #[inline]
    fn write_back(&mut self, proc: usize, cell: CellIdx, now: u64) {
        let _ = (proc, cell, now);
    }

    /// This participant is about to release ownership of `cell`.
    #[inline]
    fn released(&mut self, proc: usize, cell: CellIdx, now: u64) {
        let _ = (proc, cell, now);
    }

    /// This processor's own transaction committed after `attempts` attempts.
    /// Terminal event of the final attempt.
    #[inline]
    fn committed(&mut self, proc: usize, attempts: u64, now: u64) {
        let _ = (proc, attempts, now);
    }

    /// This processor's own attempt was decided `Failure` at data-set
    /// position `at` (program order). Terminal event of a failed attempt;
    /// emitted after any conflict/help events of that attempt.
    #[inline]
    fn aborted(&mut self, proc: usize, at: usize, now: u64) {
        let _ = (proc, at, now);
    }

    /// The managed retry loop ([`Stm::run`](crate::stm::Stm::run)) is about
    /// to wait between attempts on a [`ContentionManager`](crate::contention::ContentionManager)
    /// decision. `amount` is the spin window in cycles for a spin wait, the
    /// park duration in microseconds for a parked wait, and `0` for a plain
    /// yield. Sits outside the core event grammar above.
    #[inline]
    fn backoff_wait(&mut self, proc: usize, attempt: u64, amount: u64, now: u64) {
        let _ = (proc, attempt, amount, now);
    }

    /// The contention manager detected starvation (repeated losses to the
    /// same owner, or too many attempts overall) and escalated this
    /// processor to help-first mode. `owner` is the obstructing owner at the
    /// moment of escalation, if still visible. Managed paths only.
    #[inline]
    fn starvation_escalated(&mut self, proc: usize, owner: Option<usize>, attempts: u64, now: u64) {
        let _ = (proc, owner, attempts, now);
    }

    /// A commit program panicked inside this processor's own attempt. The
    /// transaction installed nothing, all ownerships were released, and the
    /// panic is being surfaced as
    /// [`TxError::OpPanicked`](crate::stm::TxError::OpPanicked).
    #[inline]
    fn op_panicked(&mut self, proc: usize, attempts: u64, now: u64) {
        let _ = (proc, attempts, now);
    }

    /// A durable backend ([`Journal`](crate::durable::Journal)) flushed
    /// `records` redo records (`bytes` encoded bytes) to stable storage
    /// before this participant installed any value. `latency` is in the
    /// port's time units (virtual cycles on the simulator, nanoseconds on
    /// the host). Emitted once per non-empty journal flush, by whichever
    /// participant (owner or helper) performed it.
    #[inline]
    fn journal_flush(&mut self, proc: usize, records: u64, bytes: u64, latency: u64, now: u64) {
        let _ = (proc, records, bytes, latency, now);
    }

    /// A recovery pass ([`recover_with`](crate::durable::recover_with))
    /// finished: `records` verified records were scanned and `installed`
    /// individual cell installs were replayed. `now` is `0` — recovery runs
    /// before any port exists.
    #[inline]
    fn recovery_replayed(&mut self, records: u64, installed: u64, now: u64) {
        let _ = (records, installed, now);
    }

    /// A helping excursion hit a live conflict while helping the escalated
    /// transaction of `owner` and **deferred** — left the record undecided
    /// instead of failing it (the [`PriorityBoard`](crate::contention::PriorityBoard)
    /// protection). Only emitted when an escalation board is attached.
    #[inline]
    fn conflict_deferred(&mut self, proc: usize, owner: usize, now: u64) {
        let _ = (proc, owner, now);
    }

    /// This processor's own transaction committed while holding the forced
    /// slot (the never-self-fail sweep). Emitted immediately after the
    /// matching [`TxObserver::committed`]. Only emitted when an escalation
    /// board is attached and the manager reached
    /// [`PriorityLevel::Forced`](crate::contention::PriorityLevel).
    #[inline]
    fn forced_commit(&mut self, proc: usize, attempts: u64, now: u64) {
        let _ = (proc, attempts, now);
    }

    /// The dynamic layer's commit-time validation failed but only
    /// `cells_changed` read cells moved (at most
    /// [`StmConfig::delta_retry_cells`](crate::stm::StmConfig::delta_retry_cells)),
    /// so the transaction re-ran its body against the validated snapshot and
    /// committed without a full re-read retry. Emitted immediately after the
    /// delta-committed attempt's [`TxObserver::committed`].
    #[inline]
    fn delta_committed(&mut self, proc: usize, cells_changed: u64, now: u64) {
        let _ = (proc, cells_changed, now);
    }

    /// A blocking dynamic transaction
    /// ([`DynamicStm::run_blocking`](crate::dynamic::DynamicStm::run_blocking))
    /// hit `retry` and is about to park on its read set of `watched` cells.
    #[inline]
    fn retry_blocked(&mut self, proc: usize, watched: u64, now: u64) {
        let _ = (proc, watched, now);
    }

    /// A blocking dynamic transaction returned from its park (cumulative
    /// `wakeups` for this call, counting this one) and is about to re-run
    /// its body.
    #[inline]
    fn retry_woken(&mut self, proc: usize, wakeups: u64, now: u64) {
        let _ = (proc, wakeups, now);
    }
}

/// A mutable reference to an observer is itself an observer, so callers can
/// keep ownership of a long-lived observer while handing it to
/// [`TxOptions`](crate::stm::TxOptions) by value:
/// `TxOptions::new().observer(&mut recorder)`.
///
/// Every method forwards explicitly — the trait's empty defaults would
/// otherwise silently swallow the events.
impl<O: TxObserver + ?Sized> TxObserver for &mut O {
    #[inline]
    fn attempt_begin(&mut self, proc: usize, attempt: u64, now: u64) {
        (**self).attempt_begin(proc, attempt, now)
    }
    #[inline]
    fn cell_acquired(&mut self, proc: usize, cell: CellIdx, now: u64) {
        (**self).cell_acquired(proc, cell, now)
    }
    #[inline]
    fn conflict(&mut self, proc: usize, cell: Option<CellIdx>, owner: Option<usize>, now: u64) {
        (**self).conflict(proc, cell, owner, now)
    }
    #[inline]
    fn help_begin(&mut self, proc: usize, owner: usize, now: u64) {
        (**self).help_begin(proc, owner, now)
    }
    #[inline]
    fn help_end(&mut self, proc: usize, owner: usize, now: u64) {
        (**self).help_end(proc, owner, now)
    }
    #[inline]
    fn write_back(&mut self, proc: usize, cell: CellIdx, now: u64) {
        (**self).write_back(proc, cell, now)
    }
    #[inline]
    fn released(&mut self, proc: usize, cell: CellIdx, now: u64) {
        (**self).released(proc, cell, now)
    }
    #[inline]
    fn committed(&mut self, proc: usize, attempts: u64, now: u64) {
        (**self).committed(proc, attempts, now)
    }
    #[inline]
    fn aborted(&mut self, proc: usize, at: usize, now: u64) {
        (**self).aborted(proc, at, now)
    }
    #[inline]
    fn backoff_wait(&mut self, proc: usize, attempt: u64, amount: u64, now: u64) {
        (**self).backoff_wait(proc, attempt, amount, now)
    }
    #[inline]
    fn starvation_escalated(&mut self, proc: usize, owner: Option<usize>, attempts: u64, now: u64) {
        (**self).starvation_escalated(proc, owner, attempts, now)
    }
    #[inline]
    fn op_panicked(&mut self, proc: usize, attempts: u64, now: u64) {
        (**self).op_panicked(proc, attempts, now)
    }
    #[inline]
    fn journal_flush(&mut self, proc: usize, records: u64, bytes: u64, latency: u64, now: u64) {
        (**self).journal_flush(proc, records, bytes, latency, now)
    }
    #[inline]
    fn recovery_replayed(&mut self, records: u64, installed: u64, now: u64) {
        (**self).recovery_replayed(records, installed, now)
    }
    #[inline]
    fn conflict_deferred(&mut self, proc: usize, owner: usize, now: u64) {
        (**self).conflict_deferred(proc, owner, now)
    }
    #[inline]
    fn forced_commit(&mut self, proc: usize, attempts: u64, now: u64) {
        (**self).forced_commit(proc, attempts, now)
    }
    #[inline]
    fn delta_committed(&mut self, proc: usize, cells_changed: u64, now: u64) {
        (**self).delta_committed(proc, cells_changed, now)
    }
    #[inline]
    fn retry_blocked(&mut self, proc: usize, watched: u64, now: u64) {
        (**self).retry_blocked(proc, watched, now)
    }
    #[inline]
    fn retry_woken(&mut self, proc: usize, wakeups: u64, now: u64) {
        (**self).retry_woken(proc, wakeups, now)
    }
}

/// A pair of observers is an observer: every event is forwarded to both
/// elements, in order. This is the zero-allocation way to tee one run into
/// two sinks, e.g. end-of-run metrics plus a live flight recorder:
/// `TxOptions::new().observer((&mut metrics, &mut recorder))`.
impl<A: TxObserver, B: TxObserver> TxObserver for (A, B) {
    #[inline]
    fn attempt_begin(&mut self, proc: usize, attempt: u64, now: u64) {
        self.0.attempt_begin(proc, attempt, now);
        self.1.attempt_begin(proc, attempt, now);
    }
    #[inline]
    fn cell_acquired(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.0.cell_acquired(proc, cell, now);
        self.1.cell_acquired(proc, cell, now);
    }
    #[inline]
    fn conflict(&mut self, proc: usize, cell: Option<CellIdx>, owner: Option<usize>, now: u64) {
        self.0.conflict(proc, cell, owner, now);
        self.1.conflict(proc, cell, owner, now);
    }
    #[inline]
    fn help_begin(&mut self, proc: usize, owner: usize, now: u64) {
        self.0.help_begin(proc, owner, now);
        self.1.help_begin(proc, owner, now);
    }
    #[inline]
    fn help_end(&mut self, proc: usize, owner: usize, now: u64) {
        self.0.help_end(proc, owner, now);
        self.1.help_end(proc, owner, now);
    }
    #[inline]
    fn write_back(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.0.write_back(proc, cell, now);
        self.1.write_back(proc, cell, now);
    }
    #[inline]
    fn released(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.0.released(proc, cell, now);
        self.1.released(proc, cell, now);
    }
    #[inline]
    fn committed(&mut self, proc: usize, attempts: u64, now: u64) {
        self.0.committed(proc, attempts, now);
        self.1.committed(proc, attempts, now);
    }
    #[inline]
    fn aborted(&mut self, proc: usize, at: usize, now: u64) {
        self.0.aborted(proc, at, now);
        self.1.aborted(proc, at, now);
    }
    #[inline]
    fn backoff_wait(&mut self, proc: usize, attempt: u64, amount: u64, now: u64) {
        self.0.backoff_wait(proc, attempt, amount, now);
        self.1.backoff_wait(proc, attempt, amount, now);
    }
    #[inline]
    fn starvation_escalated(&mut self, proc: usize, owner: Option<usize>, attempts: u64, now: u64) {
        self.0.starvation_escalated(proc, owner, attempts, now);
        self.1.starvation_escalated(proc, owner, attempts, now);
    }
    #[inline]
    fn op_panicked(&mut self, proc: usize, attempts: u64, now: u64) {
        self.0.op_panicked(proc, attempts, now);
        self.1.op_panicked(proc, attempts, now);
    }
    #[inline]
    fn journal_flush(&mut self, proc: usize, records: u64, bytes: u64, latency: u64, now: u64) {
        self.0.journal_flush(proc, records, bytes, latency, now);
        self.1.journal_flush(proc, records, bytes, latency, now);
    }
    #[inline]
    fn recovery_replayed(&mut self, records: u64, installed: u64, now: u64) {
        self.0.recovery_replayed(records, installed, now);
        self.1.recovery_replayed(records, installed, now);
    }
    #[inline]
    fn conflict_deferred(&mut self, proc: usize, owner: usize, now: u64) {
        self.0.conflict_deferred(proc, owner, now);
        self.1.conflict_deferred(proc, owner, now);
    }
    #[inline]
    fn forced_commit(&mut self, proc: usize, attempts: u64, now: u64) {
        self.0.forced_commit(proc, attempts, now);
        self.1.forced_commit(proc, attempts, now);
    }
    #[inline]
    fn delta_committed(&mut self, proc: usize, cells_changed: u64, now: u64) {
        self.0.delta_committed(proc, cells_changed, now);
        self.1.delta_committed(proc, cells_changed, now);
    }
    #[inline]
    fn retry_blocked(&mut self, proc: usize, watched: u64, now: u64) {
        self.0.retry_blocked(proc, watched, now);
        self.1.retry_blocked(proc, watched, now);
    }
    #[inline]
    fn retry_woken(&mut self, proc: usize, wakeups: u64, now: u64) {
        self.0.retry_woken(proc, wakeups, now);
        self.1.retry_woken(proc, wakeups, now);
    }
}

/// The default observer: every callback is a no-op, and the monomorphized
/// protocol code is identical to the unobserved path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl TxObserver for NoopObserver {}

/// One recorded lifecycle event (see [`RecordingObserver`]).
///
/// Field meanings match the corresponding [`TxObserver`] callback; `at` is
/// the port-local timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields mirror the TxObserver callback parameters
pub enum TxEvent {
    /// [`TxObserver::attempt_begin`].
    AttemptBegin { proc: usize, attempt: u64, at: u64 },
    /// [`TxObserver::cell_acquired`].
    Acquired { proc: usize, cell: CellIdx, at: u64 },
    /// [`TxObserver::conflict`].
    Conflict { proc: usize, cell: Option<CellIdx>, owner: Option<usize>, at: u64 },
    /// [`TxObserver::help_begin`].
    HelpBegin { proc: usize, owner: usize, at: u64 },
    /// [`TxObserver::help_end`].
    HelpEnd { proc: usize, owner: usize, at: u64 },
    /// [`TxObserver::write_back`].
    WriteBack { proc: usize, cell: CellIdx, at: u64 },
    /// [`TxObserver::released`].
    Released { proc: usize, cell: CellIdx, at: u64 },
    /// [`TxObserver::committed`].
    Committed { proc: usize, attempts: u64, at: u64 },
    /// [`TxObserver::aborted`].
    Aborted { proc: usize, at_pos: usize, at: u64 },
    /// [`TxObserver::backoff_wait`] (managed retry paths only).
    BackoffWait { proc: usize, attempt: u64, amount: u64, at: u64 },
    /// [`TxObserver::starvation_escalated`] (managed retry paths only).
    StarvationEscalated { proc: usize, owner: Option<usize>, attempts: u64, at: u64 },
    /// [`TxObserver::op_panicked`].
    OpPanicked { proc: usize, attempts: u64, at: u64 },
    /// [`TxObserver::journal_flush`].
    JournalFlush { proc: usize, records: u64, bytes: u64, latency: u64, at: u64 },
    /// [`TxObserver::recovery_replayed`].
    RecoveryReplayed { records: u64, installed: u64, at: u64 },
    /// [`TxObserver::conflict_deferred`] (escalation board attached only).
    ConflictDeferred { proc: usize, owner: usize, at: u64 },
    /// [`TxObserver::forced_commit`] (escalation board attached only).
    ForcedCommit { proc: usize, attempts: u64, at: u64 },
    /// [`TxObserver::delta_committed`] (dynamic layer, delta path enabled).
    DeltaCommitted { proc: usize, cells_changed: u64, at: u64 },
    /// [`TxObserver::retry_blocked`] (blocking dynamic layer only).
    RetryBlocked { proc: usize, watched: u64, at: u64 },
    /// [`TxObserver::retry_woken`] (blocking dynamic layer only).
    RetryWoken { proc: usize, wakeups: u64, at: u64 },
}

/// Default [`RecordingObserver`] capacity: generous for tests and tours,
/// but bounded so a long chaos/stress run cannot grow the vector forever.
pub const DEFAULT_RECORDING_CAPACITY: usize = 1 << 20;

/// An observer that appends every event to a vector — the test and tooling
/// workhorse.
///
/// Capacity-bounded: once `capacity` events are held, further events are
/// counted in [`dropped`](Self::dropped) instead of stored. [`take`]
/// drains the vector, so periodic consumers never hit the bound.
///
/// [`take`]: Self::take
#[derive(Debug, Clone)]
pub struct RecordingObserver {
    events: Vec<TxEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for RecordingObserver {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RECORDING_CAPACITY)
    }
}

impl RecordingObserver {
    /// An empty recorder with the default capacity bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recorder holding at most `capacity` events at a time.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::new(), capacity, dropped: 0 }
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[TxEvent] {
        &self.events
    }

    /// Events discarded because the recorder was at capacity (cumulative;
    /// not reset by [`take`](Self::take)).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain and return the recorded events (the recorder is reusable and
    /// regains its full capacity).
    pub fn take(&mut self) -> Vec<TxEvent> {
        std::mem::take(&mut self.events)
    }

    #[inline]
    fn push(&mut self, ev: TxEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

impl TxObserver for RecordingObserver {
    fn attempt_begin(&mut self, proc: usize, attempt: u64, now: u64) {
        self.push(TxEvent::AttemptBegin { proc, attempt, at: now });
    }
    fn cell_acquired(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.push(TxEvent::Acquired { proc, cell, at: now });
    }
    fn conflict(&mut self, proc: usize, cell: Option<CellIdx>, owner: Option<usize>, now: u64) {
        self.push(TxEvent::Conflict { proc, cell, owner, at: now });
    }
    fn help_begin(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(TxEvent::HelpBegin { proc, owner, at: now });
    }
    fn help_end(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(TxEvent::HelpEnd { proc, owner, at: now });
    }
    fn write_back(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.push(TxEvent::WriteBack { proc, cell, at: now });
    }
    fn released(&mut self, proc: usize, cell: CellIdx, now: u64) {
        self.push(TxEvent::Released { proc, cell, at: now });
    }
    fn committed(&mut self, proc: usize, attempts: u64, now: u64) {
        self.push(TxEvent::Committed { proc, attempts, at: now });
    }
    fn aborted(&mut self, proc: usize, at: usize, now: u64) {
        self.push(TxEvent::Aborted { proc, at_pos: at, at: now });
    }
    fn backoff_wait(&mut self, proc: usize, attempt: u64, amount: u64, now: u64) {
        self.push(TxEvent::BackoffWait { proc, attempt, amount, at: now });
    }
    fn starvation_escalated(&mut self, proc: usize, owner: Option<usize>, attempts: u64, now: u64) {
        self.push(TxEvent::StarvationEscalated { proc, owner, attempts, at: now });
    }
    fn op_panicked(&mut self, proc: usize, attempts: u64, now: u64) {
        self.push(TxEvent::OpPanicked { proc, attempts, at: now });
    }
    fn journal_flush(&mut self, proc: usize, records: u64, bytes: u64, latency: u64, now: u64) {
        self.push(TxEvent::JournalFlush { proc, records, bytes, latency, at: now });
    }
    fn recovery_replayed(&mut self, records: u64, installed: u64, now: u64) {
        self.push(TxEvent::RecoveryReplayed { records, installed, at: now });
    }
    fn conflict_deferred(&mut self, proc: usize, owner: usize, now: u64) {
        self.push(TxEvent::ConflictDeferred { proc, owner, at: now });
    }
    fn forced_commit(&mut self, proc: usize, attempts: u64, now: u64) {
        self.push(TxEvent::ForcedCommit { proc, attempts, at: now });
    }
    fn delta_committed(&mut self, proc: usize, cells_changed: u64, now: u64) {
        self.push(TxEvent::DeltaCommitted { proc, cells_changed, at: now });
    }
    fn retry_blocked(&mut self, proc: usize, watched: u64, now: u64) {
        self.push(TxEvent::RetryBlocked { proc, watched, at: now });
    }
    fn retry_woken(&mut self, proc: usize, wakeups: u64, now: u64) {
        self.push(TxEvent::RetryWoken { proc, wakeups, at: now });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::host::HostMachine;
    use crate::ops::StmOps;
    use crate::stm::{StmConfig, TxOptions, TxSpec};

    #[test]
    fn uncontended_commit_emits_the_expected_sequence() {
        let ops = StmOps::new(0, 4, 1, 4, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = m.port(0);
        let mut rec = RecordingObserver::new();
        let out = ops
            .stm()
            .run(
                &mut port,
                &TxSpec::new(ops.builtins().add, &[5, 7], &[2, 0]),
                &mut TxOptions::new().observer(&mut rec),
            )
            .unwrap();
        assert_eq!(out.stats.attempts, 1);
        let ev = rec.events();
        // attempt begin, two acquires (ascending cell order: 0 then 2), two
        // installs, two releases, commit.
        assert!(matches!(ev[0], TxEvent::AttemptBegin { proc: 0, attempt: 1, .. }), "{ev:?}");
        assert!(matches!(ev[1], TxEvent::Acquired { cell: 0, .. }), "{ev:?}");
        assert!(matches!(ev[2], TxEvent::Acquired { cell: 2, .. }), "{ev:?}");
        assert!(
            matches!(ev.last(), Some(TxEvent::Committed { proc: 0, attempts: 1, .. })),
            "{ev:?}"
        );
        let installs = ev.iter().filter(|e| matches!(e, TxEvent::WriteBack { .. })).count();
        let releases = ev.iter().filter(|e| matches!(e, TxEvent::Released { .. })).count();
        assert_eq!(installs, 2);
        assert_eq!(releases, 2);
        assert_eq!(
            ev.iter().filter(|e| matches!(e, TxEvent::Committed { .. })).count(),
            1,
            "exactly one terminal event"
        );
    }

    #[test]
    fn logical_reads_emit_no_write_back() {
        let ops = StmOps::new(0, 4, 1, 4, StmConfig::default());
        let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = m.port(0);
        let mut rec = RecordingObserver::new();
        let _ = ops.stm().run(
            &mut port,
            &TxSpec::new(ops.builtins().read, &[], &[1, 3]),
            &mut TxOptions::new().observer(&mut rec),
        );
        assert_eq!(
            rec.events().iter().filter(|e| matches!(e, TxEvent::WriteBack { .. })).count(),
            0,
            "identity transaction installs nothing"
        );
    }

    #[test]
    fn recorder_take_drains() {
        let mut rec = RecordingObserver::new();
        rec.attempt_begin(0, 1, 0);
        assert_eq!(rec.take().len(), 1);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn recorder_capacity_counts_drops_and_take_restores_room() {
        let mut rec = RecordingObserver::with_capacity(2);
        for i in 0..5 {
            rec.attempt_begin(0, i, 0);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.take().len(), 2);
        rec.attempt_begin(0, 9, 0);
        assert_eq!(rec.events().len(), 1, "take() frees capacity");
        assert_eq!(rec.dropped(), 3, "drop counter is cumulative");
    }

    #[test]
    fn tuple_observer_tees_to_both() {
        let mut a = RecordingObserver::new();
        let mut b = RecordingObserver::new();
        {
            let mut tee = (&mut a, &mut b);
            tee.attempt_begin(1, 1, 0);
            tee.conflict(1, Some(3), Some(2), 5);
        }
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 2);
        assert!(matches!(
            a.events()[1],
            TxEvent::Conflict { proc: 1, cell: Some(3), owner: Some(2), .. }
        ));
    }
}
