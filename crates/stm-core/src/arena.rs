//! The growable sharded cell heap: allocation state over an arena
//! [`StmLayout`].
//!
//! The layout (see [`StmLayout::arena`]) is a pure address function over the
//! arena's *maximum* capacity; this module owns the mutable side — which
//! segments have been grown into, which cells are live. Splitting it this
//! way keeps every protocol invariant untouched: cell addresses never move,
//! compiled [`TxPlan`](crate::stm::TxPlan)s stay valid across growth, and
//! freeing a cell does not disturb its packed `stamp|value` word, so a
//! transaction that raced a free still fails validation the ordinary way
//! (its logged stamp no longer matches) instead of misbehaving.
//!
//! # Sharding
//!
//! Allocation state is striped over `n_shards` independent shards, each
//! behind its own mutex. Shard `s` claims the global segments congruent to
//! `s` modulo `n_shards` (its `k`-th claim is segment `s + k * n_shards`),
//! so growth needs no cross-shard coordination at all: a processor allocates
//! from its home shard (`proc % n_shards`) and only spills to neighbours
//! when its own shard is exhausted. Per shard, the arena keeps a bump
//! pointer into the newest claimed segment, LIFO free lists (one per span
//! length), and a per-segment allocation bitmap that turns double-frees into
//! immediate panics instead of silent corruption.
//!
//! # Spans
//!
//! Structures that need small contiguous cell runs (the
//! `stm-structures` hash map stores each entry as a `key, value, next`
//! triple) allocate *spans*: `alloc_span(proc, 3)` returns the first of
//! three consecutive cell indices inside one segment. Spans never straddle
//! segments, so a span's ownership words are consecutive too.
//!
//! # Determinism
//!
//! All bookkeeping is host-side (mutexes, not simulated words). Under
//! `stm-sim` the engine runs exactly one processor at a time, so allocator
//! decisions are a deterministic function of the schedule and replay
//! bit-identically — which the arena growth proptests pin on Bus and Mesh.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::flight::FlightRecorder;
use crate::layout::StmLayout;
use crate::word::CellIdx;

/// A point-in-time summary of arena occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Cells currently allocated (sum of live span lengths).
    pub live_cells: usize,
    /// Maximum `live_cells` ever observed.
    pub high_water_cells: usize,
    /// Segments grown into so far.
    pub segments_live: usize,
    /// Total capacity in cells (`max_segments * seg_cells`).
    pub capacity_cells: usize,
    /// Spans handed out since construction.
    pub allocs: u64,
    /// Spans returned since construction.
    pub frees: u64,
}

/// Per-shard allocation state; `claimed` counts this shard's segments, whose
/// global ids are `shard + k * n_shards` for `k < claimed`.
#[derive(Debug)]
struct Shard {
    claimed: usize,
    /// Slots consumed in the newest claimed segment.
    bump: usize,
    /// LIFO stacks of freed spans, one per span length seen.
    free: Vec<(usize, Vec<CellIdx>)>,
    /// One bit per slot of each claimed segment, set while allocated.
    bitmaps: Vec<Box<[u64]>>,
}

/// The growable sharded cell heap (see module docs).
///
/// # Examples
///
/// ```
/// use stm_core::arena::CellArena;
/// use stm_core::layout::StmLayout;
///
/// // 2 shards, 8-cell segments, up to 4 segments: capacity 32 cells.
/// let layout = StmLayout::arena(0, 2, 8, 0, 2, 8, 4);
/// let arena = CellArena::new(layout);
/// let a = arena.alloc(0).unwrap();
/// let b = arena.alloc_span(1, 3).unwrap(); // key, value, next triple
/// assert_ne!(layout.shard_of(a), layout.shard_of(b));
/// assert_eq!(arena.stats().live_cells, 4);
/// arena.free(a);
/// arena.free_span(b, 3);
/// assert_eq!(arena.stats().live_cells, 0);
/// ```
#[derive(Debug)]
pub struct CellArena {
    layout: StmLayout,
    shards: Box<[Mutex<Shard>]>,
    live_cells: AtomicUsize,
    high_water: AtomicUsize,
    segments_live: AtomicUsize,
    allocs: AtomicU64,
    frees: AtomicU64,
    /// Optional flight recorder fed one `cell_alloc`/`cell_free` event per
    /// span transition; `recording` keeps the no-recorder fast path to one
    /// relaxed load.
    recorder: Mutex<Option<FlightRecorder>>,
    recording: AtomicBool,
    /// Monotonic event ticket used as the recorder timestamp (the arena is
    /// host-side and has no port clock).
    events: AtomicU64,
}

impl CellArena {
    /// Create the allocator for an arena layout, with no segments grown yet.
    ///
    /// # Panics
    ///
    /// Panics if `layout` is not an arena layout ([`StmLayout::arena`]).
    pub fn new(layout: StmLayout) -> Self {
        assert!(layout.is_arena(), "CellArena needs an arena StmLayout");
        let shards = (0..layout.n_shards())
            .map(|_| Mutex::new(Shard { claimed: 0, bump: 0, free: Vec::new(), bitmaps: Vec::new() }))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CellArena {
            layout,
            shards,
            live_cells: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            segments_live: AtomicUsize::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            recorder: Mutex::new(None),
            recording: AtomicBool::new(false),
            events: AtomicU64::new(0),
        }
    }

    /// Attach a [`FlightRecorder`]: every span allocation and free emits a
    /// `cell_alloc`/`cell_free` event (first cell index, live cells after),
    /// which the attribution fold and the metrics exporters surface as
    /// `stm_cell_allocs_total`/`stm_cell_frees_total`. Timestamps are a
    /// monotonic arena-local event counter, not machine cycles. Alloc events
    /// carry the allocating processor; free events (which have no processor
    /// argument) carry the freed cell's shard index in the proc column.
    pub fn attach_recorder(&self, recorder: FlightRecorder) {
        *self.recorder.lock().unwrap() = Some(recorder);
        self.recording.store(true, Ordering::Release);
    }

    fn record(&self, alloc: bool, proc: usize, idx: CellIdx, live: usize) {
        if !self.recording.load(Ordering::Relaxed) {
            return;
        }
        let now = self.events.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.recorder.lock().unwrap().as_mut() {
            if alloc {
                rec.cell_alloc(proc, idx, live as u64, now);
            } else {
                rec.cell_free(proc, idx, live as u64, now);
            }
        }
    }

    /// The layout this arena allocates from.
    pub fn layout(&self) -> &StmLayout {
        &self.layout
    }

    /// Allocate one cell, preferring processor `proc`'s home shard.
    /// `None` when every shard is exhausted.
    pub fn alloc(&self, proc: usize) -> Option<CellIdx> {
        self.alloc_span(proc, 1)
    }

    /// Allocate `span` consecutive cells within one segment, preferring
    /// `proc`'s home shard (`proc % n_shards`) and spilling to the other
    /// shards in deterministic round-robin order only when it is full.
    ///
    /// # Panics
    ///
    /// Panics if `span` is 0 or exceeds the segment size.
    pub fn alloc_span(&self, proc: usize, span: usize) -> Option<CellIdx> {
        assert!(span > 0 && span <= self.layout.seg_cells(), "span out of range");
        let n_shards = self.shards.len();
        let home = proc & (n_shards - 1);
        for i in 0..n_shards {
            let shard = (home + i) & (n_shards - 1);
            if let Some(idx) = self.alloc_in_shard(shard, span) {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                let live = self.live_cells.fetch_add(span, Ordering::Relaxed) + span;
                self.high_water.fetch_max(live, Ordering::Relaxed);
                self.record(true, proc, idx, live);
                return Some(idx);
            }
        }
        None
    }

    fn alloc_in_shard(&self, shard: usize, span: usize) -> Option<CellIdx> {
        let n_shards = self.shards.len();
        let seg_cells = self.layout.seg_cells();
        let mut st = self.shards[shard].lock().unwrap();

        // Reuse a freed span of the exact length first (LIFO keeps the
        // working set hot).
        if let Some((_, stack)) = st.free.iter_mut().find(|(s, _)| *s == span) {
            if let Some(idx) = stack.pop() {
                let local_seg = self.layout.segment_of(idx) / n_shards;
                let slot = idx % seg_cells;
                Self::set_bits(&mut st.bitmaps[local_seg], slot, span, true);
                return Some(idx);
            }
        }

        // Bump-allocate, claiming this shard's next segment when the current
        // one can't fit the span (tail slots shorter than `span` are simply
        // never handed out).
        if st.claimed == 0 || st.bump + span > seg_cells {
            let next_global = shard + st.claimed * n_shards;
            if next_global >= self.layout.max_segments() {
                return None;
            }
            st.claimed += 1;
            st.bump = 0;
            st.bitmaps.push(vec![0u64; seg_cells.div_ceil(64)].into_boxed_slice());
            self.segments_live.fetch_add(1, Ordering::Relaxed);
        }
        let local_seg = st.claimed - 1;
        let slot = st.bump;
        st.bump += span;
        Self::set_bits(&mut st.bitmaps[local_seg], slot, span, true);
        Some(self.layout.cell_index(shard + local_seg * n_shards, slot))
    }

    /// Return one cell allocated with [`alloc`](Self::alloc).
    pub fn free(&self, idx: CellIdx) {
        self.free_span(idx, 1);
    }

    /// Return a span allocated with [`alloc_span`](Self::alloc_span); `span`
    /// must match the allocation.
    ///
    /// The span's packed `stamp|value` words are deliberately left as they
    /// were: a concurrent transaction that read them revalidates against the
    /// unchanged stamps, and the next allocation of these cells inherits
    /// stamps that keep moving forward.
    ///
    /// # Panics
    ///
    /// Panics if any cell of the span is not currently allocated (double
    /// free, wrong span length, or an index the arena never handed out).
    pub fn free_span(&self, idx: CellIdx, span: usize) {
        assert!(span > 0 && span <= self.layout.seg_cells(), "span out of range");
        assert!(idx + span <= self.layout.n_cells(), "cell index out of range");
        let seg_cells = self.layout.seg_cells();
        let slot = idx % seg_cells;
        assert!(slot + span <= seg_cells, "span straddles a segment boundary");
        let shard = self.layout.shard_of(idx);
        let n_shards = self.shards.len();
        let local_seg = self.layout.segment_of(idx) / n_shards;
        let mut st = self.shards[shard].lock().unwrap();
        assert!(local_seg < st.claimed, "freeing a cell in an unclaimed segment");
        for s in slot..slot + span {
            assert!(
                st.bitmaps[local_seg][s / 64] & (1u64 << (s % 64)) != 0,
                "double free of cell {}",
                idx + (s - slot)
            );
        }
        Self::set_bits(&mut st.bitmaps[local_seg], slot, span, false);
        match st.free.iter_mut().find(|(s, _)| *s == span) {
            Some((_, stack)) => stack.push(idx),
            None => st.free.push((span, vec![idx])),
        }
        drop(st);
        let live = self.live_cells.fetch_sub(span, Ordering::Relaxed) - span;
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.record(false, shard, idx, live);
    }

    /// Whether cell `idx` is currently allocated.
    pub fn is_live(&self, idx: CellIdx) -> bool {
        if idx >= self.layout.n_cells() {
            return false;
        }
        let shard = self.layout.shard_of(idx);
        let local_seg = self.layout.segment_of(idx) / self.shards.len();
        let slot = idx % self.layout.seg_cells();
        let st = self.shards[shard].lock().unwrap();
        local_seg < st.claimed && st.bitmaps[local_seg][slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Cells currently allocated.
    pub fn live_cells(&self) -> usize {
        self.live_cells.load(Ordering::Relaxed)
    }

    /// Total capacity in cells.
    pub fn capacity_cells(&self) -> usize {
        self.layout.n_cells()
    }

    /// Segments grown into so far.
    pub fn segments_live(&self) -> usize {
        self.segments_live.load(Ordering::Relaxed)
    }

    /// Point-in-time occupancy summary.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live_cells: self.live_cells.load(Ordering::Relaxed),
            high_water_cells: self.high_water.load(Ordering::Relaxed),
            segments_live: self.segments_live.load(Ordering::Relaxed),
            capacity_cells: self.layout.n_cells(),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    fn set_bits(bitmap: &mut [u64], slot: usize, span: usize, on: bool) {
        for s in slot..slot + span {
            if on {
                bitmap[s / 64] |= 1u64 << (s % 64);
            } else {
                bitmap[s / 64] &= !(1u64 << (s % 64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CellArena {
        // 2 shards, 8-cell segments, 6 segments: capacity 48.
        CellArena::new(StmLayout::arena(0, 4, 8, 0, 2, 8, 6))
    }

    #[test]
    fn alloc_prefers_home_shard_and_grows_by_segments() {
        let a = small();
        assert_eq!(a.segments_live(), 0);
        let c0 = a.alloc(0).unwrap();
        let c1 = a.alloc(1).unwrap();
        assert_eq!(a.layout().shard_of(c0), 0);
        assert_eq!(a.layout().shard_of(c1), 1);
        assert_eq!(a.segments_live(), 2);
        // Filling shard 0's first segment claims its *next* congruent
        // segment (global id 2), not shard 1's.
        for _ in 0..8 {
            a.alloc(0).unwrap();
        }
        assert_eq!(a.segments_live(), 3);
        assert_eq!(a.stats().high_water_cells, 10);
    }

    #[test]
    fn addresses_are_stable_and_reused_lifo() {
        let a = small();
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        a.free(x);
        assert!(!a.is_live(x) && a.is_live(y));
        // LIFO reuse hands the same index back; the address never moved.
        assert_eq!(a.alloc(0), Some(x));
        assert_eq!(a.layout().cell(x), a.layout().cell(x));
    }

    #[test]
    fn spans_stay_inside_one_segment() {
        let a = small();
        let mut spans = Vec::new();
        while let Some(s) = a.alloc_span(0, 3) {
            spans.push(s);
        }
        for &s in &spans {
            assert_eq!(a.layout().segment_of(s), a.layout().segment_of(s + 2));
        }
        // 8-cell segments fit two 3-spans each (2 tail slots wasted); both
        // shards' 3 segments each get exhausted.
        assert_eq!(spans.len(), 12);
        assert_eq!(a.live_cells(), 36);
        for &s in &spans {
            a.free_span(s, 3);
        }
        assert_eq!(a.live_cells(), 0);
        assert_eq!(a.stats().frees, 12);
    }

    #[test]
    fn exhaustion_returns_none_then_free_recovers() {
        let a = small();
        let all: Vec<_> = std::iter::from_fn(|| a.alloc(0)).collect();
        assert_eq!(all.len(), 48);
        assert_eq!(a.alloc(3), None);
        a.free(all[7]);
        assert_eq!(a.alloc(3), Some(all[7]));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let a = small();
        let x = a.alloc(0).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn freeing_unallocated_cell_panics() {
        let a = small();
        let _ = a.alloc(0).unwrap();
        a.free(5); // same segment, never handed out
    }

    #[test]
    fn attached_recorder_sees_every_alloc_and_free() {
        use crate::flight::FlightKind;
        let a = small();
        let rec = FlightRecorder::new(0, 64);
        let buf = rec.buffer();
        a.attach_recorder(rec);
        let x = a.alloc_span(1, 3).unwrap();
        let y = a.alloc_span(0, 2).unwrap();
        a.free_span(x, 3);
        a.free_span(y, 2);
        let read = buf.read_since(0);
        assert_eq!(read.dropped, 0);
        let kinds: Vec<FlightKind> = read.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightKind::CellAlloc,
                FlightKind::CellAlloc,
                FlightKind::CellFree,
                FlightKind::CellFree
            ]
        );
        // a/b columns: first cell index and live cells after the transition.
        assert_eq!(read.events[0].a, x as u64);
        assert_eq!(read.events[0].b, 3);
        assert_eq!(read.events[1].b, 5);
        assert_eq!(read.events[3].b, 0);
        // Alloc events carry the allocating proc; frees carry the shard.
        assert_eq!(read.events[0].proc, 1);
        assert_eq!(read.events[2].proc, a.layout().shard_of(x) as u32);
        // Timestamps are the arena's own monotone event counter.
        let stamps: Vec<u64> = read.events.iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_alloc_free_is_consistent() {
        let a = std::sync::Arc::new(CellArena::new(StmLayout::arena(0, 4, 8, 0, 4, 64, 64)));
        std::thread::scope(|s| {
            for p in 0..4 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for round in 0..500 {
                        if round % 3 == 2 {
                            if let Some(idx) = mine.pop() {
                                a.free_span(idx, 2);
                            }
                        } else if let Some(idx) = a.alloc_span(p, 2) {
                            mine.push(idx);
                        }
                    }
                    for idx in mine {
                        a.free_span(idx, 2);
                    }
                });
            }
        });
        let st = a.stats();
        assert_eq!(st.live_cells, 0);
        assert_eq!(st.allocs, st.frees);
        assert!(st.high_water_cells <= st.capacity_cells);
    }
}
