//! Aggregating transaction metrics: log2-bucket histograms, hot-cell
//! contention counters, and helping-chain accounting.
//!
//! [`TxMetrics`] is a [`TxObserver`] that condenses the lifecycle event
//! stream into the quantities the paper's evaluation argues about:
//!
//! * **attempts-to-commit** — how many attempts each committed transaction
//!   needed (1 = first try; the tail measures retry pressure);
//! * **cycles-per-attempt** — virtual cycles from attempt publication to its
//!   terminal commit/abort (host runs report 0-cycle durations);
//! * **help duration** — cycles spent inside helping spans;
//! * **hot cells** — per-address conflict counts (which cells fail
//!   transactions), the contention heatmap;
//! * **helping depth** — the observer-side check of the paper's one-level
//!   *non-redundant helping* bound: helpers never recurse, so the observed
//!   maximum depth of nested `help_begin`/`help_end` spans must be ≤ 1.
//!
//! Observers are per-port (one processor's view); aggregate a
//! multiprocessor run by [`TxMetrics::merge`]-ing the per-processor
//! instances.

use std::collections::BTreeMap;
use std::fmt;

use crate::attribution::Attribution;
use crate::observe::TxObserver;
use crate::word::CellIdx;

/// Number of buckets in a [`Log2Histogram`]: one for zero plus one per
/// possible `floor(log2(v)) + 1` of a non-zero `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size histogram over `u64` values with logarithmic buckets.
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the values
/// in `[2^(i-1), 2^i)`. Recording is O(1) with no allocation, so the
/// histogram is cheap enough to live on the transaction fast path.
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; LOG2_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value` (`0` for zero, else `floor(log2) + 1`).
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_low(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations in bucket `i` (see [`Log2Histogram::bucket_of`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// `(bucket_low, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_low(i), n))
            .collect()
    }

    /// Estimated `p`-th percentile (`0.0 ..= 100.0`) by linear
    /// interpolation inside the owning log2 bucket.
    ///
    /// The rank-selected bucket `[2^(i-1), 2^i)` is assumed uniformly
    /// filled; the estimate interpolates by the rank's position among that
    /// bucket's observations, clamped to the recorded [`max`](Self::max)
    /// so the top bucket (whose nominal width can exceed the data) never
    /// overstates the tail. Returns 0.0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // 1-based rank of the order statistic: ceil(p/100 * count), >= 1.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let low = Self::bucket_low(i) as f64;
                // Exclusive upper bound of bucket i; bucket 64's nominal
                // 2^64 would overflow `bucket_low(65)`, and `max + 1`
                // bounds it tighter anyway.
                let high = if i + 1 < LOG2_BUCKETS {
                    (Self::bucket_low(i + 1) as f64).min(self.max as f64 + 1.0)
                } else {
                    self.max as f64 + 1.0
                };
                let into = (rank - seen) as f64 / n as f64;
                return (low + (high - low) * into).min(self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("max", &self.max)
            .field("nonzero_buckets", &self.nonzero_buckets())
            .finish()
    }
}

impl fmt::Display for Log2Histogram {
    /// Compact one-line rendering: `n=<count> mean=<mean> max=<max> [lo:n ...]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1} max={} [", self.count, self.mean(), self.max)?;
        for (k, (low, n)) in self.nonzero_buckets().iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "≥{low}:{n}")?;
        }
        write!(f, "]")
    }
}

/// Metrics accumulated from one processor's transaction lifecycle events.
///
/// # Examples
///
/// ```
/// use stm_core::machine::host::HostMachine;
/// use stm_core::metrics::TxMetrics;
/// use stm_core::ops::StmOps;
/// use stm_core::stm::{StmConfig, TxOptions, TxSpec};
///
/// let ops = StmOps::new(0, 8, 1, 4, StmConfig::default());
/// let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
/// let mut port = machine.port(0);
/// let mut metrics = TxMetrics::new();
/// for _ in 0..10 {
///     ops.stm()
///         .run(
///             &mut port,
///             &TxSpec::new(ops.builtins().add, &[1], &[0]),
///             &mut TxOptions::new().observer(&mut metrics),
///         )
///         .unwrap();
/// }
/// assert_eq!(metrics.commits(), 10);
/// assert_eq!(metrics.attempts_to_commit.mean(), 1.0); // uncontended
/// assert!(metrics.helping_is_non_redundant());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxMetrics {
    /// Histogram of attempts needed per committed transaction.
    pub attempts_to_commit: Log2Histogram,
    /// Histogram of cycles from attempt publication to its terminal event.
    pub cycles_per_attempt: Log2Histogram,
    /// Histogram of cycles spent per helping span.
    pub help_cycles: Log2Histogram,
    /// Histogram of contention-manager wait amounts (spin cycles or park
    /// microseconds; yields record 0). Managed retry paths only.
    pub backoff_waits: Log2Histogram,
    /// Histogram of journal flush latencies (virtual cycles on the
    /// simulator, nanoseconds on the host). Durable backends only.
    pub flush_latency: Log2Histogram,
    /// Histogram of cell installs replayed per recovery pass.
    pub recovery_replays: Log2Histogram,
    /// Conflict blame folded from flight-recorder drains (see
    /// [`Attribution`]); empty unless the workload merges one in via
    /// [`TxMetrics::absorb_attribution`].
    pub attribution: Attribution,
    commits: u64,
    aborts: u64,
    conflicts: u64,
    helps: u64,
    write_backs: u64,
    releases: u64,
    starvation_escalations: u64,
    forced_commits: u64,
    conflicts_deferred: u64,
    delta_commits: u64,
    retry_blocks: u64,
    retry_wakeups: u64,
    op_panics: u64,
    journal_records: u64,
    journal_bytes: u64,
    contention: BTreeMap<CellIdx, u64>,
    attempt_start: Option<u64>,
    help_start: Option<u64>,
    help_depth: u32,
    max_help_depth: u32,
}

impl TxMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed transactions observed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Failed (aborted) attempts observed.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Conflict events observed (equals [`TxMetrics::aborts`] by the event
    /// grammar; kept separate as a cross-check).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Helping spans entered.
    pub fn helps(&self) -> u64 {
        self.helps
    }

    /// Values installed (write-backs; logical reads excluded).
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Ownership releases performed.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Total attempts observed (commits + aborts).
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Starvation escalations to help-first mode (managed retry paths only).
    pub fn starvation_escalations(&self) -> u64 {
        self.starvation_escalations
    }

    /// Commits that landed at the forced (escalated-past-threshold)
    /// priority tier.
    pub fn forced_commits(&self) -> u64 {
        self.forced_commits
    }

    /// Times a helper declined to fail a higher-priority owner's live
    /// transaction.
    pub fn conflicts_deferred(&self) -> u64 {
        self.conflicts_deferred
    }

    /// Dynamic commits that landed via delta-revalidation (read log
    /// refreshed in place instead of a full retry).
    pub fn delta_commits(&self) -> u64 {
        self.delta_commits
    }

    /// Times a blocking dynamic transaction parked on its read set.
    pub fn retry_blocks(&self) -> u64 {
        self.retry_blocks
    }

    /// Times a parked blocking transaction returned from its park to re-run.
    pub fn retry_wakeups(&self) -> u64 {
        self.retry_wakeups
    }

    /// Commit programs contained after panicking mid-transaction.
    pub fn op_panics(&self) -> u64 {
        self.op_panics
    }

    /// Journal flushes observed (durable backends only).
    pub fn journal_flushes(&self) -> u64 {
        self.flush_latency.count()
    }

    /// Redo records made durable across all observed flushes.
    pub fn journal_records(&self) -> u64 {
        self.journal_records
    }

    /// Encoded journal bytes made durable across all observed flushes.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Recovery passes observed.
    pub fn recoveries(&self) -> u64 {
        self.recovery_replays.count()
    }

    /// Deepest observed nesting of helping spans. The paper's non-redundant
    /// helping bound says helpers never help transitively, so this must
    /// never exceed 1.
    pub fn max_help_depth(&self) -> u32 {
        self.max_help_depth
    }

    /// Whether the observed helping chains respected the one-level bound.
    pub fn helping_is_non_redundant(&self) -> bool {
        self.max_help_depth <= 1
    }

    /// Per-cell conflict counts (the contention heatmap), every observed
    /// cell, ascending cell index.
    pub fn contention(&self) -> &BTreeMap<CellIdx, u64> {
        &self.contention
    }

    /// The `k` most conflicted cells as `(cell, conflicts)`, hottest first
    /// (ties broken by ascending cell index).
    pub fn hot_cells(&self, k: usize) -> Vec<(CellIdx, u64)> {
        let mut v: Vec<(CellIdx, u64)> = self.contention.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        v.truncate(k);
        v
    }

    /// Fold another processor's metrics into this one (aggregate a
    /// multiprocessor run). In-flight attempt/help timing state is not
    /// merged — merge finished observers.
    pub fn merge(&mut self, other: &TxMetrics) {
        self.attempts_to_commit.merge(&other.attempts_to_commit);
        self.cycles_per_attempt.merge(&other.cycles_per_attempt);
        self.help_cycles.merge(&other.help_cycles);
        self.backoff_waits.merge(&other.backoff_waits);
        self.flush_latency.merge(&other.flush_latency);
        self.recovery_replays.merge(&other.recovery_replays);
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.conflicts += other.conflicts;
        self.helps += other.helps;
        self.write_backs += other.write_backs;
        self.releases += other.releases;
        self.starvation_escalations += other.starvation_escalations;
        self.forced_commits += other.forced_commits;
        self.conflicts_deferred += other.conflicts_deferred;
        self.delta_commits += other.delta_commits;
        self.retry_blocks += other.retry_blocks;
        self.retry_wakeups += other.retry_wakeups;
        self.op_panics += other.op_panics;
        self.journal_records += other.journal_records;
        self.journal_bytes += other.journal_bytes;
        for (&c, &n) in &other.contention {
            *self.contention.entry(c).or_default() += n;
        }
        self.attribution.merge(&other.attribution);
        self.max_help_depth = self.max_help_depth.max(other.max_help_depth);
    }

    /// Fold a flight-recorder blame table into these metrics so existing
    /// reports (summary, merge trees) carry conflict attribution.
    pub fn absorb_attribution(&mut self, attr: &Attribution) {
        self.attribution.merge(attr);
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "commits {}  aborts {}  helps {}  installs {}  releases {}\n",
            self.commits, self.aborts, self.helps, self.write_backs, self.releases
        ));
        out.push_str(&format!("attempts/commit:   {}\n", self.attempts_to_commit));
        out.push_str(&format!("cycles/attempt:    {}\n", self.cycles_per_attempt));
        out.push_str(&format!("help cycles:       {}\n", self.help_cycles));
        if self.backoff_waits.count() > 0 || self.starvation_escalations > 0 || self.op_panics > 0
        {
            out.push_str(&format!(
                "contention mgmt:   backoff-waits {} escalations {} op-panics {}\n",
                self.backoff_waits.count(),
                self.starvation_escalations,
                self.op_panics
            ));
        }
        if self.forced_commits > 0 || self.conflicts_deferred > 0 || self.delta_commits > 0 {
            out.push_str(&format!(
                "fairness:          forced-commits {} deferrals {} delta-commits {}\n",
                self.forced_commits, self.conflicts_deferred, self.delta_commits
            ));
        }
        if self.retry_blocks > 0 || self.retry_wakeups > 0 {
            out.push_str(&format!(
                "blocking:          parks {} wakeups {}\n",
                self.retry_blocks, self.retry_wakeups
            ));
        }
        if self.flush_latency.count() > 0 || self.recovery_replays.count() > 0 {
            out.push_str(&format!(
                "journal:           flushes {} records {} bytes {}\n",
                self.journal_flushes(),
                self.journal_records,
                self.journal_bytes
            ));
            out.push_str(&format!("flush latency:     {}\n", self.flush_latency));
            if self.recovery_replays.count() > 0 {
                out.push_str(&format!("recovery replays:  {}\n", self.recovery_replays));
            }
        }
        out.push_str(&format!(
            "help depth:        max {} ({})\n",
            self.max_help_depth,
            if self.helping_is_non_redundant() { "non-redundant bound held" } else { "BOUND VIOLATED" }
        ));
        let hot = self.hot_cells(8);
        if !hot.is_empty() {
            out.push_str("hot cells:        ");
            for (c, n) in hot {
                out.push_str(&format!(" c{c}:{n}"));
            }
            out.push('\n');
        }
        if !self.attribution.is_empty() {
            out.push_str(&self.attribution.summary(8));
        }
        out
    }
}

impl TxObserver for TxMetrics {
    fn attempt_begin(&mut self, _proc: usize, _attempt: u64, now: u64) {
        self.attempt_start = Some(now);
    }

    fn conflict(&mut self, _proc: usize, cell: Option<CellIdx>, _owner: Option<usize>, _now: u64) {
        self.conflicts += 1;
        if let Some(c) = cell {
            *self.contention.entry(c).or_default() += 1;
        }
    }

    fn help_begin(&mut self, _proc: usize, _owner: usize, now: u64) {
        self.helps += 1;
        self.help_depth += 1;
        self.max_help_depth = self.max_help_depth.max(self.help_depth);
        if self.help_depth == 1 {
            self.help_start = Some(now);
        }
    }

    fn help_end(&mut self, _proc: usize, _owner: usize, now: u64) {
        if self.help_depth == 1 {
            if let Some(t0) = self.help_start.take() {
                self.help_cycles.record(now.saturating_sub(t0));
            }
        }
        self.help_depth = self.help_depth.saturating_sub(1);
    }

    fn write_back(&mut self, _proc: usize, _cell: CellIdx, _now: u64) {
        self.write_backs += 1;
    }

    fn released(&mut self, _proc: usize, _cell: CellIdx, _now: u64) {
        self.releases += 1;
    }

    fn committed(&mut self, _proc: usize, attempts: u64, now: u64) {
        self.commits += 1;
        self.attempts_to_commit.record(attempts);
        if let Some(t0) = self.attempt_start.take() {
            self.cycles_per_attempt.record(now.saturating_sub(t0));
        }
    }

    fn aborted(&mut self, _proc: usize, _at: usize, now: u64) {
        self.aborts += 1;
        if let Some(t0) = self.attempt_start.take() {
            self.cycles_per_attempt.record(now.saturating_sub(t0));
        }
    }

    fn backoff_wait(&mut self, _proc: usize, _attempt: u64, amount: u64, _now: u64) {
        self.backoff_waits.record(amount);
    }

    fn starvation_escalated(&mut self, _proc: usize, _owner: Option<usize>, _attempts: u64, _now: u64) {
        self.starvation_escalations += 1;
    }

    fn op_panicked(&mut self, _proc: usize, _attempts: u64, _now: u64) {
        self.op_panics += 1;
    }

    fn journal_flush(&mut self, _proc: usize, records: u64, bytes: u64, latency: u64, _now: u64) {
        self.flush_latency.record(latency);
        self.journal_records += records;
        self.journal_bytes += bytes;
    }

    fn recovery_replayed(&mut self, _records: u64, installed: u64, _now: u64) {
        self.recovery_replays.record(installed);
    }

    fn conflict_deferred(&mut self, _proc: usize, _owner: usize, _now: u64) {
        self.conflicts_deferred += 1;
    }

    fn forced_commit(&mut self, _proc: usize, _attempts: u64, _now: u64) {
        self.forced_commits += 1;
    }

    fn delta_committed(&mut self, _proc: usize, _cells_changed: u64, _now: u64) {
        self.delta_commits += 1;
    }

    fn retry_blocked(&mut self, _proc: usize, _watched: u64, _now: u64) {
        self.retry_blocks += 1;
    }

    fn retry_woken(&mut self, _proc: usize, _wakeups: u64, _now: u64) {
        self.retry_wakeups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_u64() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for i in 1..LOG2_BUCKETS {
            assert_eq!(Log2Histogram::bucket_of(Log2Histogram::bucket_low(i)), i);
        }
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = Log2Histogram::new();
        a.record(0);
        a.record(1);
        a.record(5);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 6);
        assert_eq!(a.max(), 5);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(3), 1); // 5 ∈ [4, 8)
        let mut b = Log2Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 100);
        assert_eq!(a.bucket(3), 2);
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (1, 1), (4, 2), (64, 1)]);
    }

    #[test]
    fn top_bucket_saturates_and_percentile_clamps() {
        // Values at and beyond the top bucket's lower bound (2^63) land in
        // bucket 64, whose nominal width exceeds u64: recording must not
        // panic and every percentile must clamp to the observed max instead
        // of extrapolating into the bucket's nominal 2^64 upper bound.
        let mut h = Log2Histogram::new();
        for v in [1u64 << 63, (1 << 63) + 1, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket(64), 4);
        assert_eq!(h.max(), u64::MAX);
        // The sum has long overflowed; it saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        for p in [0.0, 50.0, 99.0, 100.0] {
            let est = h.percentile(p);
            assert!(est.is_finite(), "p{p} not finite");
            assert!(
                est <= u64::MAX as f64,
                "p{p} escaped the observed range: {est}"
            );
        }
        assert_eq!(h.percentile(100.0), u64::MAX as f64);
        // Mixing in small values keeps the tail clamped and monotone.
        h.record(3);
        let p50 = h.percentile(50.0);
        let p100 = h.percentile(100.0);
        assert!(p50 <= p100);
        assert_eq!(p100, u64::MAX as f64);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        assert_eq!(Log2Histogram::new().percentile(50.0), 0.0);

        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Coarse log2 buckets: percentiles must be monotone, within the
        // observed range, and land in the right bucket's span.
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99, "monotone: {p50} {p90} {p99}");
        assert!(p99 <= 100.0, "clamped to max, got {p99}");
        assert!((32.0..=64.0).contains(&p50), "rank 50 is in [32,64): {p50}");
        assert!((64.0..=100.0).contains(&p90), "rank 90 is in [64,128): {p90}");

        // Exact cases: a single-value histogram pins every percentile.
        let mut one = Log2Histogram::new();
        one.record(7);
        assert_eq!(one.percentile(0.0), 7.0);
        assert_eq!(one.percentile(100.0), 7.0);

        // The max-value bucket (bucket 64) must not overflow bucket_low(65).
        let mut top = Log2Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile(99.0), u64::MAX as f64);
    }

    #[test]
    fn metrics_track_a_synthetic_lifecycle() {
        let mut m = TxMetrics::new();
        // Attempt 1: conflict on cell 3, help P2, abort.
        m.attempt_begin(0, 1, 100);
        m.cell_acquired(0, 1, 110);
        m.conflict(0, Some(3), Some(2), 120);
        m.help_begin(0, 2, 125);
        m.cell_acquired(0, 3, 130);
        m.help_end(0, 2, 140);
        m.aborted(0, 1, 150);
        // Attempt 2: commit.
        m.attempt_begin(0, 2, 200);
        m.cell_acquired(0, 1, 210);
        m.write_back(0, 1, 220);
        m.released(0, 1, 230);
        m.committed(0, 2, 240);

        assert_eq!(m.commits(), 1);
        assert_eq!(m.aborts(), 1);
        assert_eq!(m.attempts(), 2);
        assert_eq!(m.conflicts(), 1);
        assert_eq!(m.helps(), 1);
        assert_eq!(m.write_backs(), 1);
        assert_eq!(m.releases(), 1);
        assert_eq!(m.hot_cells(4), vec![(3, 1)]);
        assert_eq!(m.max_help_depth(), 1);
        assert!(m.helping_is_non_redundant());
        assert_eq!(m.attempts_to_commit.count(), 1);
        assert_eq!(m.cycles_per_attempt.count(), 2);
        assert_eq!(m.cycles_per_attempt.sum(), 50 + 40);
        assert_eq!(m.help_cycles.sum(), 15);
        assert!(m.summary().contains("non-redundant bound held"));
    }

    #[test]
    fn nested_help_would_violate_the_bound() {
        let mut m = TxMetrics::new();
        m.help_begin(0, 1, 0);
        m.help_begin(0, 2, 1); // transitive helping: must be flagged
        m.help_end(0, 2, 2);
        m.help_end(0, 1, 3);
        assert_eq!(m.max_help_depth(), 2);
        assert!(!m.helping_is_non_redundant());
        assert!(m.summary().contains("BOUND VIOLATED"));
    }

    #[test]
    fn journal_and_recovery_hooks_aggregate() {
        let mut a = TxMetrics::new();
        a.journal_flush(0, 2, 96, 150, 0);
        a.journal_flush(0, 1, 48, 90, 0);
        assert_eq!(a.journal_flushes(), 2);
        assert_eq!(a.journal_records(), 3);
        assert_eq!(a.journal_bytes(), 144);
        assert_eq!(a.flush_latency.max(), 150);
        let mut b = TxMetrics::new();
        b.recovery_replayed(5, 4, 0);
        assert_eq!(b.recoveries(), 1);
        assert_eq!(b.recovery_replays.sum(), 4);
        a.merge(&b);
        assert_eq!(a.recoveries(), 1);
        assert_eq!(a.journal_records(), 3);
        let s = a.summary();
        assert!(s.contains("journal:"), "{s}");
        assert!(s.contains("recovery replays:"), "{s}");
        assert!(!TxMetrics::new().summary().contains("journal:"));
    }

    #[test]
    fn merge_aggregates_across_processors() {
        let mut a = TxMetrics::new();
        a.attempt_begin(0, 1, 0);
        a.committed(0, 1, 10);
        a.conflict(0, Some(7), None, 0);
        let mut b = TxMetrics::new();
        b.attempt_begin(1, 1, 0);
        b.aborted(1, 0, 5);
        b.conflict(1, Some(7), None, 0);
        a.merge(&b);
        assert_eq!(a.commits(), 1);
        assert_eq!(a.aborts(), 1);
        assert_eq!(a.contention()[&7], 2);
        assert_eq!(a.cycles_per_attempt.count(), 2);
    }
}
