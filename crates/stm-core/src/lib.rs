//! # stm-core — Shavit–Touitou Software Transactional Memory
//!
//! A from-scratch reproduction of the algorithm introduced in
//! **Nir Shavit and Dan Touitou, "Software Transactional Memory", PODC 1995**
//! (journal version: *Distributed Computing* 10(2):99–116, 1997): the first
//! software-only, **non-blocking** implementation of transactional memory,
//! for *static* transactions whose data set is declared up front.
//!
//! The protocol, in the paper's terms:
//!
//! 1. a transaction **acquires ownership** of every location in its data set,
//!    in ascending address order;
//! 2. participants **agree on the old values** of the data set;
//! 3. the transaction's pure commit function computes the new values, which
//!    are **installed** and the ownerships **released**;
//! 4. on conflict the transaction fails itself and **helps** the obstructing
//!    transaction complete (one level of *non-redundant helping*) before
//!    retrying — this is what makes the construction lock-free: a stalled
//!    processor can never block the system, because any processor that needs
//!    its locations finishes its transaction for it.
//!
//! ## Crate tour
//!
//! * [`machine`] — the word-addressed shared-memory abstraction
//!   ([`machine::MemPort`]); includes the host machine
//!   ([`machine::host::HostMachine`]) backed by `std` atomics. The companion
//!   crate `stm-sim` provides a deterministic simulated multiprocessor with
//!   bus/mesh cost models, on which the paper's figures are regenerated.
//! * [`word`] — the packed, version-tagged protocol words (cells,
//!   ownerships, statuses, old-value entries).
//! * [`layout`] — the shared-memory layout of an STM instance (cells,
//!   ownership array, per-processor transaction records).
//! * [`program`] — transaction commit functions ([`program::TxProgram`]) and
//!   the process-wide table helpers resolve opcodes through.
//! * [`stm`] — the protocol itself ([`stm::Stm`]).
//! * [`ops`] — derived operations: MWCAS, fetch-and-add, swap, snapshot
//!   ([`ops::StmOps`]).
//!
//! ## Quick start
//!
//! ```
//! use stm_core::machine::host::HostMachine;
//! use stm_core::ops::StmOps;
//! use stm_core::stm::StmConfig;
//!
//! // 64 transactional cells, 2 processors, data sets of up to 8 cells.
//! let ops = StmOps::new(0, 64, 2, 8, StmConfig::default());
//! let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);
//!
//! std::thread::scope(|s| {
//!     for p in 0..2 {
//!         let ops = ops.clone();
//!         let machine = machine.clone();
//!         s.spawn(move || {
//!             let mut port = machine.port(p);
//!             for _ in 0..1000 {
//!                 ops.fetch_add(&mut port, 0, 1); // lock-free shared counter
//!             }
//!         });
//!     }
//! });
//!
//! let mut port = machine.port(0);
//! assert_eq!(ops.snapshot(&mut port, &[0]), vec![2000]);
//! ```
//!
//! ## Faithfulness
//!
//! The implementation follows the paper's procedures one-for-one
//! (`startTransaction`, `transaction`, `acquireOwnerships`,
//! `agreeOldValues`, `updateMemory`, `releaseOwnerships`). Where the 1995
//! pseudocode leaves record reuse informal, this crate uses explicit bounded
//! version tags packed into single CAS-able words — see `DESIGN.md` §4 at the
//! repository root for the exact layouts and the staleness argument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod attribution;
pub mod contention;
pub mod durable;
pub mod export;
pub mod flight;
pub mod dynamic;
pub mod history;
pub mod layout;
pub mod machine;
pub mod metrics;
pub mod observe;
pub mod ops;
pub mod program;
pub mod step;
pub mod stm;
pub mod word;

pub use arena::{ArenaStats, CellArena};
pub use attribution::{Attribution, CellBlame};
pub use contention::{
    AdaptiveConfig, AdaptiveManager, ConflictInfo, ContentionManager, ImmediateRetry,
    RetryDecision, WaitAction,
};
pub use durable::{
    DurableMem, FileJournal, FlushInfo, Journal, MemJournal, NoJournal, RecoveryReport, RedoRecord,
};
pub use dynamic::{DynamicStm, DynamicTx, Retry};
pub use export::{
    encode_openmetrics, parse_openmetrics, snapshot_json, MetricsRegistry, MetricsSnapshot,
    OpLatency, ProcCounters,
};
pub use flight::{
    FlightBuffer, FlightEvent, FlightKind, FlightRecorder, OpBoard, RingRead,
    DEFAULT_FLIGHT_CAPACITY, NO_OP_TAG,
};
pub use machine::chaos::{ChaosConfig, ChaosPort, ChaosStats, Watchdog, WatchdogHandle};
pub use machine::MemPort;
pub use metrics::{Log2Histogram, TxMetrics};
pub use observe::{NoopObserver, RecordingObserver, TxEvent, TxObserver};
pub use step::{StepKind, StepPoint};
pub use ops::StmOps;
pub use program::{OpCode, ProgramTable, TxProgram};
pub use stm::{
    BackoffPolicy, Kernel, Sabotage, Stm, StmConfig, TxBudget, TxError, TxOptions, TxOutcome,
    TxPlan, TxScratch, TxSpec, TxStats,
};
pub use word::{Addr, CellIdx, Word};

/// The one-stop import for typical users of the crate.
///
/// Curates the types needed to build an STM instance, run static and dynamic
/// transactions through the unified [`Stm::run`] / [`DynamicStm::run`] entry
/// points (or block until a wakeup via
/// [`DynamicStm::run_blocking`](dynamic::DynamicStm::run_blocking)), and tune
/// them via [`TxOptions`]:
///
/// ```
/// use stm_core::prelude::*;
///
/// let ops = StmOps::new(0, 16, 1, 8, StmConfig::default());
/// let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
/// let mut port = machine.port(0);
/// ops.fetch_add(&mut port, 0, 7);
/// let out = ops
///     .run(
///         &mut port,
///         &TxSpec::new(ops.builtins().read, &[], &[0]),
///         &mut TxOptions::new().budget(TxBudget::attempts(4)),
///     )
///     .unwrap();
/// assert_eq!(out.old, vec![7]);
/// ```
///
/// Deliberately excluded: the packed-word helpers ([`word`]), layout
/// internals, simulation hooks ([`step`]), and the telemetry/chaos machinery
/// — import those from their modules when a test or tool needs them.
pub mod prelude {
    pub use crate::arena::CellArena;
    pub use crate::contention::{AdaptiveManager, ContentionManager, ImmediateRetry};
    pub use crate::durable::{FileJournal, Journal, MemJournal, NoJournal};
    pub use crate::dynamic::{DynamicStm, DynamicTx, Retry};
    pub use crate::machine::host::HostMachine;
    pub use crate::machine::MemPort;
    pub use crate::observe::{NoopObserver, TxObserver};
    pub use crate::ops::StmOps;
    pub use crate::program::{OpCode, ProgramTable, TxProgram};
    pub use crate::stm::{
        Stm, StmConfig, TxBudget, TxError, TxOptions, TxOutcome, TxPlan, TxScratch, TxSpec,
        TxStats,
    };
    pub use crate::word::{Addr, CellIdx, Word};
}
