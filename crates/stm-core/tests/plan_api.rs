//! Integration tests for the compiled-plan API: `Stm::compile`,
//! `Stm::run_plan`/`run_plan_in`, kernel selection, the typed
//! duplicate-cell error, and the `StmOps` plan cache.

use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{Kernel, StmConfig, TxError, TxOptions, TxScratch, TxSpec};
use stm_core::word::Word;

fn setup(n_cells: usize) -> (StmOps, HostMachine) {
    let ops = StmOps::new(0, n_cells, 1, 8, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
    (ops, m)
}

#[test]
fn duplicate_cells_compile_to_typed_error() {
    let (ops, _m) = setup(16);
    let spec = TxSpec::new(ops.builtins().read, &[], &[3, 5, 3]);
    let err = ops.stm().compile(&spec).unwrap_err();
    assert_eq!(err, TxError::DuplicateCell { cell: 3 });
    // Display keeps the message the spec-validating panics use, so callers
    // that match on text see the same words either way.
    assert!(err.to_string().contains("duplicate cell 3"));
}

#[test]
fn duplicate_detection_is_order_insensitive() {
    let (ops, _m) = setup(16);
    for cells in [&[7usize, 7][..], &[1, 0, 1], &[2, 9, 4, 9]] {
        let spec = TxSpec::new(ops.builtins().read, &[], cells);
        assert!(
            matches!(ops.stm().compile(&spec), Err(TxError::DuplicateCell { .. })),
            "cells {cells:?} must be rejected"
        );
    }
}

#[test]
fn kernel_selection_follows_data_set_size() {
    let (ops, _m) = setup(16);
    let read = ops.builtins().read;
    let kernel_of = |cells: &[usize]| {
        ops.stm().compile(&TxSpec::new(read, &[], cells)).unwrap().kernel()
    };
    assert_eq!(kernel_of(&[0]), Kernel::K1);
    assert_eq!(kernel_of(&[0, 9]), Kernel::K2);
    assert_eq!(kernel_of(&[0, 1, 2]), Kernel::General);
    assert_eq!(kernel_of(&[0, 5, 9, 12]), Kernel::K4);
    assert_eq!(kernel_of(&[0, 1, 2, 3, 4]), Kernel::General);
}

#[test]
fn run_plan_matches_spec_run() {
    // Same transaction through the interpreted entry point and a compiled
    // plan: identical old values and final memory.
    let (ops, m) = setup(16);
    let mut port = m.port(0);
    for c in 0..4 {
        ops.swap(&mut port, c, 100 + c as u32);
    }
    let params: Vec<Word> = vec![5, 6];
    let spec = TxSpec::new(ops.builtins().add, &params, &[1, 3]);

    let interpreted = ops.stm().run(&mut port, &spec, &mut TxOptions::new()).unwrap();
    assert_eq!(interpreted.old, vec![101, 103]);

    let plan = ops.stm().compile(&spec).unwrap();
    let planned = ops.stm().run_plan(&mut port, &plan, &mut TxOptions::new()).unwrap();
    assert_eq!(planned.old, vec![106, 109]);
    assert_eq!(ops.snapshot(&mut port, &[1, 3]), vec![111, 115]);
}

#[test]
fn run_plan_in_leaves_old_values_in_scratch() {
    let (ops, m) = setup(16);
    let mut port = m.port(0);
    ops.swap(&mut port, 2, 40);
    let plan = ops
        .stm()
        .compile(&TxSpec::new(ops.builtins().add, &[], &[2]))
        .unwrap();
    let mut scratch = TxScratch::new();
    // Plans carry no parameters of their own here; supply them per call.
    let stats = ops
        .stm()
        .run_plan_in(&mut port, &plan, &[2], &mut TxOptions::new(), &mut scratch)
        .unwrap();
    assert_eq!(stats.attempts, 1);
    assert_eq!(scratch.old(), &[40]);
    assert_eq!(ops.snapshot(&mut port, &[2]), vec![42]);
}

#[test]
fn plan_cache_hits_after_first_compile() {
    let (ops, m) = setup(16);
    let mut port = m.port(0);
    assert_eq!(ops.plan_cache_stats().hits, 0);
    for _ in 0..10 {
        ops.fetch_add(&mut port, 4, 1);
    }
    let stats = ops.plan_cache_stats();
    // fetch_add reuses one (op, cells) shape: one cold compile, then hits.
    // (snapshot's read-only fast path does not touch the cache.)
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 9);
    assert!(stats.hit_rate() > 0.85);
}

#[test]
fn plan_cache_returns_shared_plan() {
    let (ops, _m) = setup(16);
    let a = ops.plan_for(ops.builtins().add, &[1, 2]);
    let b = ops.plan_for(ops.builtins().add, &[1, 2]);
    assert!(std::sync::Arc::ptr_eq(&a, &b), "same shape must share one plan");
    let c = ops.plan_for(ops.builtins().add, &[2, 1]);
    assert!(!std::sync::Arc::ptr_eq(&a, &c), "cell order is part of the key");
}

#[test]
fn plan_cache_evicts_beyond_capacity_and_recompiles() {
    let (ops, _m) = setup(64);
    let read = ops.builtins().read;
    // 33 distinct single-cell shapes against a 32-entry cache, twice. The
    // second sweep re-misses whatever fell off the tail but stays correct.
    for round in 0..2 {
        for c in 0..33usize {
            let plan = ops.plan_for(read, &[c]);
            assert_eq!(plan.cells(), &[c], "round {round}");
        }
    }
    let stats = ops.plan_cache_stats();
    assert_eq!(stats.hits + stats.misses, 66);
    assert!(stats.misses > 33, "a full cache must evict and recompile");
}

#[test]
fn clones_start_with_empty_caches() {
    let (ops, m) = setup(16);
    let mut port = m.port(0);
    ops.fetch_add(&mut port, 0, 1);
    let clone = ops.clone();
    assert_eq!(clone.plan_cache_stats(), Default::default());
    // And the clone still executes correctly through its own cache.
    assert_eq!(clone.fetch_add(&mut port, 0, 1), 1);
}

#[test]
#[should_panic(expected = "duplicate cell")]
fn run_planned_panics_on_duplicates_like_run() {
    let (ops, m) = setup(16);
    let mut port = m.port(0);
    ops.run_planned(&mut port, ops.builtins().read, &[], &[6, 6], |_| ());
}

#[test]
#[should_panic(expected = "plan compiled against a different STM layout")]
fn foreign_plan_is_rejected() {
    let (ops, m) = setup(16);
    let other = StmOps::new(0, 8, 1, 8, StmConfig::default());
    let plan = other
        .stm()
        .compile(&TxSpec::new(other.builtins().read, &[], &[0]))
        .unwrap();
    let mut port = m.port(0);
    let _ = ops.stm().run_plan(&mut port, &plan, &mut TxOptions::new());
}
