//! Certifies the compiled-plan write path is allocation-free: with a warm
//! plan cache and scratch, neither `Stm::run_plan_in` nor the cached
//! `StmOps` entry points perform a single heap allocation per attempt.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The count is
//! kept **per thread** (const-initialized TLS, so reading it never allocates)
//! because the libtest harness's own threads may allocate concurrently;
//! only what the measuring thread itself allocates is attributable to the
//! transaction path under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{Kernel, StmConfig, TxOptions, TxScratch, TxSpec};

struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: TLS may be mid-teardown when a destructor allocates.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates verbatim to `System`; the counter has no safety role.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[test]
fn warm_plan_execution_allocates_nothing() {
    const ITERS: u32 = 1_000;
    let ops = StmOps::new(0, 32, 1, 8, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
    let mut port = m.port(0);
    let add = ops.builtins().add;

    // One plan per kernel tier: k = 1, 2, 4 (monomorphized) and k = 3
    // (general sweep), all compiled once up front.
    let shapes: [&[usize]; 4] = [&[0], &[1, 2], &[3, 4, 5], &[6, 7, 8, 9]];
    let plans: Vec<_> = shapes
        .iter()
        .map(|cells| ops.stm().compile(&TxSpec::new(add, &[], cells)).unwrap())
        .collect();
    assert_eq!(
        plans.iter().map(|p| p.kernel()).collect::<Vec<_>>(),
        vec![Kernel::K1, Kernel::K2, Kernel::General, Kernel::K4],
    );

    let mut scratch = TxScratch::new();
    let params = [1u64, 1, 1, 1];

    // Warm everything once: scratch growth, the thread-local scratch used
    // by the cached `StmOps` entry points, and the plan cache itself.
    for (plan, cells) in plans.iter().zip(&shapes) {
        ops.stm()
            .run_plan_in(&mut port, plan, &params[..cells.len()], &mut TxOptions::new(), &mut scratch)
            .unwrap();
    }
    ops.fetch_add(&mut port, 10, 1);
    ops.swap(&mut port, 11, 5);
    ops.mwcas(&mut port, &[(12, 0, 1), (13, 0, 1)]).unwrap();

    // Measure: every warm path must leave the allocation counter untouched.
    let before = allocs();
    for _ in 0..ITERS {
        for (plan, cells) in plans.iter().zip(&shapes) {
            ops.stm()
                .run_plan_in(
                    &mut port,
                    plan,
                    &params[..cells.len()],
                    &mut TxOptions::new(),
                    &mut scratch,
                )
                .unwrap();
        }
        ops.fetch_add(&mut port, 10, 1);
        ops.swap(&mut port, 11, 7);
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "warm compiled-plan execution must be allocation-free \
         ({} allocations over {} transactions)",
        after - before,
        ITERS * 6,
    );

    // Sanity: the workload really ran.
    assert_eq!(ops.snapshot(&mut port, &[0]), vec![1 + ITERS]);
    assert_eq!(ops.snapshot(&mut port, &[10]), vec![1 + ITERS]);
}
