//! Schedule exploration: run the same workload under many seeded
//! interleavings and check an invariant on every outcome.
//!
//! The engine is deterministic per seed, and the seed perturbs every
//! operation's completion time, so sweeping seeds enumerates a family of
//! distinct global interleavings — a lightweight, reproducible stand-in for
//! model checking. On a violation the failing seed is reported, and re-running
//! that single seed replays the exact schedule.

use crate::engine::SimReport;

/// Outcome of an exploration sweep.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Seeds explored.
    pub seeds: u64,
    /// Distinct final memory images observed (a coarse interleaving count).
    pub distinct_outcomes: usize,
}

/// Run `run(seed)` for `seeds` seeds, checking `check(seed, &report)` on each.
///
/// `check` should panic (assert) on violation; the panic message is wrapped
/// with the failing seed for replay.
///
/// # Panics
///
/// Panics if `check` panics for any seed, tagging the failing seed.
pub fn sweep(
    seeds: u64,
    mut run: impl FnMut(u64) -> SimReport,
    mut check: impl FnMut(u64, &SimReport),
) -> ExploreReport {
    let mut outcomes = std::collections::HashSet::new();
    for seed in 0..seeds {
        let report = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(seed))) {
            Ok(r) => r,
            Err(payload) => {
                panic!("schedule exploration: seed {seed} panicked: {}", payload_msg(&payload))
            }
        };
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(seed, &report)))
        {
            panic!(
                "schedule exploration: invariant violated at seed {seed}: {}",
                payload_msg(&payload)
            );
        }
        outcomes.insert(report.memory.clone());
    }
    ExploreReport { seeds, distinct_outcomes: outcomes.len() }
}

fn payload_msg(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::UniformModel;
    use crate::engine::{SimConfig, SimPort, Simulation};
    use stm_core::machine::MemPort;

    fn racy_run(seed: u64) -> SimReport {
        Simulation::new(
            SimConfig { n_words: 1, seed, jitter: 5, ..Default::default() },
            UniformModel::new(1, 4),
        )
        .run(3, |p| {
            move |mut port: SimPort| {
                for _ in 0..10 {
                    let v = port.read(0);
                    port.write(0, v.wrapping_mul(7).wrapping_add(p as u64 + 1));
                }
            }
        })
    }

    #[test]
    fn sweep_finds_multiple_interleavings() {
        let report = sweep(16, racy_run, |_s, _r| {});
        assert_eq!(report.seeds, 16);
        assert!(report.distinct_outcomes > 1, "expected schedule diversity");
    }

    #[test]
    #[should_panic(expected = "invariant violated at seed")]
    fn sweep_reports_failing_seed() {
        sweep(4, racy_run, |_s, r| {
            assert_eq!(r.memory[0], 0, "deliberately impossible invariant");
        });
    }
}
