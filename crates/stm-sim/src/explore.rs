//! Schedule exploration: run the same workload under many seeded
//! interleavings and check an invariant on every outcome.
//!
//! The engine is deterministic per seed, and the seed perturbs every
//! operation's completion time, so sweeping seeds enumerates a family of
//! distinct global interleavings — a lightweight, reproducible stand-in for
//! model checking. On a violation the failing seed is reported, and re-running
//! that single seed replays the exact schedule.
//!
//! On top of seed sweeping this module provides the systematic fault
//! machinery:
//!
//! * [`crash_matrix`] — one single-crash [`FaultPlan`] per instrumented
//!   protocol step, with the helping oracle (must the victim's effect land
//!   exactly once, or never?) attached to each point;
//! * [`FaultFuzzer`] — a seeded generator of random multi-fault plans for
//!   property tests;
//! * [`shrink`] — a greedy minimizer for a failing `(seed, FaultPlan)` pair,
//!   producing the smallest reproducer the search can find.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_core::step::StepKind;

use crate::engine::SimReport;
use crate::faults::{Fault, FaultKind, FaultPlan, Trigger};

/// Outcome of an exploration sweep.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Seeds explored.
    pub seeds: u64,
    /// Distinct final memory images observed (a coarse interleaving count).
    pub distinct_outcomes: usize,
}

/// Run `run(seed)` for `seeds` seeds, checking `check(seed, &report)` on each.
///
/// `check` should panic (assert) on violation; the panic message is wrapped
/// with the failing seed for replay.
///
/// # Panics
///
/// Panics if `check` panics for any seed, tagging the failing seed.
pub fn sweep(
    seeds: u64,
    mut run: impl FnMut(u64) -> SimReport,
    mut check: impl FnMut(u64, &SimReport),
) -> ExploreReport {
    let mut outcomes = std::collections::HashSet::new();
    for seed in 0..seeds {
        let report = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(seed))) {
            Ok(r) => r,
            Err(payload) => {
                panic!("schedule exploration: seed {seed} panicked: {}", payload_msg(&payload))
            }
        };
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(seed, &report)))
        {
            panic!(
                "schedule exploration: invariant violated at seed {seed}: {}",
                payload_msg(&payload)
            );
        }
        outcomes.insert(report.memory.clone());
    }
    ExploreReport { seeds, distinct_outcomes: outcomes.len() }
}

/// One point of the systematic crash matrix.
#[derive(Debug, Clone)]
pub struct MatrixPoint {
    /// Human-readable name of the crash site (e.g. `"Acquired{1}"`).
    pub label: String,
    /// The single-crash plan for this point.
    pub plan: FaultPlan,
    /// The helping oracle: `true` if the victim's transaction must be
    /// completed by helpers (effect applied exactly once), `false` if it
    /// must never take effect (the victim died before claiming anything, so
    /// no processor is ever obliged — or able — to help it).
    pub expect_effect: bool,
}

/// Enumerate the full single-crash matrix for a `victim` processor running
/// one static transaction over `dataset_len` locations: one [`MatrixPoint`]
/// per instrumented protocol step the victim announces on an uncontended
/// first run.
///
/// The oracle follows the paper's helping argument. A crash *before* the
/// first ownership CAS (`TxPublished`, `AcquireAttempt{0}`) leaves nothing
/// claimed: no survivor ever conflicts with the victim, so its transaction
/// stays undecided forever and its effect must appear **zero** times. A
/// crash at any later step leaves at least one location claimed; the first
/// survivor to conflict is obliged to complete the victim's transaction, so
/// its effect must appear **exactly once** — and in all cases the ownership
/// table must end the run fully released.
///
/// `HelpBegin` does not appear here (an uncontended victim never helps); the
/// helper-crash scenario needs a second wedged processor and is exercised
/// separately.
pub fn crash_matrix(victim: usize, dataset_len: usize) -> Vec<MatrixPoint> {
    assert!(dataset_len > 0, "need at least one location");
    let mut points: Vec<(StepKind, Option<usize>, bool)> = vec![
        (StepKind::TxPublished, None, false),
        // Announced before the first CAS: nothing claimed yet.
        (StepKind::AcquireAttempt, Some(0), false),
    ];
    // Attempting position j > 0 means positions 0..j are already claimed.
    for j in 1..dataset_len {
        points.push((StepKind::AcquireAttempt, Some(j), true));
    }
    for j in 0..dataset_len {
        points.push((StepKind::Acquired, Some(j), true));
    }
    points.push((StepKind::BeforeDecisionCas, None, true));
    points.push((StepKind::Decided, None, true));
    for j in 0..dataset_len {
        points.push((StepKind::OldValAgreed, Some(j), true));
    }
    for j in 0..dataset_len {
        points.push((StepKind::UpdateWrite, Some(j), true));
    }
    for j in 0..dataset_len {
        points.push((StepKind::BeforeRelease, Some(j), true));
    }
    points
        .into_iter()
        .map(|(kind, index, expect_effect)| MatrixPoint {
            label: match index {
                Some(j) => format!("{kind}{{{j}}}"),
                None => kind.to_string(),
            },
            plan: FaultPlan::new().crash_at_step(victim, kind, index),
            expect_effect,
        })
        .collect()
}

/// Enumerate the crash matrix for a **durable** victim: every point of
/// [`crash_matrix`] plus one per journal step point
/// ([`StepKind::JOURNAL`]), inserted in protocol order between the last
/// `OldValAgreed` and the first `UpdateWrite`.
///
/// All three journal points come *after* the decision CAS, so the helping
/// oracle is the same as for any post-decision crash: a survivor that
/// conflicts with the victim must complete its transaction, and the effect
/// appears exactly once. What distinguishes them is what recovery must do —
/// a crash at `JournalAppend` or `JournalFlush` may lose the redo record
/// (un-flushed bytes die with the process), while a crash at
/// `JournalDurable` guarantees the record is on stable storage; the
/// recovery-equivalence check in the durable test suite exercises both
/// regimes.
pub fn durable_crash_matrix(victim: usize, dataset_len: usize) -> Vec<MatrixPoint> {
    let mut points = crash_matrix(victim, dataset_len);
    let insert_at = points
        .iter()
        .position(|p| p.label.starts_with("UpdateWrite"))
        .unwrap_or(points.len());
    for (offset, &kind) in StepKind::JOURNAL.iter().enumerate() {
        points.insert(
            insert_at + offset,
            MatrixPoint {
                label: kind.to_string(),
                plan: FaultPlan::new().crash_at_step(victim, kind, None),
                expect_effect: true,
            },
        );
    }
    points
}

/// A seeded generator of random fault plans, for property tests that sweep
/// the fault space beyond the systematic matrix.
///
/// Deterministic: the same seed yields the same sequence of plans.
#[derive(Debug)]
pub struct FaultFuzzer {
    rng: SmallRng,
    n_procs: usize,
    dataset_len: usize,
    max_faults: usize,
    max_cycle: u64,
    kinds: Vec<StepKind>,
}

impl FaultFuzzer {
    /// A fuzzer over `n_procs` processors running transactions of
    /// `dataset_len` locations. Generated faults never target processor
    /// `n_procs - 1`, so at least one processor always survives to drain
    /// the others' abandoned transactions.
    pub fn new(seed: u64, n_procs: usize, dataset_len: usize) -> Self {
        assert!(n_procs >= 2, "need a survivor and at least one faultable processor");
        FaultFuzzer {
            rng: SmallRng::seed_from_u64(seed),
            n_procs,
            dataset_len,
            max_faults: 2,
            max_cycle: 50_000,
            kinds: StepKind::PROTOCOL.to_vec(),
        }
    }

    /// Cap the number of faults per plan (default 2).
    pub fn max_faults(mut self, max: usize) -> Self {
        self.max_faults = max;
        self
    }

    /// Also target the journal step points ([`StepKind::JOURNAL`]), for
    /// fuzzing crash-durable runs. Without this the fuzzer sticks to the
    /// classic protocol steps, so plans stay replayable on non-durable
    /// configurations.
    pub fn durable(mut self) -> Self {
        self.kinds.extend(StepKind::JOURNAL);
        self
    }

    /// Generate the next plan: up to `max_faults` random faults on random
    /// non-survivor processors.
    pub fn next_plan(&mut self) -> FaultPlan {
        let n = self.rng.gen_range(0..=self.max_faults);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let proc = self.rng.gen_range(0..self.n_procs - 1);
            let trigger = if self.rng.gen_bool(0.7) {
                let kind = self.kinds[self.rng.gen_range(0..self.kinds.len())];
                let index = if kind.has_index() {
                    Some(self.rng.gen_range(0..self.dataset_len))
                } else {
                    None
                };
                Trigger::Step { kind, index, nth: self.rng.gen_range(0..3) }
            } else {
                Trigger::Cycle { at: self.rng.gen_range(0..self.max_cycle) }
            };
            let kind = match self.rng.gen_range(0..3u32) {
                0 => FaultKind::Crash,
                1 => FaultKind::Stall { cycles: self.rng.gen_range(100..5000) },
                _ => FaultKind::SlowBy { factor: self.rng.gen_range(2..8) },
            };
            plan = plan.with(Fault { proc, trigger, kind });
        }
        plan
    }
}

/// Greedily shrink a failing `(seed, FaultPlan)` reproducer.
///
/// `fails(seed, plan)` must return `true` when the candidate still
/// reproduces the failure (it is the caller's full run-and-check pipeline).
/// The shrinker first drops whole faults, then simplifies the survivors
/// (occurrence counts to 0, per-location step indices dropped,
/// stall/slow/deadline magnitudes halved), then
/// tries a handful of smaller seeds; every accepted candidate still fails.
/// Deterministic delivery makes the result an exact reproducer.
pub fn shrink(
    seed: u64,
    plan: &FaultPlan,
    mut fails: impl FnMut(u64, &FaultPlan) -> bool,
) -> (u64, FaultPlan) {
    let mut best = plan.clone();
    let mut best_seed = seed;

    // Phase 1: drop whole faults while the failure persists.
    loop {
        let mut improved = false;
        for i in 0..best.faults.len() {
            let mut cand = best.clone();
            cand.faults.remove(i);
            if fails(best_seed, &cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // Phase 2: simplify each surviving fault's numbers.
    loop {
        let mut improved = false;
        for i in 0..best.faults.len() {
            for cand_fault in simplifications(&best.faults[i]) {
                let mut cand = best.clone();
                cand.faults[i] = cand_fault;
                if fails(best_seed, &cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // Phase 3: prefer a small seed.
    for s in 0..best_seed.min(4) {
        if fails(s, &best) {
            best_seed = s;
            break;
        }
    }
    (best_seed, best)
}

/// Strictly-smaller variants of one fault, most aggressive first.
fn simplifications(f: &Fault) -> Vec<Fault> {
    let mut out = Vec::new();
    match f.trigger {
        Trigger::Step { kind, index, nth } => {
            if nth > 0 {
                out.push(Fault { trigger: Trigger::Step { kind, index, nth: 0 }, ..*f });
            }
            // Dropping the index matches the *first* step of this kind —
            // simpler to read and earlier in the schedule.
            if index.is_some() {
                out.push(Fault { trigger: Trigger::Step { kind, index: None, nth }, ..*f });
            }
        }
        Trigger::Cycle { at } if at > 0 => {
            out.push(Fault { trigger: Trigger::Cycle { at: at / 2 }, ..*f });
        }
        _ => {}
    }
    match f.kind {
        FaultKind::Stall { cycles } if cycles > 1 => {
            out.push(Fault { kind: FaultKind::Stall { cycles: cycles / 2 }, ..*f });
        }
        FaultKind::SlowBy { factor } if factor > 2 => {
            out.push(Fault { kind: FaultKind::SlowBy { factor: factor - 1 }, ..*f });
        }
        _ => {}
    }
    out
}

fn payload_msg(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::UniformModel;
    use crate::engine::{SimConfig, SimPort, Simulation};
    use stm_core::machine::MemPort;

    fn racy_run(seed: u64) -> SimReport {
        Simulation::new(
            SimConfig { n_words: 1, seed, jitter: 5, ..Default::default() },
            UniformModel::new(1, 4),
        )
        .run(3, |p| {
            move |mut port: SimPort| {
                for _ in 0..10 {
                    let v = port.read(0);
                    port.write(0, v.wrapping_mul(7).wrapping_add(p as u64 + 1));
                }
            }
        })
    }

    #[test]
    fn sweep_finds_multiple_interleavings() {
        let report = sweep(16, racy_run, |_s, _r| {});
        assert_eq!(report.seeds, 16);
        assert!(report.distinct_outcomes > 1, "expected schedule diversity");
    }

    #[test]
    #[should_panic(expected = "invariant violated at seed")]
    fn sweep_reports_failing_seed() {
        sweep(4, racy_run, |_s, r| {
            assert_eq!(r.memory[0], 0, "deliberately impossible invariant");
        });
    }

    #[test]
    fn crash_matrix_covers_every_step_with_unique_labels() {
        let matrix = crash_matrix(0, 2);
        // TxPublished + AcquireAttempt{0,1} + Acquired{0,1} + BeforeDecisionCas
        // + Decided + OldValAgreed{0,1} + UpdateWrite{0,1} + BeforeRelease{0,1}
        assert_eq!(matrix.len(), 13);
        let labels: std::collections::HashSet<&str> =
            matrix.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels.len(), matrix.len(), "duplicate matrix labels");
        assert_eq!(matrix.iter().filter(|p| !p.expect_effect).count(), 2);
        for p in &matrix {
            assert_eq!(p.plan.faults.len(), 1, "{}", p.label);
            assert_eq!(p.plan.faults[0].proc, 0);
        }
    }

    #[test]
    fn durable_matrix_adds_journal_points_in_protocol_order() {
        let matrix = durable_crash_matrix(0, 2);
        assert_eq!(matrix.len(), 16, "13 classic points + 3 journal points");
        let labels: Vec<&str> = matrix.iter().map(|p| p.label.as_str()).collect();
        let append = labels.iter().position(|l| *l == "JournalAppend").unwrap();
        let flush = labels.iter().position(|l| *l == "JournalFlush").unwrap();
        let durable = labels.iter().position(|l| *l == "JournalDurable").unwrap();
        let last_agreed = labels.iter().rposition(|l| l.starts_with("OldValAgreed")).unwrap();
        let first_write = labels.iter().position(|l| l.starts_with("UpdateWrite")).unwrap();
        assert!(last_agreed < append && append + 1 == flush && flush + 1 == durable);
        assert!(durable < first_write, "journal points must precede the installs");
        for p in &matrix {
            if p.label.starts_with("Journal") {
                assert!(p.expect_effect, "{}: post-decision crash must be helped", p.label);
            }
        }
    }

    #[test]
    fn fuzzer_targets_journal_steps_only_when_durable() {
        let hits_journal = |mut f: FaultFuzzer| {
            (0..200).any(|_| {
                f.next_plan().faults.iter().any(|f| {
                    matches!(f.trigger, Trigger::Step { kind, .. }
                        if StepKind::JOURNAL.contains(&kind))
                })
            })
        };
        assert!(!hits_journal(FaultFuzzer::new(5, 4, 2)), "default fuzzer must stay classic");
        assert!(hits_journal(FaultFuzzer::new(5, 4, 2).durable()), "durable fuzzer never hit a journal step");
    }

    #[test]
    fn shrink_drops_step_indices() {
        let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, Some(1));
        // The failure does not depend on which location the crash lands on.
        let fails = |_seed: u64, p: &FaultPlan| {
            p.faults.iter().any(|f| {
                f.kind == crate::faults::FaultKind::Crash
                    && matches!(f.trigger, crate::faults::Trigger::Step { kind, .. }
                        if kind == StepKind::Acquired)
            })
        };
        let (_seed, shrunk) = shrink(3, &plan, fails);
        match shrunk.faults[0].trigger {
            crate::faults::Trigger::Step { index, .. } => {
                assert_eq!(index, None, "index must be dropped when irrelevant")
            }
            t => panic!("unexpected trigger {t:?}"),
        }
    }

    #[test]
    fn fuzzer_is_deterministic_and_spares_the_survivor() {
        let plans_a: Vec<_> = {
            let mut f = FaultFuzzer::new(9, 4, 2);
            (0..50).map(|_| f.next_plan()).collect()
        };
        let plans_b: Vec<_> = {
            let mut f = FaultFuzzer::new(9, 4, 2);
            (0..50).map(|_| f.next_plan()).collect()
        };
        assert_eq!(plans_a, plans_b);
        assert!(plans_a.iter().any(|p| !p.is_empty()), "fuzzer never produced a fault");
        for p in &plans_a {
            assert!(p.faults.iter().all(|f| f.proc < 3), "survivor processor was faulted");
        }
    }

    #[test]
    fn shrink_drops_irrelevant_faults_and_minimizes_numbers() {
        use stm_core::step::StepKind;
        // The "failure" only needs a crash on P0 with a Step trigger; the
        // rest of the plan is noise the shrinker must strip.
        let plan = FaultPlan::new()
            .stall_at_step(1, StepKind::Acquired, Some(1), 4096)
            .with(crate::faults::Fault {
                proc: 0,
                trigger: crate::faults::Trigger::Step {
                    kind: StepKind::BeforeDecisionCas,
                    index: None,
                    nth: 2,
                },
                kind: crate::faults::FaultKind::Crash,
            })
            .slow_from_cycle(2, 9000, 7);
        let fails = |_seed: u64, p: &FaultPlan| {
            p.faults.iter().any(|f| {
                f.proc == 0
                    && f.kind == crate::faults::FaultKind::Crash
                    && matches!(f.trigger, crate::faults::Trigger::Step { .. })
            })
        };
        let (seed, shrunk) = shrink(17, &plan, fails);
        assert_eq!(seed, 0, "seed should shrink to 0 when the failure is seed-independent");
        assert_eq!(shrunk.faults.len(), 1, "noise faults must be dropped: {shrunk}");
        match shrunk.faults[0].trigger {
            crate::faults::Trigger::Step { nth, .. } => assert_eq!(nth, 0, "nth must shrink"),
            t => panic!("unexpected trigger {t:?}"),
        }
    }
}
